"""Capture golden pipeline outputs for the batched-kernel equality gate.

Runs the full BlinkRadar pipeline over a fixed battery of simulated
scenarios and freezes every observable output — the r(k) waveform, the
selected-bin series, restart times, blink events and the session score —
into ``tests/golden/pipeline_golden_<name>.npz`` artifacts.

The equality tests (``tests/core/test_batched_golden.py``) re-simulate the
same realisations through the store catalog (recording ``.rst`` traces on
first run), check the frame matrix hash against the one frozen here, and
then assert the pipeline reproduces these outputs **bit for bit**. The
artifacts in the repo were captured from the pre-batching scalar
implementation (PR 6 seed), so they prove the vectorized kernel layer is
a pure refactor of the per-frame path.

Regenerate (only when pipeline *behaviour* is intentionally changed)::

    PYTHONPATH=src python tools/capture_golden_traces.py
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"

#: name -> (participant, state, road, duration_s, allow_posture_shifts, seed)
GOLDEN_SPECS: dict[str, tuple[str, str, str, float, bool, int]] = {
    "awake_parked": ("P01", "awake", "parked", 60.0, False, 77),
    "drowsy_parked": ("P03", "drowsy", "parked", 60.0, False, 101),
    "awake_bumpy_shifts": ("P02", "awake", "bumpy", 60.0, True, 55),
}

#: Extra golden built from synthetic frames rather than the simulator:
#: an abrupt posture jump (new bin, new phase, 6× amplitude) at frame
#: 700 that trips the movement-spike restart — a path no simulated
#: scenario reaches, so it gets its own frozen artifact.
SYNTHETIC_NAME = "synthetic_restart"


def synthetic_restart_frames() -> np.ndarray:
    """Deterministic two-segment scene whose splice forces a restart."""
    a = _two_reflector_frames(700, eye_bin=25, seed=11)
    b = _two_reflector_frames(700, eye_bin=46, seed=12) * np.exp(1j * 2.1)
    return np.concatenate([a, 6.0 * b])


def _two_reflector_frames(
    n_frames: int,
    n_bins: int = 110,
    eye_bin: int = 25,
    torso_bin: int = 80,
    seed: int = 0,
    eye_amp: float = 1.2e-4,
    torso_amp: float = 4e-4,
    noise: float = 5e-7,
) -> np.ndarray:
    """Swaying face + breathing torso (matches the realtime test scene)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_frames) / 25.0
    frames = np.zeros((n_frames, n_bins), dtype=complex)
    bins = np.arange(n_bins)
    eye_env = np.exp(-((bins - eye_bin) ** 2) / (2 * 8.0**2))
    torso_env = np.exp(-((bins - torso_bin) ** 2) / (2 * 8.0**2))
    head_phase = 0.9 * np.sin(2 * np.pi * 0.25 * t)
    chest_phase = 2.5 * np.sin(2 * np.pi * 0.25 * t + 1.0)
    frames += eye_amp * np.exp(1j * head_phase)[:, None] * eye_env[None, :]
    frames += torso_amp * np.exp(1j * chest_phase)[:, None] * torso_env[None, :]
    frames += noise * (rng.normal(size=frames.shape) + 1j * rng.normal(size=frames.shape))
    return frames


def golden_scenario(name: str):
    """Reconstruct the Scenario object for one golden spec."""
    from repro.physio import ParticipantProfile
    from repro.sim import Scenario

    participant, state, road, duration_s, shifts, _seed = GOLDEN_SPECS[name]
    return Scenario(
        participant=ParticipantProfile(participant),
        state=state,
        road=road,
        duration_s=duration_s,
        allow_posture_shifts=shifts,
    )


def frames_digest(frames: np.ndarray, timestamps_s: np.ndarray) -> str:
    """Chunking-free digest of a capture (frames + timestamps, C order)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(timestamps_s).tobytes())
    h.update(np.ascontiguousarray(frames).tobytes())
    return h.hexdigest()


def capture(name: str) -> Path:
    """Run the pipeline over one golden realisation and freeze its outputs."""
    from repro.core.pipeline import BlinkRadar
    from repro.eval.metrics import score_blink_detection
    from repro.sim import simulate

    seed = GOLDEN_SPECS[name][5]
    scenario = golden_scenario(name)
    trace = simulate(scenario, seed=seed)
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz)
    detection = radar.detect(trace.frames)
    score = score_blink_detection(trace.blink_times_s, detection.event_times_s)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    out = GOLDEN_DIR / f"pipeline_golden_{name}.npz"
    np.savez_compressed(
        out,
        frames_sha256=np.array(frames_digest(trace.frames, trace.timestamps_s)),
        seed=np.array(seed),
        frame_rate_hz=np.array(trace.frame_rate_hz),
        relative_distance=detection.relative_distance,
        selected_bins=detection.selected_bins,
        restart_times_s=np.array(detection.restart_times_s, dtype=float),
        event_frame_indices=np.array([e.frame_index for e in detection.events], dtype=int),
        event_times_s=np.array([e.time_s for e in detection.events], dtype=float),
        event_prominences=np.array([e.prominence for e in detection.events], dtype=float),
        accuracy=np.array(score.accuracy),
    )
    return out


def capture_synthetic() -> Path:
    """Freeze the synthetic posture-jump realisation (restart coverage)."""
    from repro.core.pipeline import BlinkRadar

    frames = synthetic_restart_frames()
    frame_rate_hz = 25.0
    timestamps_s = np.arange(len(frames)) / frame_rate_hz
    detection = BlinkRadar(frame_rate_hz=frame_rate_hz).detect(frames)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    out = GOLDEN_DIR / f"pipeline_golden_{SYNTHETIC_NAME}.npz"
    np.savez_compressed(
        out,
        frames_sha256=np.array(frames_digest(frames, timestamps_s)),
        seed=np.array(-1),
        frame_rate_hz=np.array(frame_rate_hz),
        relative_distance=detection.relative_distance,
        selected_bins=detection.selected_bins,
        restart_times_s=np.array(detection.restart_times_s, dtype=float),
        event_frame_indices=np.array([e.frame_index for e in detection.events], dtype=int),
        event_times_s=np.array([e.time_s for e in detection.events], dtype=float),
        event_prominences=np.array([e.prominence for e in detection.events], dtype=float),
        accuracy=np.array(np.nan),
    )
    return out


def main() -> None:
    for name in GOLDEN_SPECS:
        path = capture(name)
        data = np.load(path, allow_pickle=False)
        print(
            f"{name}: {path.name} events={len(data['event_times_s'])} "
            f"restarts={len(data['restart_times_s'])} "
            f"accuracy={float(data['accuracy']):.3f}"
        )
    path = capture_synthetic()
    data = np.load(path, allow_pickle=False)
    print(
        f"{SYNTHETIC_NAME}: {path.name} events={len(data['event_times_s'])} "
        f"restarts={len(data['restart_times_s'])}"
    )


if __name__ == "__main__":
    main()

"""CI smoke check for the gateway ingest service.

Brings the whole network stack up for real — TCP listener, HTTP
observability endpoint, scheduler worker pool — drives it with a small
client fleet, and verifies the three properties the gateway-smoke job
gates on:

1. **Zero loss below the backpressure threshold.** Each vehicle sends
   fewer frames than the per-session queue bound, so every frame pushed
   must come out of a detector; any shed frame fails the check.
2. **Well-formed /metrics.** The Prometheus scrape parses line by line
   (``# HELP``/``# TYPE`` comments plus ``name{labels} value`` samples),
   and the gateway's frame counter agrees exactly with what the clients
   sent. ``/healthz`` and ``/ready`` must answer 200.
3. **Bit-identical ingest.** Every server-side recording's content hash
   equals the source trace's.

Exit status 0 on success, 1 with a diagnostic on any failure::

    PYTHONPATH=src python tools/gateway_smoke.py --vehicles 4
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.gateway.http import MetricsHttpServer  # noqa: E402
from repro.gateway.loadgen import LoadGenerator, LoadReport  # noqa: E402
from repro.gateway.server import GatewayServer  # noqa: E402
from repro.physio import ParticipantProfile  # noqa: E402
from repro.sim import Scenario, simulate  # noqa: E402
from repro.store.reader import TraceReader  # noqa: E402
from repro.store.writer import TraceWriter  # noqa: E402

#: A Prometheus text-format sample line: metric name, optional label
#: set, and a value (float, integer, or NaN).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.eE+-]+|NaN)$"
)


def record_drive(path: Path, duration_s: float, seed: int) -> None:
    scenario = Scenario(
        participant=ParticipantProfile("SMK"),
        road="parked",
        state="awake",
        duration_s=duration_s,
        allow_posture_shifts=False,
    )
    trace = simulate(scenario, seed=seed)
    with TraceWriter(
        path, n_bins=trace.n_bins, frame_rate_hz=trace.frame_rate_hz
    ) as writer:
        for i in range(trace.n_frames):
            writer.append(trace.frames[i], i / trace.frame_rate_hz)


async def http_get(port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


def check_scrape(text: str, frames_sent: int) -> list[str]:
    """Return a list of problems with the /metrics payload (empty = ok)."""
    problems = []
    for line in text.splitlines():
        if not line or line.startswith("# "):
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"malformed sample line: {line!r}")
    expected = f"repro_gateway_frames_received_total {frames_sent}"
    if expected not in text.splitlines():
        problems.append(f"scrape lacks {expected!r}")
    if "# TYPE repro_gateway_frames_received_total counter" not in text:
        problems.append("frame counter family lacks a TYPE line")
    return problems


async def run_smoke(args: argparse.Namespace, drive: Path, record_dir: Path) -> int:
    server = GatewayServer(
        workers=args.workers,
        queue_depth=args.queue_depth,
        record_dir=record_dir,
        backend=args.backend,
    )
    await server.start()
    http = MetricsHttpServer(
        server.metrics, health=server.health, ready=lambda: server.ready
    )
    await http.start()
    print(
        f"gateway up on 127.0.0.1:{server.port} "
        f"(metrics :{http.port}, {args.workers} {args.backend} workers, "
        f"queue depth {args.queue_depth})"
    )
    failures = []
    try:
        fleet = LoadGenerator(
            "127.0.0.1", server.port, drive,
            vehicles=args.vehicles, max_frames=args.frames,
        )
        report: LoadReport = await fleet.run()
        print(
            f"{args.vehicles} clients sent {report.frames_sent} frames: "
            f"processed={report.frames_processed} "
            f"dropped={report.dropped_queue} "
            f"({report.achieved_fps:.0f} frames/s)"
        )

        # 1. Below the backpressure threshold, ingest must be lossless.
        if args.frames > args.queue_depth:
            failures.append(
                f"misconfigured smoke: {args.frames} frames/vehicle exceeds "
                f"queue depth {args.queue_depth} — the zero-loss gate only "
                "holds below the backpressure threshold"
            )
        if report.dropped_queue != 0:
            failures.append(f"{report.dropped_queue} frames shed below threshold")
        if report.frames_processed != report.frames_sent:
            failures.append(
                f"processed {report.frames_processed} != sent {report.frames_sent}"
            )

        # 2. The observability surface answers and parses.
        status, body = await http_get(http.port, "/metrics")
        if status != 200:
            failures.append(f"/metrics answered {status}")
        failures.extend(check_scrape(body.decode(), report.frames_sent))
        status, body = await http_get(http.port, "/healthz")
        if status != 200:
            failures.append(f"/healthz answered {status}")
        else:
            json.loads(body)  # must be valid JSON
        status, _ = await http_get(http.port, "/ready")
        if status != 200:
            failures.append(f"/ready answered {status}")
    finally:
        await http.stop()
        await server.shutdown()

    # 3. Socket ingest is bit-identical to the recorded source.
    with TraceReader(drive) as reader:
        source_hash = reader.content_hash()
    recordings = sorted(record_dir.glob("veh*.rst"))
    if len(recordings) != args.vehicles:
        failures.append(f"{len(recordings)} recordings for {args.vehicles} vehicles")
    for path in recordings:
        with TraceReader(path) as reader:
            if reader.content_hash() != source_hash:
                failures.append(f"{path.name} diverges from the source trace")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"smoke ok: zero loss, /metrics well-formed, "
        f"{len(recordings)} recordings bit-identical to source"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vehicles", type=int, default=4)
    parser.add_argument("--frames", type=int, default=150, help="frames per vehicle")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=4096)
    parser.add_argument(
        "--backend", choices=["threaded", "sharded"], default="threaded",
        help="scheduler backend the gateway multiplexes into",
    )
    parser.add_argument("--seed", type=int, default=19)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        drive = Path(tmp) / "drive.rst"
        record_dir = Path(tmp) / "recordings"
        record_dir.mkdir()
        record_drive(drive, duration_s=args.frames / 25.0, seed=args.seed)
        return asyncio.run(run_smoke(args, drive, record_dir))


if __name__ == "__main__":
    sys.exit(main())

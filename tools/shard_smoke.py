"""CI smoke check for the process-sharded fleet runtime (``repro.shard``).

Two phases, both run for real (worker processes, shared-memory rings):

1. **Crash recovery.** A 4-shard fleet streams synthetic frames into 8
   sessions; one worker is SIGKILLed mid-stream. The check gates on the
   shard loss contract: the fleet drains without hanging, exactly one
   shard crash is counted, sessions on surviving shards lose nothing,
   and every session's accounting conserves
   ``processed + crash_lost == accepted``. Re-homed sessions must keep
   processing after the crash (the replacement shard does real work).
2. **Gateway end-to-end over the sharded backend.** Reuses the
   gateway-smoke gates (zero loss below the backpressure threshold,
   well-formed /metrics, bit-identical recordings) with
   ``--backend sharded``, proving the serve surface really is a drop-in.

Exit status 0 on success, 1 with a diagnostic on any failure::

    PYTHONPATH=src python tools/shard_smoke.py
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.fleet.events import FrameDropEvent  # noqa: E402
from repro.gateway.ingest import IngestSession  # noqa: E402
from repro.shard.fleet import ShardedFleet  # noqa: E402

import gateway_smoke  # noqa: E402

_DRAIN_TIMEOUT_S = 120.0


def crash_lost(session: IngestSession) -> int:
    return sum(
        e.n_dropped
        for e in session.events
        if isinstance(e, FrameDropEvent) and e.where == "crash"
    )


def run_crash_phase(args: argparse.Namespace) -> list[str]:
    failures: list[str] = []
    rng = np.random.default_rng(args.seed)
    n_bins, fps = 64, 25.0
    sids = [f"veh{i:02d}" for i in range(args.sessions)]
    traces = {
        sid: (
            rng.standard_normal((args.frames, n_bins))
            + 1j * rng.standard_normal((args.frames, n_bins))
        ).astype(np.complex64)
        for sid in sids
    }
    sessions = {
        sid: IngestSession(sid, n_bins=n_bins, frame_rate_hz=fps) for sid in sids
    }
    fleet = ShardedFleet([], workers=args.workers, queue_depth=4096, slot_bins=n_bins)
    fleet.start()
    victim_sids: list[str] = []
    try:
        for session in sessions.values():
            session.start()
            fleet.attach(session)
        accepted = {sid: 0 for sid in sids}
        kill_at = args.frames // 3
        for k in range(args.frames):
            if k == kill_at:
                victim = fleet._pool[0]
                victim_sids = [
                    sid for sid, w in fleet._assign.items() if w is victim
                ]
                print(
                    f"SIGKILL shard {victim.shard_index} (pid {victim.process.pid}) "
                    f"homing {victim_sids}"
                )
                os.kill(victim.process.pid, signal.SIGKILL)
            for sid, session in sessions.items():
                if fleet.submit(sid, session.make_item(k / fps, traces[sid][k])):
                    accepted[sid] += 1
        deadline = time.monotonic() + _DRAIN_TIMEOUT_S
        while not fleet.idle():
            if time.monotonic() > deadline:
                failures.append("fleet never drained after the crash (deadlock)")
                return failures
            time.sleep(0.01)
        crashes = int(fleet.metrics.counter("fleet.shard_crashes").value)
        if crashes != 1:
            failures.append(f"expected exactly 1 shard crash, counted {crashes}")
        if not victim_sids:
            failures.append("victim shard homed no sessions — smoke misconfigured")
        for sid in sids:
            session = sessions[sid]
            lost = crash_lost(session)
            if session.frames_processed + lost != accepted[sid]:
                failures.append(
                    f"{sid}: processed {session.frames_processed} + lost {lost} "
                    f"!= accepted {accepted[sid]}"
                )
            if sid in victim_sids:
                if session.frames_processed == 0:
                    failures.append(f"{sid}: re-homed session never resumed")
            elif lost != 0:
                failures.append(f"{sid}: survivor shard lost {lost} frames")
        total_lost = sum(crash_lost(sessions[sid]) for sid in sids)
        print(
            f"crash phase: {crashes} crash, {total_lost} frames lost "
            f"(all on the dead shard), survivors lossless"
        )
        for sid in sids:
            fleet.detach(sid)
    finally:
        fleet.stop()
        for session in sessions.values():
            session.close()
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="shard processes")
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--frames", type=int, default=600, help="frames per session")
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args(argv)

    failures = run_crash_phase(args)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gateway e2e over the sharded backend:")
    return gateway_smoke.main(["--backend", "sharded", "--workers", str(args.workers)])


if __name__ == "__main__":
    sys.exit(main())

"""The process-sharded fleet runtime, end to end, in one script.

Three acts. First the same simulated drive streams through the
**threaded** scheduler and the **sharded** fleet — worker processes fed
over shared-memory rings — via the identical serve surface, and every
blink event matches bit for bit: the shard workers run the exact
``process_batch`` path the threads do, just on the other side of a
process boundary. Then a worker is SIGKILLed mid-stream to show the
crash contract: the loss is counted and bounded to the dead shard's
in-flight frames, its sessions are re-homed onto a fresh worker and
keep processing, and sessions on surviving shards lose nothing.
Finally the parent's metrics registry — aggregated from worker deltas —
renders the whole run.

Run:
    python examples/sharded_fleet.py
"""

import os
import signal
import time

from repro.fleet.events import FrameDropEvent
from repro.fleet.metrics import MetricsRegistry
from repro.fleet.scheduler import FleetScheduler
from repro.gateway.ingest import IngestSession
from repro.physio import ParticipantProfile
from repro.shard.fleet import ShardedFleet
from repro.sim import Scenario, simulate

N_VEHICLES = 4
DURATION_S = 8.0


def make_trace():
    scenario = Scenario(
        participant=ParticipantProfile("SHD"),
        road="parked",
        state="drowsy",  # frequent blinks: more events to compare
        duration_s=DURATION_S,
        allow_posture_shifts=False,
    )
    return simulate(scenario, seed=21)


def stream(backend, trace, sessions):
    """Push the trace through any serve-surface backend and drain it."""
    for session in sessions:
        session.start()
        backend.attach(session)
    for k in range(trace.n_frames):
        for session in sessions:
            backend.submit(
                session.session_id,
                session.make_item(k / trace.frame_rate_hz, trace.frames[k]),
            )
    while not all(backend.drained(s.session_id) for s in sessions):
        time.sleep(0.005)
    for session in sessions:
        backend.detach(session.session_id)


def blink_tuples(session):
    return [(e.frame_index, e.time_s, e.prominence) for e in session.blink_events]


def act_one_bit_identity(trace):
    print("— act one: threaded vs sharded, same frames —")

    metrics = MetricsRegistry()
    threaded = FleetScheduler([], workers=2, metrics=metrics)
    threaded.start()
    t_sessions = [
        IngestSession(f"v{k}", n_bins=trace.n_bins, frame_rate_hz=trace.frame_rate_hz,
                      metrics=metrics)
        for k in range(N_VEHICLES)
    ]
    stream(threaded, trace, t_sessions)
    threaded.stop()
    # close() flushes each detector's pending blink; the sharded detach
    # already did that worker-side, so close both before comparing.
    for session in t_sessions:
        session.close()

    sharded = ShardedFleet([], workers=2, slot_bins=trace.n_bins)
    sharded.start()
    s_sessions = [
        IngestSession(f"v{k}", n_bins=trace.n_bins, frame_rate_hz=trace.frame_rate_hz,
                      metrics=sharded.metrics)
        for k in range(N_VEHICLES)
    ]
    stream(sharded, trace, s_sessions)
    sharded.stop()

    for t, s in zip(t_sessions, s_sessions):
        assert blink_tuples(t) == blink_tuples(s), t.session_id
        print(f"  {t.session_id}: {len(t.blink_events)} blinks, "
              "bit-identical across backends")
    for session in s_sessions:
        session.close()


def act_two_crash(trace):
    print("\n— act two: SIGKILL one shard mid-stream —")
    fleet = ShardedFleet([], workers=4, slot_bins=trace.n_bins)
    fleet.start()
    sessions = [
        IngestSession(f"c{k}", n_bins=trace.n_bins, frame_rate_hz=trace.frame_rate_hz,
                      metrics=fleet.metrics)
        for k in range(N_VEHICLES)
    ]
    for session in sessions:
        session.start()
        fleet.attach(session)
    victim = fleet.shards()  # shard -> homed session ids, pre-crash
    accepted = {s.session_id: 0 for s in sessions}
    for k in range(trace.n_frames):
        if k == trace.n_frames // 2:
            # Reach into the pool only to stage the failure; everything
            # observed below goes through the public surface.
            os.kill(fleet._pool[0].process.pid, signal.SIGKILL)
        for session in sessions:
            if fleet.submit(
                session.session_id,
                session.make_item(k / trace.frame_rate_hz, trace.frames[k]),
            ):
                accepted[session.session_id] += 1
    while not fleet.idle():
        time.sleep(0.005)

    crashes = fleet.metrics.counter("fleet.shard_crashes").value
    print(f"  crashes supervised: {crashes:.0f}; "
          f"homes before: {dict(sorted(victim.items()))}")
    print(f"  homes after re-home: {dict(sorted(fleet.shards().items()))}")
    for session in sessions:
        lost = sum(
            e.n_dropped for e in session.events
            if isinstance(e, FrameDropEvent) and e.where == "crash"
        )
        assert session.frames_processed + lost == accepted[session.session_id]
        tag = f"lost {lost} in-flight at the kill" if lost else "lossless"
        print(f"  {session.session_id}: processed {session.frames_processed}"
              f"/{accepted[session.session_id]} ({tag})")
    for session in sessions:
        fleet.detach(session.session_id)
    fleet.stop()
    for session in sessions:
        session.close()
    return fleet.metrics


def act_three_metrics(metrics):
    print("\n— act three: one registry spanning every worker process —")
    snap = metrics.as_dict()
    for name in ("fleet.frames_processed", "fleet.blinks", "fleet.shard_crashes",
                 "fleet.dropped_crash"):
        print(f"  {name} = {snap['counters'].get(name, 0):.0f}")
    latency = snap["histograms"]["fleet.latency_s"]
    print(f"  fleet.latency_s p50={latency['p50'] * 1e3:.1f} ms "
          f"p99={latency['p99'] * 1e3:.1f} ms "
          f"(worker-side observations, replayed exactly)")


def main() -> None:
    print(f"simulating a {DURATION_S:.0f} s drowsy drive ...")
    trace = make_trace()
    act_one_bit_identity(trace)
    metrics = act_two_crash(trace)
    act_three_metrics(metrics)


if __name__ == "__main__":
    main()

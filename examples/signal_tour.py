"""A guided tour of the BlinkRadar signal chain, stage by stage.

Walks one simulated capture through every stage of Fig. 3 and prints what
each stage sees: the transmit pulse, the multipath range profile, noise
reduction, the I/Q trajectory of the eye bin, the viewing position, the
relative-distance waveform and the final LEVD detections.

Run:
    python examples/signal_tour.py
"""

import numpy as np

from repro import Scenario, simulate
from repro.core.binselect import select_eye_bin
from repro.core.levd import detect_blinks
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.dsp.circlefit import fit_circle_dominant
from repro.physio import ParticipantProfile
from repro.rf.pulse import GaussianPulse


def main() -> None:
    print("=" * 64)
    print("1. RF signal design (Sec. IV-A)")
    pulse = GaussianPulse()
    print(f"   Gaussian pulse: sigma={pulse.sigma_s*1e9:.3f} ns, "
          f"duration={pulse.duration_s*1e9:.2f} ns")
    print(f"   carrier 7.3 GHz, -10 dB bandwidth "
          f"{pulse.measured_bandwidth_10db(60e9)/1e9:.2f} GHz")

    print("=" * 64)
    print("2. A 30 s capture at the 40 cm operating point")
    scenario = Scenario(participant=ParticipantProfile("tour"),
                        duration_s=30.0, allow_posture_shifts=False)
    trace = simulate(scenario, seed=3)
    print(f"   {trace.n_frames} frames x {trace.n_bins} range bins, "
          f"{len(trace.blink_events)} blinks in ground truth")

    print("=" * 64)
    print("3. Preprocessing (Sec. IV-B): cascading filter")
    pre = Preprocessor(PreprocessorConfig(subtract_background=False))
    processed = pre.apply(trace.frames)
    raw_noise = np.std(np.abs(trace.frames[:, -10:]))
    out_noise = np.std(np.abs(processed[:, -10:]))
    print(f"   empty-range noise: {raw_noise:.2e} -> {out_noise:.2e} "
          f"({20*np.log10(raw_noise/out_noise):.1f} dB suppression)")

    print("=" * 64)
    print("4. Range-bin identification (Sec. IV-D)")
    selection = select_eye_bin(processed[:175])
    cfg = scenario.radar
    print(f"   selected bin {selection.bin_index} "
          f"({cfg.bin_to_range(selection.bin_index):.3f} m); "
          f"true eye bin {trace.eye_bin} ({cfg.bin_to_range(trace.eye_bin):.3f} m)")
    print(f"   candidate dynamic peaks: "
          + ", ".join(f"{cfg.bin_to_range(b):.2f} m" for b in selection.candidate_bins))

    print("=" * 64)
    print("5. Viewing position by arc fitting (Sec. IV-E)")
    series = processed[:, selection.bin_index]
    fit = fit_circle_dominant(series[60:])
    print(f"   arc centre (I/Q): {fit.center.real:.2e} + {fit.center.imag:.2e}j")
    print(f"   arc radius |dynamic vector|: {fit.radius:.2e}")

    print("=" * 64)
    print("6. Relative distance r(k) + LEVD")
    r = np.abs(series - fit.center)
    events = detect_blinks(r[60:], 25.0)
    detected = [e.time_s + 60 / 25 for e in events]
    print(f"   LEVD found {len(events)} blinks")
    print("   true:     " + "  ".join(f"{t:5.1f}" for t in trace.blink_times_s))
    print("   detected: " + "  ".join(f"{t:5.1f}" for t in detected))


if __name__ == "__main__":
    main()

"""Quickstart: simulate one driving session and detect the blinks.

Run:
    python examples/quickstart.py
"""

from repro import BlinkRadar, Scenario, simulate
from repro.eval.metrics import score_blink_detection
from repro.physio import ParticipantProfile


def main() -> None:
    # One driver, one minute on a smooth highway, radar on the windshield
    # 40 cm from the eyes (the paper's operating point).
    scenario = Scenario(
        participant=ParticipantProfile("demo-driver"),
        road="smooth_highway",
        state="awake",
        duration_s=60.0,
    )
    trace = simulate(scenario, seed=42)
    print(f"simulated {trace.duration_s:.0f} s, {trace.n_frames} frames, "
          f"{len(trace.blink_events)} true blinks")

    # The detector sees only the complex radar frames — exactly what the
    # real device streams out.
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz)
    result = radar.detect(trace.frames)

    print(f"detected {len(result.events)} blinks "
          f"({result.blink_rate_per_min():.1f}/min)")
    print("true:     " + "  ".join(f"{t:5.1f}" for t in trace.blink_times_s))
    print("detected: " + "  ".join(f"{t:5.1f}" for t in result.event_times_s))

    score = score_blink_detection(trace.blink_times_s, result.event_times_s)
    print(f"\naccuracy (paper's metric): {score.accuracy:.2%}   "
          f"precision: {score.precision:.2%}   F1: {score.f1:.2%}")


if __name__ == "__main__":
    main()

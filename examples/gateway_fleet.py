"""A simulated vehicle fleet streaming frames to the ingest gateway.

Everything the network subsystem does, end to end, in one script: a
short drive is recorded to a ``.rst`` trace, a :class:`GatewayServer`
opens a TCP port in front of the shared fleet scheduler, and a
:class:`LoadGenerator` fleet of six vehicles replays the drive over real
sockets — length-prefixed frames, CRC-32, completion acks and all. A
:class:`MetricsHttpServer` exposes the same run as a Prometheus scrape.

The punchline is the determinism check at the end: the gateway tees
every ingested session into its own ``.rst`` catalog, and each recorded
file's content hash equals the source trace's — the socket path is
bit-identical to a local replay.

Run:
    python examples/gateway_fleet.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.gateway.http import MetricsHttpServer
from repro.gateway.loadgen import LoadGenerator
from repro.gateway.server import GatewayServer
from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate
from repro.store import Catalog
from repro.store.reader import TraceReader
from repro.store.writer import TraceWriter

N_VEHICLES = 6
DURATION_S = 8.0


def record_drive(path: Path) -> None:
    """Simulate one short parked drive and freeze it as ``.rst``."""
    scenario = Scenario(
        participant=ParticipantProfile("GW1"),
        road="parked",
        state="awake",
        duration_s=DURATION_S,
        allow_posture_shifts=False,
    )
    trace = simulate(scenario, seed=7)
    with TraceWriter(
        path, n_bins=trace.n_bins, frame_rate_hz=trace.frame_rate_hz
    ) as writer:
        for i in range(trace.n_frames):
            writer.append(trace.frames[i], i / trace.frame_rate_hz)


async def serve_fleet(drive: Path, record_dir: Path) -> None:
    server = GatewayServer(workers=4, record_dir=record_dir)
    await server.start()
    http = MetricsHttpServer(
        server.metrics, health=server.health, ready=lambda: server.ready
    )
    await http.start()
    print(f"gateway listening on 127.0.0.1:{server.port}, "
          f"metrics on http://127.0.0.1:{http.port}/metrics")
    try:
        fleet = LoadGenerator(
            "127.0.0.1", server.port, drive, vehicles=N_VEHICLES, speed=0.0
        )
        report = await fleet.run()

        summary = report.as_dict()
        print(f"\n{summary['vehicles']} vehicles pushed "
              f"{summary['frames_sent']} frames in {summary['wall_s']:.2f} s "
              f"({summary['achieved_fps']:.0f} frames/s aggregate)")
        print(f"processed={summary['frames_processed']} "
              f"dropped={summary['dropped_queue']} blinks={summary['blinks']}")
        p = summary["e2e_latency_s"]
        print(f"e2e latency p50={p['p50'] * 1e3:.0f} ms  "
              f"p95={p['p95'] * 1e3:.0f} ms  p99={p['p99'] * 1e3:.0f} ms")

        scrape = server.metrics.render_prometheus()
        gateway_lines = [
            line for line in scrape.splitlines()
            if line.startswith("repro_gateway_") and not line.startswith("# ")
        ]
        print("\nPrometheus scrape (gateway families):")
        for line in gateway_lines:
            print(f"  {line}")
    finally:
        await http.stop()
        await server.shutdown()


def verify_recordings(drive: Path, record_dir: Path) -> None:
    """Every gateway-side recording hashes identically to the source."""
    with TraceReader(drive) as reader:
        source_hash = reader.content_hash()
    recordings = sorted(record_dir.glob("veh*.rst"))
    assert len(recordings) == N_VEHICLES, (len(recordings), N_VEHICLES)
    for path in recordings:
        with TraceReader(path) as reader:
            assert reader.content_hash() == source_hash, path.name
    print(f"\n{len(recordings)} gateway recordings verified: "
          f"content hash {source_hash[:16]}… matches the source trace "
          f"(socket ingest is bit-identical to local replay)")
    # The catalog dedupes by content hash — six identical replays fold
    # into one entry, which is exactly what a trace collector wants.
    catalog = Catalog(record_dir, create=False)
    print(f"catalog holds {len(catalog.names())} unique drive(s) "
          f"for {len(recordings)} recordings")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        drive = Path(tmp) / "drive.rst"
        record_dir = Path(tmp) / "recordings"
        record_dir.mkdir()
        print(f"recording a {DURATION_S:.0f} s drive ...")
        record_drive(drive)
        asyncio.run(serve_fleet(drive, record_dir))
        verify_recordings(drive, record_dir)


if __name__ == "__main__":
    main()

"""Drowsy-driving monitoring: the paper's end-to-end use case (Sec. IV-F).

Calibrates a per-driver drowsiness model from labelled awake/drowsy
captures (the paper's "training set"), then classifies fresh one-minute
windows — the deployment loop of an in-vehicle drowsiness monitor.

Two models are shown: the paper's literal blink-rate threshold, and the
default rate+duration model (drowsy blinks are both more frequent and more
than twice as long — Sec. II).

Run:
    python examples/drowsy_driving_monitor.py
"""

from repro import BlinkRadar, Scenario, simulate
from repro.physio import ParticipantProfile


def capture(scenario: Scenario, seed: int):
    return simulate(scenario, seed=seed).frames


def main() -> None:
    driver = ParticipantProfile("night-shift-driver")
    radar = BlinkRadar(frame_rate_hz=25.0)

    awake = Scenario(participant=driver, state="awake",
                     road="smooth_highway", duration_s=60.0)
    drowsy = Scenario(participant=driver, state="drowsy",
                      road="smooth_highway", duration_s=60.0)

    # --- calibration: two labelled captures per state -------------------
    print("calibrating on two awake + two drowsy minutes ...")
    calibration = dict(
        awake_captures=[capture(awake, 1), capture(awake, 2)],
        drowsy_captures=[capture(drowsy, 1), capture(drowsy, 2)],
    )
    rate_model = radar.train_drowsiness(**calibration, features="rate")
    dual_model = radar.train_drowsiness(**calibration)  # rate+duration

    print(f"  rate model: awake ~{rate_model.awake_mean:.1f}/min, "
          f"drowsy ~{rate_model.drowsy_mean:.1f}/min, "
          f"threshold {rate_model.threshold:.1f}")
    print(f"  dual model: awake (rate, dur) ~({dual_model.awake_mean[0]:.1f}, "
          f"{dual_model.awake_mean[1]:.2f}s), drowsy ~({dual_model.drowsy_mean[0]:.1f}, "
          f"{dual_model.drowsy_mean[1]:.2f}s)\n")

    # --- monitoring: classify fresh minutes -----------------------------
    scores = {"rate": [0, 0], "rate+duration": [0, 0]}
    for true_state, scenario in (("awake", awake), ("drowsy", drowsy)):
        for seed in (11, 12, 13):
            frames = capture(scenario, seed)
            for name, model in (("rate", rate_model), ("rate+duration", dual_model)):
                for verdict in radar.detect_drowsiness(frames, model):
                    scores[name][0] += verdict == true_state
                    scores[name][1] += 1
                    if name == "rate+duration":
                        flag = "ALERT! " if verdict == "drowsy" else "       "
                        ok = "+" if verdict == true_state else "-"
                        print(f"{flag}window classified {verdict:6s} "
                              f"(truth {true_state})  [{ok}]")

    print()
    for name, (correct, total) in scores.items():
        print(f"{name:14s}: {correct}/{total} = {correct/total:.0%} "
              "(paper median: 92.2%)")


if __name__ == "__main__":
    main()

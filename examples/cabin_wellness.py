"""In-cabin wellness: blinks, drowsiness AND vital signs from one radar.

The interference BlinkRadar suppresses — breathing at the torso, heartbeat
(BCG) at the head — is exactly the signal of in-vehicle vital-sign systems
like V2iFi. This example runs both consumers on one frame stream: the
blink pipeline and the vital-signs monitor, with the blink detections fed
back to clean the heart-rate estimate.

Run:
    python examples/cabin_wellness.py
"""

import numpy as np

from repro import BlinkRadar, Scenario, simulate
from repro.core.analytics import estimate_blink_durations
from repro.core.vitals import VitalSignsMonitor
from repro.physio import ParticipantProfile
from repro.physio.cardiac import CardiacModel
from repro.physio.respiration import RespirationModel


def main() -> None:
    driver = ParticipantProfile(
        "wellness-driver",
        respiration=RespirationModel(rate_hz=0.27),   # 16.2 breaths/min
        cardiac=CardiacModel(rate_hz=1.2),            # 72 bpm
    )
    scenario = Scenario(participant=driver, road="smooth_highway",
                        duration_s=60.0)
    trace = simulate(scenario, seed=99)

    radar = BlinkRadar(frame_rate_hz=25.0)
    result = radar.detect(trace.frames)
    durations = estimate_blink_durations(
        result.relative_distance, result.events, 25.0
    )

    monitor = VitalSignsMonitor(25.0)
    vitals = monitor.measure(
        trace.frames,
        blink_frames=np.array([e.frame_index for e in result.events]),
    )

    print("one minute of driving, one radar, three read-outs\n")
    print(f"blinks        : {len(result.events)} detected "
          f"({result.blink_rate_per_min():.1f}/min, "
          f"mean duration {np.nanmean(durations):.2f} s)")
    print(f"respiration   : {vitals.respiration_bpm:.1f} breaths/min "
          f"(simulated truth {driver.respiration.rate_hz * 60:.1f})")
    print(f"heart rate    : {vitals.heart_rate_bpm:.0f} bpm "
          f"(simulated truth {driver.cardiac.rate_hz * 60:.0f}; BCG-based "
          "estimates are coarse)")
    print(f"\nsensor bins    : head/eyes at bin {vitals.head_bin}, "
          f"torso at bin {vitals.torso_bin}")


if __name__ == "__main__":
    main()

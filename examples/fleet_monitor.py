"""A fleet of vehicles monitored concurrently, faults and all.

Eight simulated vehicles stream through one ``FleetService``: a shared
worker pool runs every per-vehicle blink detector, bounded queues apply
backpressure, and three of the vehicles suffer injected SPI fault bursts
mid-drive — the marginal-harness failure a deployed head unit actually
sees. The monitor proves three things end to end:

- every faulted session recovers (DEGRADED -> COLD_START -> RUNNING)
  and still finishes STOPPED;
- the scheduler changes nothing: a clean session's blinks are identical
  to the single-session offline pipeline on the same frames;
- the metrics registry captures it all — restarts, counted frame drops,
  latency percentiles — in one JSON-ready snapshot.

Run:
    python examples/fleet_monitor.py
"""

from repro.core.realtime import RealTimeBlinkDetector
from repro.eval.metrics import score_blink_detection
from repro.fleet import FleetService, StateChangeEvent, VehicleSpec
from repro.hardware import FrameStream, SpiBus, UwbRadarDevice, XepDriver

N_VEHICLES = 8
DURATION_S = 20.0
ROADS = ["smooth_highway", "bumpy", "smooth_highway", "parked"]
#: Vehicle id -> seconds into the drive its SPI harness glitches.
FAULTS = {"v01": 6.0, "v04": 9.0, "v06": 13.0}


def main() -> None:
    service = FleetService(workers=4)
    for k in range(N_VEHICLES):
        vehicle_id = f"v{k:02d}"
        service.add_vehicle(
            VehicleSpec(
                vehicle_id,
                road=ROADS[k % len(ROADS)],
                state="drowsy" if k % 3 == 2 else "awake",
                duration_s=DURATION_S,
                seed=100 + k,
                fault_at_s=FAULTS.get(vehicle_id),
            )
        )
    print(f"monitoring {N_VEHICLES} vehicles ({len(FAULTS)} with injected SPI faults) ...")
    service.run()

    print("\nper-session health:")
    for sid, h in service.health().items():
        flag = "  <- faulted" if sid in FAULTS else ""
        print(
            f"  {sid}: {h['state']:8s} frames={h['frames_processed']:4d} "
            f"blinks={h['blinks']:2d} restarts={h['restarts']} "
            f"fifo_drops={h['dropped_fifo']}{flag}"
        )
        assert h["state"] == "stopped", f"{sid} did not exit cleanly"

    # Every faulted session must have walked the full recovery path.
    for sid in FAULTS:
        seq = [
            (e.old_state, e.new_state)
            for e in service.events_of(StateChangeEvent)
            if e.session_id == sid
        ]
        assert any(new == "degraded" for _, new in seq), f"{sid} never degraded"
        recovered = seq.index(("degraded", "cold_start"))
        assert ("cold_start", "running") in seq[recovered:], f"{sid} never recovered"
    print(f"\nall {len(FAULTS)} faulted sessions recovered "
          "(degraded -> cold_start -> running)")

    # A clean fleet session is bit-identical to the single-session
    # pipeline: the same device -> SPI -> driver -> detector loop run the
    # plain way (cf. examples/realtime_device_stream.py), no scheduler.
    for sid in ("v00", "v03"):
        frames = service.traces[sid].frames
        device = UwbRadarDevice(frame_source=frames)
        driver = XepDriver(SpiBus(device), n_bins=frames.shape[1])
        driver.probe()
        driver.configure(frame_rate_div=4, tx_power=0xFF)
        driver.start()
        detector = RealTimeBlinkDetector(frame_rate_hz=25.0)
        for _, frame in FrameStream(driver, device, n_frames=frames.shape[0]):
            detector.process_frame(frame)
        detector.finish()
        reference = [e.time_s for e in detector.events]
        assert service.sessions[sid].blink_times_s == reference, sid
    print("clean sessions match the single-session pipeline exactly")

    print("\naccuracy vs ground truth (paper metric):")
    for sid, trace in service.traces.items():
        score = score_blink_detection(
            trace.blink_times_s, service.sessions[sid].blink_times_s
        )
        print(f"  {sid}: {score.accuracy:.3f}" + ("  (faulted)" if sid in FAULTS else ""))

    snap = service.metrics_snapshot()
    counters, latency = snap["counters"], snap["histograms"]["fleet.latency_s"]
    assert counters["fleet.restarts"] >= len(FAULTS)
    assert counters["fleet.dropped_fifo"] > 0
    print("\nfleet metrics snapshot:")
    print(f"  frames processed : {counters['fleet.frames_processed']}")
    print(f"  blinks           : {counters['fleet.blinks']}")
    print(f"  restarts         : {counters['fleet.restarts']}")
    print(f"  fifo drops       : {counters['fleet.dropped_fifo']}")
    print(f"  stale flushes    : {counters.get('fleet.dropped_stale', 0)}")
    print(f"  queue drops      : {counters.get('fleet.dropped_queue', 0)}")
    print(
        f"  latency p50/p95/p99 : {latency['p50'] * 1e3:.1f} / "
        f"{latency['p95'] * 1e3:.1f} / {latency['p99'] * 1e3:.1f} ms"
    )
    print(f"  throughput       : {snap['gauges']['fleet.throughput_fps']:.0f} frames/s")


if __name__ == "__main__":
    main()

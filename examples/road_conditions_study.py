"""Road-conditions study: how driving conditions affect detection.

Replays a compact version of the paper's Sec. VI-H evaluation: the same
driver across the road-condition catalogue, reporting blink-detection
accuracy and restart counts per condition.

Run:
    python examples/road_conditions_study.py
"""

import numpy as np

from repro import Scenario
from repro.eval.runner import run_session
from repro.physio import ParticipantProfile
from repro.vehicle.road import ROAD_TYPES


def main() -> None:
    driver = ParticipantProfile("study-driver")
    conditions = ["parked", "smooth_highway", "uphill", "intersection",
                  "left_turn", "roundabout", "bumpy"]
    seeds = (5, 6)

    print(f"{'condition':16s} {'accuracy':>9s} {'false alarms':>13s} {'restarts':>9s}")
    print("-" * 52)
    for road in conditions:
        accs, fas, restarts = [], [], []
        for seed in seeds:
            scenario = Scenario(participant=driver, road=road,
                                state="awake", duration_s=60.0)
            result = run_session(scenario, seed=seed)
            accs.append(result.accuracy)
            fas.append(result.score.false_alarms)
            restarts.append(len(result.detection.restart_times_s))
        print(f"{road:16s} {np.mean(accs):9.2%} {np.mean(fas):13.1f} "
              f"{np.mean(restarts):9.1f}")

    print("\nvibration severity of each condition (for context):")
    for road in conditions:
        cond = ROAD_TYPES[road]
        print(f"  {road:16s} roughness {cond.vibration_rms_m*1e3:5.2f} mm rms, "
              f"maneuvers {cond.maneuver_rate_hz:.3f}/s")


if __name__ == "__main__":
    main()

"""Real-time pipeline over the emulated device stack.

The full loop of the paper's implementation (Sec. V): the IR-UWB chip
produces int16 I/Q frames into its FIFO, the host driver reads them over
SPI, and the streaming detector emits blink events with a 2 s cold start —
all emulated, all exercised.

Run:
    python examples/realtime_device_stream.py
"""

from repro import BlinkRadar, Scenario, simulate
from repro.hardware import FrameStream, SpiBus, UwbRadarDevice, XepDriver
from repro.physio import ParticipantProfile


def main() -> None:
    # A 30 s drive feeds the emulated chip.
    scenario = Scenario(
        participant=ParticipantProfile("streaming-driver"),
        road="smooth_highway",
        duration_s=30.0,
    )
    trace = simulate(scenario, seed=7)

    device = UwbRadarDevice(frame_source=trace.frames)
    driver = XepDriver(SpiBus(device), n_bins=trace.n_bins)
    version = driver.probe()
    print(f"probed radar chip, firmware version {version:#04x}")
    driver.configure(frame_rate_div=4, tx_power=0xFF)  # 25 FPS, full power
    driver.start()

    radar = BlinkRadar(frame_rate_hz=25.0)
    print("streaming (first 2 s are the cold start) ...")
    for timestamp, frame in FrameStream(driver, device, n_frames=trace.n_frames):
        status = radar.process_frame(frame)
        if status.restarted:
            print(f"  [{timestamp:5.1f}s] body movement -> pipeline restart")
        if status.event is not None:
            print(f"  [{timestamp:5.1f}s] BLINK  "
                  f"(prominence {status.event.prominence:.2e})")
    driver.stop()

    print(f"\nstream done: {len(radar.stream_events)} blinks detected, "
          f"{len(trace.blink_events)} in ground truth")
    print("true blink times: " + "  ".join(f"{t:.1f}" for t in trace.blink_times_s))


if __name__ == "__main__":
    main()

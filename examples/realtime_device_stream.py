"""Real-time pipeline over the emulated device stack, recorded to disk.

The full loop of the paper's implementation (Sec. V): the IR-UWB chip
produces int16 I/Q frames into its FIFO, the host driver reads them over
SPI, and the streaming detector emits blink events with a 2 s cold start
— all emulated, all exercised. On top of the live loop, this example
tees the stream into a ``repro.store`` recording and then replays the
file through a second detector, proving the replayed events are
identical to the live ones, detection for detection.

Run:
    python examples/realtime_device_stream.py
"""

import tempfile
from pathlib import Path

from repro import BlinkRadar, Scenario, simulate
from repro.hardware import FrameStream, SpiBus, UwbRadarDevice, XepDriver
from repro.physio import ParticipantProfile
from repro.store import Recorder, ReplaySource


def main() -> None:
    # A 30 s drive feeds the emulated chip.
    scenario = Scenario(
        participant=ParticipantProfile("streaming-driver"),
        road="smooth_highway",
        duration_s=30.0,
    )
    trace = simulate(scenario, seed=7)

    device = UwbRadarDevice(frame_source=trace.frames)
    driver = XepDriver(SpiBus(device), n_bins=trace.n_bins)
    version = driver.probe()
    print(f"probed radar chip, firmware version {version:#04x}")
    driver.configure(frame_rate_div=4, tx_power=0xFF)  # 25 FPS, full power
    driver.start()

    recording = Path(tempfile.mkdtemp()) / "stream.rst"
    radar = BlinkRadar(frame_rate_hz=25.0)
    print("streaming (first 2 s are the cold start) ...")
    stream = FrameStream(driver, device, n_frames=trace.n_frames)
    # complex128 keeps the chip's decoded frames bit-exact on disk, so
    # the replay below can reproduce the live session byte for byte.
    with Recorder(
        recording,
        n_bins=trace.n_bins,
        frame_rate_hz=25.0,
        dtype="complex128",
        metadata={"road": scenario.road, "seed": 7},
    ) as recorder:
        for timestamp, frame in recorder.tee(stream):
            status = radar.process_frame(frame)
            if status.restarted:
                print(f"  [{timestamp:5.1f}s] body movement -> pipeline restart")
            if status.event is not None:
                print(f"  [{timestamp:5.1f}s] BLINK  "
                      f"(prominence {status.event.prominence:.2e})")
        recorder.set_labels(
            blink_events=[(e.start_s, e.duration_s) for e in trace.blink_events],
            state=trace.state,
            eye_bin=trace.eye_bin,
        )
    driver.stop()

    print(f"\nstream done: {len(radar.stream_events)} blinks detected, "
          f"{len(trace.blink_events)} in ground truth")
    print("true blink times: " + "  ".join(f"{t:.1f}" for t in trace.blink_times_s))

    # Replay the recording through a fresh detector: every frame the
    # live pipeline saw comes back bit-identical from disk, so the
    # event lists must match exactly.
    replayed = BlinkRadar(frame_rate_hz=25.0)
    with ReplaySource(recording) as source:
        for _timestamp, frame in source:
            replayed.process_frame(frame)
    live_events = [e.frame_index for e in radar.stream_events]
    replay_events = [e.frame_index for e in replayed.stream_events]
    if live_events != replay_events:
        raise AssertionError(
            f"replay diverged from live stream: {live_events} != {replay_events}"
        )
    print(f"replayed {recording.name}: {len(replay_events)} blinks, "
          "identical to the live stream")


if __name__ == "__main__":
    main()

"""Shared fixtures and helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports (via :mod:`repro.eval.report`) and
asserts the *shape* — orderings, approximate levels, crossovers — rather
than the authors' exact numbers, since the substrate here is a simulator,
not their vehicle (see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate


def base_scenario(**kwargs) -> Scenario:
    """The default operating point: P01, 40 cm, boresight, parked."""
    defaults = dict(
        participant=ParticipantProfile("P01"),
        duration_s=60.0,
        road="parked",
        state="awake",
        allow_posture_shifts=False,
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


@pytest.fixture(scope="session")
def trace_catalog(tmp_path_factory):
    """Session-scoped trace-store catalog caching expensive captures."""
    from repro.store import Catalog

    return Catalog(tmp_path_factory.mktemp("trace-cache"))


@pytest.fixture(scope="session")
def reference_trace(trace_catalog):
    """One 60 s reference capture shared by the signal-level figures.

    Captured through the trace-store catalog: the first request
    simulates and records a ``.rst`` file, every later request replays
    it from disk bit-for-bit (complex128 round trip is exact).
    """
    return trace_catalog.get_or_simulate(base_scenario(), seed=77)


def timed_fps(run, n_frames: int, *, warmup=None, repeats: int = 3):
    """Centralised throughput timing: best-of-``repeats`` wall seconds
    and frames/s for ``run()``, with warm-up excluded from the window.

    ``warmup`` executes once, *before* the first timestamp, so one-time
    costs — the lazy scipy import, scratch-buffer growth, page faults on
    fresh buffers — are charged to no steady-state frame. (The previous
    ad-hoc loops timed their warm-up iterations inside the measured
    window *and* counted those frames in the reported fps, inflating
    short-capture throughput; every frames/s this helper reports comes
    only from the timed ``run()`` calls.)

    Best-of-N rather than mean: benchmark hosts share cores with noisy
    neighbours, and the minimum is the least-contended estimate of the
    actual compute cost. Each ``run()`` must be independent (construct
    fresh detectors inside it).
    """
    if warmup is not None:
        warmup()
    best_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, n_frames / best_s


from pathlib import Path

#: Every printed block is also appended here, so the paper-vs-measured
#: record survives pytest's output capture (EXPERIMENTS.md is built from
#: this artifact).
RESULTS_PATH = Path(__file__).parent / "latest_results.txt"


def pytest_sessionstart(session):
    """Start a fresh results artifact for each benchmark session."""
    RESULTS_PATH.write_text("")


def print_block(text: str) -> None:
    """Print a report block and persist it to the results artifact."""
    print("\n" + text + "\n")
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n\n")

"""reprolint speed — the cost of the dataflow engine on the real tree.

Not a paper figure: this benchmark sizes the lint gate itself. The
dataflow engine (CFG build + two fixpoint solves per function) made a
cold run meaningfully more expensive than the purely lexical first
generation, and the content-hash cache exists to buy that back for the
pre-commit / warm-CI case. We time three configurations over the full
``src`` + ``tests`` tree — serial cold, parallel cold, and parallel
warm (``--cache``, second run) — and record them in ``BENCH_lint.json``
so the perf trajectory survives across PRs.

Assertions are shape, not absolute wall time (CI hosts vary): the tree
must stay clean, the warm run must hit the cache for every file and
beat the cold run, and a cold full-tree lint must stay within an
interactive budget.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import print_block
from repro.eval.report import format_table
from repro.lint.cache import ResultCache
from repro.lint.engine import discover_files, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = Path(__file__).parent / "BENCH_lint.json"
LINT_PATHS = [REPO_ROOT / "src", REPO_ROOT / "tests"]

#: Generous ceiling for a cold parallel full-tree run. A typical dev
#: host does this in well under a second; tripping 30 s means the
#: engine went accidentally quadratic, not that the host is slow.
COLD_BUDGET_S = 30.0


def timed_lint(jobs, cache=None):
    start = time.perf_counter()
    result = lint_paths(LINT_PATHS, jobs=jobs, root=REPO_ROOT, cache=cache)
    return result, time.perf_counter() - start


@pytest.mark.slow
def test_lint_speed(tmp_path):
    n_files = len(discover_files(LINT_PATHS))
    cache_dir = tmp_path / "reprolint_cache"

    serial, serial_s = timed_lint(jobs=1)
    parallel, parallel_s = timed_lint(jobs=None)
    timed_lint(jobs=None, cache=ResultCache(cache_dir))  # populate
    warm_cache = ResultCache(cache_dir)
    warm, warm_s = timed_lint(jobs=None, cache=warm_cache)

    results = [
        {"mode": "serial cold", "wall_s": serial_s, "files": serial.files},
        {"mode": "parallel cold", "wall_s": parallel_s, "files": parallel.files},
        {"mode": "parallel warm", "wall_s": warm_s, "files": warm.files},
    ]
    rows = [
        [r["mode"], r["files"], f"{r['wall_s'] * 1e3:.0f}", f"{r['files'] / r['wall_s']:.0f}"]
        for r in results
    ]
    print_block(
        format_table(
            "reprolint full-tree speed (src + tests)",
            ["mode", "files", "wall ms", "files/s"],
            rows,
        )
    )
    BENCH_PATH.write_text(
        json.dumps(
            {
                "files": n_files,
                "cache": {"hits": warm_cache.hits, "misses": warm_cache.misses},
                "results": results,
            },
            indent=2,
        )
    )

    # The benchmark doubles as a whole-tree gate: the dataflow families
    # run here with no baseline, so the tree itself must be clean.
    for result in (serial, parallel, warm):
        assert result.diagnostics == []
        assert result.files == n_files
    # The warm run must answer every file from the cache and win.
    assert (warm_cache.hits, warm_cache.misses) == (n_files, 0)
    assert warm_s < parallel_s
    assert parallel_s < COLD_BUDGET_S

"""reprolint speed — the cost of the dataflow engine on the real tree.

Not a paper figure: this benchmark sizes the lint gate itself. The
dataflow engine (CFG build + two fixpoint solves per function) made a
cold run meaningfully more expensive than the purely lexical first
generation, and the content-hash cache exists to buy that back for the
pre-commit / warm-CI case. The interprocedural layer (call graph +
bottom-up summaries) adds a whole-tree analysis pass on top; its facts
store must keep the warm path cheap. We time the full rule set — serial
cold, parallel cold, parallel warm (``--cache``, second run) — plus a
warm run of the intra-procedural subset only, and record everything in
``BENCH_lint.json`` so the perf trajectory survives across PRs.

Assertions are shape, not absolute wall time (CI hosts vary): the tree
must stay clean, the warm run must hit the cache for every file and
beat the cold run, a cold full-tree lint must stay within an
interactive budget, and the warm *interprocedural* run must stay within
2x of the warm intra-procedural run (with a small absolute floor so
scheduler jitter on a sub-50 ms measurement cannot fail the gate).
"""

import json
import time
from pathlib import Path

import pytest

from conftest import print_block
from repro.eval.report import format_table
from repro.lint.cache import ResultCache
from repro.lint.engine import discover_files, lint_paths
from repro.lint.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = Path(__file__).parent / "BENCH_lint.json"
LINT_PATHS = [REPO_ROOT / "src", REPO_ROOT / "tests"]

#: Generous ceiling for a cold parallel full-tree run. A typical dev
#: host does this in well under a second; tripping 30 s means the
#: engine went accidentally quadratic, not that the host is slow.
COLD_BUDGET_S = 30.0

#: The warm interprocedural run must cost at most this multiple of the
#: warm intra-procedural run: the summary store means a no-change rerun
#: pays one digest check, not a whole-tree re-analysis.
WARM_INTERPROC_RATIO = 2.0

#: Below this absolute wall time the ratio gate is moot — both warm
#: runs are inside scheduler-jitter territory and a 2x "regression"
#: of a 20 ms measurement is noise, not a perf change.
WARM_ABS_FLOOR_S = 0.25


def timed_lint(jobs, cache=None, rules=None, repeat=1):
    best = None
    result = None
    for _ in range(repeat):
        kwargs = {} if rules is None else {"rules": rules}
        start = time.perf_counter()
        result = lint_paths(
            LINT_PATHS, jobs=jobs, root=REPO_ROOT, cache=cache, **kwargs
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


@pytest.mark.slow
def test_lint_speed(tmp_path):
    n_files = len(discover_files(LINT_PATHS))
    intra_rules = tuple(r for r in all_rules() if not r.requires_project)
    assert len(intra_rules) < len(all_rules())  # the interproc family exists

    serial, serial_s = timed_lint(jobs=1)
    parallel, parallel_s = timed_lint(jobs=None)

    full_dir = tmp_path / "cache_full"
    timed_lint(jobs=None, cache=ResultCache(full_dir))  # populate
    warm_cache = ResultCache(full_dir)
    warm, warm_s = timed_lint(jobs=None, cache=warm_cache, repeat=3)

    intra_dir = tmp_path / "cache_intra"
    timed_lint(jobs=None, cache=ResultCache(intra_dir), rules=intra_rules)
    warm_intra, warm_intra_s = timed_lint(
        jobs=None, cache=ResultCache(intra_dir), rules=intra_rules, repeat=3
    )

    results = [
        {"mode": "serial cold", "wall_s": serial_s, "files": serial.files},
        {"mode": "parallel cold", "wall_s": parallel_s, "files": parallel.files},
        {"mode": "parallel warm", "wall_s": warm_s, "files": warm.files},
        {
            "mode": "parallel warm intra-only",
            "wall_s": warm_intra_s,
            "files": warm_intra.files,
        },
    ]
    rows = [
        [r["mode"], r["files"], f"{r['wall_s'] * 1e3:.0f}", f"{r['files'] / r['wall_s']:.0f}"]
        for r in results
    ]
    print_block(
        format_table(
            "reprolint full-tree speed (src + tests)",
            ["mode", "files", "wall ms", "files/s"],
            rows,
        )
    )
    BENCH_PATH.write_text(
        json.dumps(
            {
                "files": n_files,
                "cache": {"hits": warm_cache.hits, "misses": warm_cache.misses},
                "results": results,
                "interproc": {
                    "rules_total": len(all_rules()),
                    "rules_intra_only": len(intra_rules),
                    "warm_full_s": warm_s,
                    "warm_intra_s": warm_intra_s,
                    "warm_ratio": warm_s / warm_intra_s,
                },
            },
            indent=2,
        )
    )

    # The benchmark doubles as a whole-tree gate: the dataflow families
    # run here with no baseline, so the tree itself must be clean.
    for result in (serial, parallel, warm, warm_intra):
        assert result.diagnostics == []
        assert result.files == n_files
    # The warm run must answer every file from the cache and win.
    assert (warm_cache.hits, warm_cache.misses) == (n_files * 3, 0)
    assert warm_s < parallel_s
    assert parallel_s < COLD_BUDGET_S
    # Interprocedural analysis must stay cheap on the warm path.
    assert warm_s <= max(WARM_INTERPROC_RATIO * warm_intra_s, WARM_ABS_FLOOR_S)

"""Gateway ingest capacity — how many vehicles one socket endpoint serves.

Not a paper figure: this benchmark sizes ``repro.gateway``, the network
front door in front of the fleet scheduler. A :class:`LoadGenerator`
fleet of 16, 64 and 256 simulated vehicles replays the same recorded
drive through real TCP connections as fast as the sockets accept
(unpaced, i.e. saturation), and we record the aggregate ingest
throughput plus the honest client-measured end-to-end latency
percentiles — wire framing, CRC, scheduler queueing and detector math
all included, as measured from the completion acks.

The per-session queue bound (4096) exceeds the frames each vehicle
sends, so every run below is *below the backpressure threshold* and must
be lossless; drop-oldest shedding is exercised separately by the unit
suite. Results land in ``BENCH_gateway.json`` so the capacity trajectory
survives across PRs.
"""

import asyncio
import json
from pathlib import Path

import pytest

from conftest import print_block
from repro.eval.report import format_table
from repro.gateway.loadgen import LoadGenerator
from repro.gateway.server import GatewayServer
from repro.physio import ParticipantProfile
from repro.sim import Scenario, simulate
from repro.store.writer import TraceWriter

BENCH_PATH = Path(__file__).parent / "BENCH_gateway.json"
FLEET_SIZES = [16, 64, 256]
WORKERS = 4
QUEUE_DEPTH = 4096
FRAMES_PER_VEHICLE = 100
FRAME_RATE_HZ = 25.0


@pytest.fixture(scope="module")
def drive_path(tmp_path_factory) -> Path:
    """A short parked drive as an ``.rst`` recording every vehicle replays."""
    scenario = Scenario(
        participant=ParticipantProfile("GWB"),
        road="parked",
        state="awake",
        duration_s=FRAMES_PER_VEHICLE / FRAME_RATE_HZ,
        allow_posture_shifts=False,
    )
    trace = simulate(scenario, seed=63)
    path = tmp_path_factory.mktemp("gateway-bench") / "drive.rst"
    with TraceWriter(
        path, n_bins=trace.n_bins, frame_rate_hz=trace.frame_rate_hz
    ) as writer:
        for i in range(trace.n_frames):
            writer.append(trace.frames[i], i / trace.frame_rate_hz)
    return path


def run_load(drive_path: Path, n_vehicles: int) -> dict:
    async def go():
        server = GatewayServer(workers=WORKERS, queue_depth=QUEUE_DEPTH)
        await server.start()
        try:
            generator = LoadGenerator(
                "127.0.0.1",
                server.port,
                drive_path,
                vehicles=n_vehicles,
                max_frames=FRAMES_PER_VEHICLE,
            )
            return await generator.run()
        finally:
            await server.shutdown()

    report = asyncio.run(go())

    # Conservation and losslessness below the backpressure threshold:
    # every frame pushed was either processed or (never, here) shed.
    assert report.frames_sent == n_vehicles * FRAMES_PER_VEHICLE
    assert report.frames_processed + report.dropped_queue == report.frames_sent
    assert report.dropped_queue == 0
    return report.as_dict()


@pytest.mark.slow
def test_gateway_load(drive_path):
    results = [run_load(drive_path, n) for n in FLEET_SIZES]

    rows = [
        [
            r["vehicles"],
            r["frames_sent"],
            f"{r['wall_s']:.2f}",
            f"{r['achieved_fps']:.0f}",
            f"{r['achieved_fps'] / (FRAME_RATE_HZ * r['vehicles']):.1f}x",
            f"{r['e2e_latency_s']['p50'] * 1e3:.0f}",
            f"{r['e2e_latency_s']['p95'] * 1e3:.0f}",
            f"{r['e2e_latency_s']['p99'] * 1e3:.0f}",
        ]
        for r in results
    ]
    print_block(
        format_table(
            f"Gateway ingest capacity ({WORKERS} workers, "
            f"{FRAMES_PER_VEHICLE} frames/vehicle, unpaced)",
            [
                "vehicles",
                "frames",
                "wall s",
                "frames/s",
                "real-time",
                "p50 ms",
                "p95 ms",
                "p99 ms",
            ],
            rows,
        )
    )

    BENCH_PATH.write_text(
        json.dumps(
            {
                "workers": WORKERS,
                "queue_depth": QUEUE_DEPTH,
                "frames_per_vehicle": FRAMES_PER_VEHICLE,
                "results": results,
            },
            indent=2,
        )
    )

    # Shape, not absolute numbers: the latency estimate must be fed by
    # real samples and be internally ordered; the smaller fleets must
    # beat their own real-time budget (25 FPS per vehicle) — the claim
    # that makes a socket front door viable at all — and at 256
    # vehicles, where a 4-worker pool may saturate below the 6400 fps
    # budget, aggregate throughput must hold up rather than collapse
    # under connection overhead.
    for r in results:
        assert r["latency_samples"] > 0
        p = r["e2e_latency_s"]
        assert p["p50"] <= p["p95"] <= p["p99"]
    for r in results[:2]:
        assert r["achieved_fps"] > FRAME_RATE_HZ * r["vehicles"]
    assert results[-1]["achieved_fps"] > 0.5 * results[0]["achieved_fps"]

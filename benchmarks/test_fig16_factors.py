"""Fig. 16 — other factors: glasses, road types, eye size, detection window.

Paper:
- 16(a): myopia glasses 94 %, sunglasses 93 % (slightly below bare eyes).
- 16(b): accuracy decreases over road-type groups 1→4 (smooth → bumpy/
  maneuver-heavy).
- 16(c): smaller eyes reduce accuracy, but even the smallest (3.5×0.8 cm)
  stays above 90 %.
- 16(d): drowsiness detection is best with 1–2 min windows; the paper
  settles on 1 min.
"""

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.core.drowsy import BlinkRateClassifier, blink_rate_windows
from repro.core.pipeline import BlinkRadar
from repro.datasets import EYE_SIZE_LEVELS
from repro.eval.report import format_series
from repro.eval.sweeps import eye_size_sweep, glasses_sweep, road_group_sweep
from repro.sim import Scenario, simulate
from repro.vehicle.road import ROAD_GROUPS

SEEDS = [71, 72, 73]


@pytest.mark.slow
def test_fig16a_glasses(benchmark):
    base = base_scenario(duration_s=60.0)
    results = benchmark.pedantic(lambda: glasses_sweep(base, SEEDS), rounds=1, iterations=1)
    print_block(format_series("Fig. 16(a): accuracy vs eyewear (paper: none > "
                              "myopia .94 > sunglasses .93)", results, unit="accuracy"))
    # Shape: both kinds of glasses cost a little accuracy; sunglasses most;
    # the system keeps working ("can still complete the routine work").
    assert results["none"] >= results["myopia"] - 0.03
    assert results["myopia"] >= results["sunglasses"] - 0.03
    assert results["sunglasses"] >= 0.6


@pytest.mark.slow
def test_fig16b_road_type_groups(benchmark):
    base = base_scenario(duration_s=60.0)
    groups = {g: roads[:2] for g, roads in ROAD_GROUPS.items()}
    results = benchmark.pedantic(
        lambda: road_group_sweep(base, SEEDS[:2], groups), rounds=1, iterations=1
    )
    print_block(format_series("Fig. 16(b): accuracy vs road group (paper: group 1 "
                              "best, bumpy/maneuvers worst)", results, unit="accuracy"))
    # Shape: the smooth group is at least as good as the maneuver-heavy
    # and bumpy groups; everything stays in a usable regime.
    assert results[1] >= results[4] - 0.05
    assert min(results.values()) >= 0.6
    assert max(results.values()) >= 0.8


@pytest.mark.slow
def test_fig16c_eye_size(benchmark):
    base = base_scenario(duration_s=60.0)
    results = benchmark.pedantic(
        lambda: eye_size_sweep(base, SEEDS[:2], EYE_SIZE_LEVELS), rounds=1, iterations=1
    )
    print_block(format_series("Fig. 16(c): accuracy vs eye size S1..S6 (paper: "
                              ">90% even at 3.5x0.8cm)", results, unit="accuracy"))
    # Shape: bigger eyes never hurt; the smallest eye still works.
    assert results["S6"] >= results["S1"] - 0.05
    assert results["S1"] >= 0.65


@pytest.mark.slow
def test_fig16d_detection_window(benchmark):
    """Drowsy accuracy vs decision-window length over 4-minute sessions.

    One set of captures is detected once; only the windowing varies, as in
    the paper's sweep of 1–4 minutes.
    """
    participant = base_scenario().participant
    radar = BlinkRadar(25.0)

    def battery():
        rates = {}
        events = {}
        for state in ("awake", "drowsy"):
            scenario = Scenario(participant=participant, state=state,
                                duration_s=240.0, road="smooth_highway")
            train = radar.detect(simulate(scenario, seed=81).frames)
            test = radar.detect(simulate(scenario, seed=82).frames)
            events[state] = (train, test)

        accuracy = {}
        for window_s in (60.0, 120.0, 180.0, 240.0):
            awake_train = blink_rate_windows(
                events["awake"][0].event_times_s, 240.0, window_s)
            drowsy_train = blink_rate_windows(
                events["drowsy"][0].event_times_s, 240.0, window_s)
            clf = BlinkRateClassifier().fit(awake_train, drowsy_train)
            correct = total = 0
            for state in ("awake", "drowsy"):
                test_rates = blink_rate_windows(
                    events[state][1].event_times_s, 240.0, window_s)
                verdicts = clf.classify_windows(test_rates)
                correct += sum(v == state for v in verdicts)
                total += len(verdicts)
            accuracy[window_s / 60.0] = correct / total
        return accuracy

    accuracy = benchmark.pedantic(battery, rounds=1, iterations=1)
    print_block(format_series("Fig. 16(d): drowsy accuracy vs window (min) "
                              "(paper: best at 1-2 min)", accuracy, unit="accuracy"))
    # Shape: short windows already work well — the paper's reason to pick
    # a 1-minute window (longer windows delay detection without gains that
    # matter; with 4-min sessions they also leave very few test windows).
    assert accuracy[1.0] >= 0.7

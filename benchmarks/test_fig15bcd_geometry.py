"""Fig. 15(b,c,d) — accuracy vs distance, elevation and azimuth.

Paper:
- 15(b): >95 % at 40 cm; ~91 % at 80 cm ("keep the device within 0.4 m").
- 15(c): high accuracy (≈95 %) within 30° elevation, decreasing above.
- 15(d): >90 % within 0–15° azimuth, significant drop beyond 30°.

All three curves emerge from the radar equation, the antenna pattern and
the eye's specular aspect factor — no per-experiment tuning.
"""

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.eval.report import format_series
from repro.eval.sweeps import azimuth_sweep, distance_sweep, elevation_sweep

SEEDS = [61, 62, 63]


@pytest.mark.slow
def test_fig15b_distance(benchmark):
    base = base_scenario(duration_s=60.0)
    results = benchmark.pedantic(
        lambda: distance_sweep(base, SEEDS, distances_m=(0.2, 0.4, 0.8)),
        rounds=1, iterations=1,
    )
    print_block(format_series("Fig. 15(b): accuracy vs distance (paper: ~.96/.95+/.91)",
                              results, unit="accuracy"))
    # Shape: 40 cm is the sweet spot the paper recommends; 80 cm is never
    # better than 40 cm; everything stays in a usable regime. (Our thermal
    # margin at 80 cm is gentler than the testbed's, so the 0.4→0.8 drop
    # can be within noise of the battery — see EXPERIMENTS.md.)
    assert results[0.4] >= 0.8
    assert results[0.4] >= max(results.values()) - 0.01
    assert results[0.8] <= results[0.4] + 0.01
    assert min(results.values()) >= 0.6


@pytest.mark.slow
def test_fig15c_elevation(benchmark):
    base = base_scenario(duration_s=60.0)
    results = benchmark.pedantic(
        lambda: elevation_sweep(base, SEEDS), rounds=1, iterations=1
    )
    print_block(format_series("Fig. 15(c): accuracy vs elevation (paper: ~95% to 30°)",
                              results, unit="accuracy"))
    # Shape: high through 30°, monotone loss beyond.
    assert results[0] >= 0.8
    assert results[15] >= 0.8
    assert results[30] >= 0.7
    assert results[45] < results[30]
    assert results[60] < results[45] + 0.05
    assert results[60] < 0.5


@pytest.mark.slow
def test_fig15d_azimuth(benchmark):
    base = base_scenario(duration_s=60.0)
    results = benchmark.pedantic(
        lambda: azimuth_sweep(base, SEEDS), rounds=1, iterations=1
    )
    print_block(format_series("Fig. 15(d): accuracy vs azimuth (paper: >90% to 15°, "
                              "drop past 30°)", results, unit="accuracy"))
    # Shape: high inside 15°, then the "significant drop" — the exact
    # knee between 30° and 45° sits at threshold and jitters between
    # adjacent angles on a small battery, so the assertion brackets it.
    assert results[0] >= 0.85
    assert results[15] >= 0.8
    assert results[30] < results[15]
    assert max(results[30], results[45]) < results[15] - 0.2
    assert results[60] < 0.3  # azimuth collapses hard (Sec. VIII)

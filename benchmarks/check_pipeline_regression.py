"""Perf-regression gate for the core pipeline (run by CI).

Compares the freshly measured ``BENCH_pipeline.json`` against the
committed ``BENCH_pipeline_baseline.json`` and fails (exit 1) when
frames/s-per-core at S=64 regressed by more than ``TOLERANCE``.

The 15% tolerance absorbs run-to-run noise on shared CI hosts (the
benchmark already reports best-of-N to shave the noise floor); a real
regression from a hot-path change — a stray per-frame allocation, a
de-fused kernel — costs well over 15%. The baseline is refreshed in the
same PR whenever a deliberate perf change or a benchmark-host change
moves the number; ``host`` metadata in both files records where each
measurement came from, and the gate warns when they differ.

Usage::

    python benchmarks/check_pipeline_regression.py [candidate] [baseline]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Maximum tolerated frames/s-per-core drop at S=64 (fraction).
TOLERANCE = 0.15
GATED_SESSIONS = 64

HERE = Path(__file__).parent


def fps_at(bench: dict, sessions: int, path: Path) -> float:
    for row in bench["throughput"]:
        if row["sessions"] == sessions:
            return float(row["fps_per_core"])
    raise SystemExit(f"{path}: no throughput entry for S={sessions}")


def main(argv: list[str]) -> int:
    candidate_path = Path(argv[1]) if len(argv) > 1 else HERE / "BENCH_pipeline.json"
    baseline_path = (
        Path(argv[2]) if len(argv) > 2 else HERE / "BENCH_pipeline_baseline.json"
    )
    candidate = json.loads(candidate_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    new = fps_at(candidate, GATED_SESSIONS, candidate_path)
    old = fps_at(baseline, GATED_SESSIONS, baseline_path)
    floor = (1.0 - TOLERANCE) * old
    ratio = new / old

    if candidate.get("host") != baseline.get("host"):
        print(
            "warning: candidate and baseline were measured on different hosts\n"
            f"  candidate: {candidate.get('host')}\n"
            f"  baseline : {baseline.get('host')}\n"
            "  absolute fps is host-dependent; refresh the baseline when the "
            "benchmark host changes."
        )

    print(
        f"frames/s per core at S={GATED_SESSIONS}: "
        f"candidate {new:.0f} vs baseline {old:.0f} "
        f"({ratio:.2%}, floor {floor:.0f} at {TOLERANCE:.0%} tolerance)"
    )
    if new < floor:
        print(
            f"FAIL: pipeline throughput regressed more than {TOLERANCE:.0%} — "
            "either fix the hot path or, for a deliberate trade-off, refresh "
            "benchmarks/BENCH_pipeline_baseline.json in this PR and justify it."
        )
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""Fig. 5 — the transmitted pulse x_k(t) in time and frequency domain.

Regenerates both panels' series: the carrier-modulated Gaussian pulse
(Fig. 5(a), ~2 ns long) and its spectrum centred at 7.3 GHz with a 1.4 GHz
−10 dB bandwidth (Fig. 5(b)).
"""

import numpy as np
import pytest

from conftest import print_block
from repro.eval.report import format_table
from repro.rf.pulse import GaussianPulse

SAMPLE_RATE = 60e9


def test_fig05_pulse_time_and_frequency(benchmark):
    pulse = GaussianPulse(carrier_hz=7.3e9, bandwidth_hz=1.4e9)

    t, x = benchmark.pedantic(
        lambda: pulse.waveform(SAMPLE_RATE), rounds=5, iterations=1
    )
    freqs, amp = pulse.spectrum(SAMPLE_RATE)
    measured_bw = pulse.measured_bandwidth_10db(SAMPLE_RATE)
    peak_f = freqs[np.argmax(amp)]

    rows = [
        ["pulse duration (ns)", f"{pulse.duration_s * 1e9:.2f}", "~2 (Fig. 5a)"],
        ["peak |x(t)|", f"{np.abs(x).max():.3f}", "1.0 (V_tx)"],
        ["spectral peak (GHz)", f"{peak_f / 1e9:.2f}", "7.3"],
        ["-10 dB bandwidth (GHz)", f"{measured_bw / 1e9:.3f}", "1.4"],
    ]
    print_block(format_table("Fig. 5: transmitted signal", ["quantity", "measured", "paper"], rows))

    assert 1.0 < pulse.duration_s * 1e9 < 4.0
    assert peak_f == pytest.approx(7.3e9, rel=0.02)
    assert measured_bw == pytest.approx(1.4e9, rel=0.03)

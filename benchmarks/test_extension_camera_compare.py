"""Extension — radar vs camera across illumination.

Not a paper figure, but the paper's central motivation made runnable:
"the performance of camera-based systems degrades in low lighting
conditions" (Sec. I) while an RF sensor never sees light. The benchmark
sweeps illumination from bright cabin to night and compares the simulated
camera's F1 against BlinkRadar's (lighting-independent) F1 on statistically
identical drivers.
"""

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.baselines.camera import CameraModel, EarBlinkDetector, simulate_ear_series
from repro.core.pipeline import BlinkRadar
from repro.eval.metrics import score_blink_detection
from repro.eval.report import format_table
from repro.physio import ParticipantProfile
from repro.sim import simulate

LUX_LEVELS = (5000.0, 240.0, 20.0, 2.0)
SEEDS = (51, 52)


@pytest.mark.slow
def test_extension_camera_vs_radar(benchmark):
    participant = ParticipantProfile("CMP")

    def battery():
        # Radar F1 (no illumination dependence — computed once).
        radar_f1 = []
        for seed in SEEDS:
            trace = simulate(base_scenario(duration_s=60.0), seed=seed)
            result = BlinkRadar(25.0).detect(trace.frames)
            radar_f1.append(
                score_blink_detection(trace.blink_times_s, result.event_times_s).f1
            )
        radar = float(np.mean(radar_f1))

        rows = []
        cam_f1_by_lux = {}
        for lux in LUX_LEVELS:
            cam_scores = []
            for seed in SEEDS:
                cam = CameraModel(illumination_lux=lux)
                ear, events = simulate_ear_series(
                    participant, 60.0, cam, rng=np.random.default_rng(seed)
                )
                times = EarBlinkDetector().detect(ear, cam.frame_rate_hz)
                cam_scores.append(
                    score_blink_detection(
                        np.array([e.center_s for e in events]), times
                    ).f1
                )
            cam_f1_by_lux[lux] = float(np.mean(cam_scores))
            rows.append([f"{lux:g} lux", f"{cam_f1_by_lux[lux]:.3f}", f"{radar:.3f}"])
        return rows, cam_f1_by_lux, radar

    rows, cam_f1, radar_f1 = benchmark.pedantic(battery, rounds=1, iterations=1)
    print_block(format_table(
        "Extension: camera vs radar blink F1 across illumination",
        ["illumination", "camera F1", "radar F1 (light-independent)"], rows,
    ))

    # Shape: camera ≥ radar in daylight; camera collapses at night while
    # the radar obviously does not move.
    assert cam_f1[5000.0] >= radar_f1 - 0.05
    assert cam_f1[2.0] < 0.5
    assert radar_f1 > 0.75
    assert cam_f1[2.0] < radar_f1

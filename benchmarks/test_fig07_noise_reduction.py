"""Fig. 7 — the fast-time signal without and with SNR enhancement.

The paper shows a noisy received frame (7(a)) cleaned up by the cascading
FIR + smoothing filter (7(b)). The reproduction measures the actual SNR
gain of the cascade on a simulated frame and benchmarks the filter's
per-frame cost (it must fit comfortably inside the 40 ms frame budget).
"""

import numpy as np
import pytest

from conftest import print_block
from repro.core.preprocess import Preprocessor
from repro.eval.report import format_table


def make_frame(noise_sigma: float, seed: int = 0, n_bins: int = 234):
    rng = np.random.default_rng(seed)
    bins = np.arange(n_bins)
    clean = (
        2.0e-4 * np.exp(-((bins - 62.0) ** 2) / (2 * 8.0**2))
        + 1.5e-4 * np.exp(-((bins - 117.0) ** 2) / (2 * 8.0**2))
    ).astype(complex)
    noise = noise_sigma * (rng.normal(size=n_bins) + 1j * rng.normal(size=n_bins))
    return clean, clean + noise


def snr_db(reference, signal):
    err = signal - reference
    return 10 * np.log10(np.sum(np.abs(reference) ** 2) / np.sum(np.abs(err) ** 2))


def test_fig07_noise_reduction(benchmark):
    pre = Preprocessor()
    clean, noisy = make_frame(noise_sigma=4e-5)

    denoised = benchmark(pre.denoise_frame, noisy)

    # The cascade smooths the reference too (the envelope broadens); the
    # fair comparison is against the equally-filtered clean frame.
    reference = pre.denoise_frame(clean)
    before = snr_db(clean, noisy)
    after = snr_db(reference, denoised)

    rows = [
        ["SNR before (dB)", f"{before:.1f}"],
        ["SNR after (dB)", f"{after:.1f}"],
        ["gain (dB)", f"{after - before:.1f}"],
    ]
    print_block(format_table("Fig. 7: cascading-filter SNR enhancement", ["quantity", "value"], rows))

    # The paper's figure shows clearly suppressed noise; a 16-point
    # coherent smoother is worth ~12 dB on white noise.
    assert after - before > 8.0
    assert after > 10.0


def test_fig07_filter_fits_frame_budget(benchmark):
    pre = Preprocessor()
    _, noisy = make_frame(noise_sigma=4e-5, seed=1)
    result = benchmark(pre.denoise_frame, noisy)
    assert result.shape == noisy.shape
    # 40 ms frame period; preprocessing one frame must take a small
    # fraction of it even in pure Python.
    assert benchmark.stats["mean"] < 0.020

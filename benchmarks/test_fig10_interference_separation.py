"""Fig. 10 — head movement vs eye blink in I/Q space; noise bins vs eye bin.

Two claims to reproduce:

- Fig. 10(a): head movement rotates the eye bin's phasor along an arc of
  near-constant radius (tangential), while a blink moves it radially — so
  the relative distance r(k) to the arc centre is flat under head motion
  and bumps under blinks.
- Fig. 10(b): the eye bin's 2-D I/Q trajectory has far more variance than
  thermal-noise bins even between blinks (the persistent respiration/BCG
  disturbance the bin selector exploits).
"""

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.core.binselect import variance_profile
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.dsp.circlefit import fit_circle_dominant
from repro.eval.report import format_table
from repro.physio import DriverModel
from repro.sim import simulate


def test_fig10a_head_motion_tangential_blink_radial(benchmark):
    scenario = base_scenario(duration_s=40.0)
    trace = simulate(scenario, seed=9)
    pre = Preprocessor(PreprocessorConfig(subtract_background=False))
    processed = benchmark.pedantic(lambda: pre.apply(trace.frames), rounds=1, iterations=1)
    series = processed[:, trace.eye_bin]

    rng = np.random.default_rng(9)
    motion = DriverModel(scenario.participant).generate(
        trace.n_frames, 25.0, "awake", rng, allow_posture_shifts=False
    )
    quiet = motion.eyelid_closure < 0.02
    quiet[:60] = False

    fit = fit_circle_dominant(series[quiet])
    r = np.abs(series - fit.center)

    # Head motion sweeps a real angle yet barely moves r.
    angles = np.unwrap(np.angle(series[quiet] - fit.center))
    angle_span = np.percentile(angles, 97) - np.percentile(angles, 3)
    r_quiet_spread = np.percentile(r[quiet], 97) - np.percentile(r[quiet], 3)

    blink_excursions = []
    for e in trace.blink_events:
        a, b = int(e.start_s * 25), int(e.end_s * 25)
        if a < 70:
            continue
        blink_excursions.append(np.abs(r[a : b + 2] - np.median(r[quiet])).max())
    blink_excursion = float(np.median(blink_excursions))

    rows = [
        ["head-motion arc span (rad)", f"{angle_span:.2f}"],
        ["tangential excursion (arc length)", f"{fit.radius * angle_span:.3e}"],
        ["radial spread under head motion", f"{r_quiet_spread:.3e}"],
        ["median blink radial excursion", f"{blink_excursion:.3e}"],
    ]
    print_block(format_table("Fig. 10(a): tangential vs radial motion", ["quantity", "value"], rows))

    assert angle_span > 0.5                       # the arc is real
    assert r_quiet_spread < 0.3 * fit.radius      # head motion ~tangential
    assert blink_excursion > 3 * r_quiet_spread   # blinks stand out radially


def test_fig10b_eye_bin_variance_vs_noise_bins(benchmark):
    trace = simulate(base_scenario(duration_s=20.0), seed=10)
    pre = Preprocessor(PreprocessorConfig(subtract_background=False))
    processed = pre.apply(trace.frames)
    var = benchmark(variance_profile, processed[:400])

    eye_var = var[trace.eye_bin - 3 : trace.eye_bin + 4].max()
    noise_floor = np.percentile(var, 10)

    rows = [
        ["eye-bin 2-D variance", f"{eye_var:.3e}"],
        ["noise-floor variance (p10)", f"{noise_floor:.3e}"],
        ["ratio", f"{eye_var / noise_floor:.0f}"],
    ]
    print_block(format_table("Fig. 10(b): eye bin vs noise bins", ["quantity", "value"], rows))

    # "While the 1D amplitude variation ... is slight, the 2D I/Q vector
    # space signal varies greatly" — even without waiting for a blink.
    assert eye_var > 50 * noise_floor

"""Trace-store I/O — the disk path must never be the bottleneck.

Not a paper figure: this benchmark sizes ``repro.store`` against the
two paths it replaces or feeds. Write throughput must dwarf the live
acquisition rate (25 FPS × one 234-bin complex frame ≈ 94 KB/s for
complex128), mmap-backed reads must beat ``np.load`` on the same trace
(the zero-copy claim), and an unpaced replay must clear the real-time
budget by a wide margin (the headroom that lets one host replay many
recordings faster than real time). Results land in ``BENCH_store.json``
so the I/O trajectory survives across PRs.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.eval.report import format_table
from repro.sim import simulate
from repro.store import ReplaySource, TraceReader, TraceWriter, write_trace

BENCH_PATH = Path(__file__).parent / "BENCH_store.json"
FRAME_RATE_HZ = 25.0
READ_REPEATS = 5


@pytest.fixture(scope="module")
def io_trace():
    return simulate(base_scenario(duration_s=60.0, road="smooth_highway"), seed=91)


def bench_write(trace, path: Path) -> dict:
    start = time.perf_counter()
    with TraceWriter(
        path,
        n_bins=trace.n_bins,
        frame_rate_hz=trace.frame_rate_hz,
        dtype=trace.frames.dtype,
    ) as writer:
        writer.append_batch(trace.frames, trace.timestamps_s)
    wall_s = time.perf_counter() - start
    nbytes = path.stat().st_size
    return {
        "frames": trace.n_frames,
        "file_bytes": nbytes,
        "wall_s": wall_s,
        "write_mb_per_s": nbytes / wall_s / 1e6,
        "write_fps": trace.n_frames / wall_s,
    }


def bench_reads(trace, rst_path: Path, npz_path: Path) -> dict:
    trace.save(npz_path)

    def mmap_read() -> np.ndarray:
        with TraceReader(rst_path) as reader:
            return np.array(reader.frames)

    def npz_read() -> np.ndarray:
        with np.load(npz_path, allow_pickle=False) as data:
            return np.array(data["frames"])

    results = {}
    for name, fn in [("mmap", mmap_read), ("npz", npz_read)]:
        frames = fn()  # warm the page cache so both paths are measured hot
        assert np.array_equal(frames, trace.frames)
        start = time.perf_counter()
        for _ in range(READ_REPEATS):
            fn()
        results[f"{name}_read_s"] = (time.perf_counter() - start) / READ_REPEATS
    results["mmap_speedup"] = results["npz_read_s"] / results["mmap_read_s"]
    return results


def bench_replay(rst_path: Path, n_frames: int) -> dict:
    start = time.perf_counter()
    delivered = 0
    with ReplaySource(rst_path) as source:
        for _stamp, _frame in source:
            delivered += 1
    wall_s = time.perf_counter() - start
    assert delivered == n_frames
    fps = delivered / wall_s
    return {
        "replay_fps": fps,
        "replay_headroom": fps / FRAME_RATE_HZ,
    }


@pytest.mark.slow
def test_store_io(io_trace, tmp_path):
    rst_path = tmp_path / "bench.rst"
    npz_path = tmp_path / "bench.npz"

    write = bench_write(io_trace, rst_path)
    reads = bench_reads(io_trace, rst_path, npz_path)
    replay = bench_replay(rst_path, io_trace.n_frames)

    # One .npz↔.rst cross-check while both files exist: identical frames.
    converted = write_trace(tmp_path / "roundtrip.rst", io_trace)
    with TraceReader(tmp_path / "roundtrip.rst") as reader:
        assert reader.content_hash() == converted

    rows = [
        ["write throughput (MB/s)", f"{write['write_mb_per_s']:.0f}"],
        ["write rate (frames/s)", f"{write['write_fps']:.0f}"],
        ["mmap full read (ms)", f"{reads['mmap_read_s'] * 1e3:.1f}"],
        ["npz full read (ms)", f"{reads['npz_read_s'] * 1e3:.1f}"],
        ["mmap speedup over npz", f"{reads['mmap_speedup']:.1f}x"],
        ["replay rate (frames/s)", f"{replay['replay_fps']:.0f}"],
        ["replay headroom vs 25 FPS", f"{replay['replay_headroom']:.0f}x"],
    ]
    print_block(
        format_table(
            f"Trace store I/O ({io_trace.n_frames} frames x {io_trace.n_bins} bins)",
            ["quantity", "value"],
            rows,
        )
    )

    BENCH_PATH.write_text(
        json.dumps({"write": write, "reads": reads, "replay": replay}, indent=2)
    )

    # Shape assertions: the store must beat the live path by orders of
    # magnitude, and mmap must not lose to the compressed archive.
    assert write["write_fps"] > 40 * FRAME_RATE_HZ
    assert replay["replay_fps"] > 40 * FRAME_RATE_HZ
    assert reads["mmap_read_s"] < reads["npz_read_s"]

"""Fig. 13 — CDFs of eye-blink and drowsy-driving detection accuracy.

The paper's headline result: over the 12-participant road study, the
median blink-detection accuracy is 95.5 % (Fig. 13(a)) and the median
drowsy-driving detection accuracy is 92.2 % (Fig. 13(b)).

The reproduction runs the same battery on the synthetic cohort: for each
participant, road sessions in both states score blink detection, and the
per-user calibrate-then-classify protocol of Sec. V scores drowsiness.
Absolute medians land a few points below the paper's (the simulated
vibration/interference mix is not their vehicle); the asserted shape is
"high-accuracy regime with a tight CDF" — medians above 80 % with most
sessions above 70 %.
"""

import numpy as np
import pytest

from conftest import print_block
from repro.datasets import study_participants
from repro.eval.report import format_cdf_summary
from repro.eval.runner import evaluate_drowsy_battery, run_session
from repro.sim import Scenario

ROADS = ("smooth_highway", "intersection")


@pytest.mark.slow
def test_fig13a_blink_accuracy_cdf(benchmark):
    participants = study_participants()

    def battery():
        accuracies = []
        for i, participant in enumerate(participants):
            for j, road in enumerate(ROADS):
                for state in ("awake", "drowsy"):
                    scenario = Scenario(
                        participant=participant, road=road, state=state,
                        duration_s=60.0,
                    )
                    result = run_session(scenario, seed=500 + 10 * i + j)
                    accuracies.append(result.accuracy)
        return np.array(accuracies)

    accuracies = benchmark.pedantic(battery, rounds=1, iterations=1)
    print_block(format_cdf_summary(
        "Fig. 13(a): blink-detection accuracy CDF "
        f"(n={len(accuracies)} sessions; paper median 0.955)",
        accuracies,
    ))

    assert np.median(accuracies) > 0.80
    assert np.percentile(accuracies, 25) > 0.70
    assert accuracies.max() >= 0.95


@pytest.mark.slow
def test_fig13b_drowsy_accuracy_cdf(benchmark):
    participants = study_participants()[:8]  # keep the battery tractable

    def battery():
        per_user = []
        for i, participant in enumerate(participants):
            # 2-minute drives give two 1-minute decision windows each; two
            # calibration drives and two test drives per state mirror the
            # paper's per-participant data collection.
            awake = Scenario(participant=participant, road="smooth_highway",
                             state="awake", duration_s=120.0)
            drowsy = Scenario(participant=participant, road="smooth_highway",
                              state="drowsy", duration_s=120.0)
            acc = evaluate_drowsy_battery(
                awake, drowsy,
                train_seeds=[700 + i, 800 + i],
                test_seeds=[900 + i, 1000 + i],
            )
            per_user.append(acc)
        return np.array(per_user)

    per_user = benchmark.pedantic(battery, rounds=1, iterations=1)
    print_block(format_cdf_summary(
        f"Fig. 13(b): drowsy-detection accuracy CDF (n={len(per_user)} users; "
        "paper median 0.922)",
        per_user,
    ))

    assert np.median(per_user) >= 0.8
    assert per_user.mean() >= 0.75

"""Perf-regression gate for the warm lint path (run by CI).

Compares the freshly measured ``BENCH_lint.json`` against the committed
``BENCH_lint_baseline.json`` and fails (exit 1) when the warm
full-rule-set run (interprocedural analysis included) got more than 2x
slower than the baseline. The warm path is the one developers pay on
every pre-commit run, and it is exactly where the interprocedural layer
could silently start re-reading or re-propagating the whole tree.

Both measurements are tens of milliseconds, so the gate also applies an
absolute floor: a candidate under ``ABS_FLOOR_S`` passes regardless of
ratio, because doubling a 20 ms number on a noisy shared host is
scheduler jitter, not a regression. A real regression — the summary
store no longer hitting, facts deserialised eagerly again — lands the
warm run back in cold-run territory, far above the floor.

Usage::

    python benchmarks/check_lint_regression.py [candidate] [baseline]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Maximum tolerated slow-down of the warm full run vs the baseline.
TOLERANCE_RATIO = 2.0
#: Candidates faster than this pass unconditionally (jitter guard).
ABS_FLOOR_S = 0.25

HERE = Path(__file__).parent


def warm_full_s(bench: dict, path: Path) -> float:
    try:
        return float(bench["interproc"]["warm_full_s"])
    except (KeyError, TypeError, ValueError):
        raise SystemExit(f"{path}: no interproc.warm_full_s entry")


def main(argv: list[str]) -> int:
    candidate_path = Path(argv[1]) if len(argv) > 1 else HERE / "BENCH_lint.json"
    baseline_path = (
        Path(argv[2]) if len(argv) > 2 else HERE / "BENCH_lint_baseline.json"
    )
    candidate = json.loads(candidate_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    new = warm_full_s(candidate, candidate_path)
    old = warm_full_s(baseline, baseline_path)
    ceiling = max(TOLERANCE_RATIO * old, ABS_FLOOR_S)

    print(
        f"warm full-rule lint: candidate {new * 1e3:.0f} ms vs baseline "
        f"{old * 1e3:.0f} ms (ceiling {ceiling * 1e3:.0f} ms = "
        f"max({TOLERANCE_RATIO:.0f}x baseline, {ABS_FLOOR_S * 1e3:.0f} ms))"
    )
    if new > ceiling:
        print(
            "FAIL: the warm lint path regressed past the ceiling — check that "
            "the summary store still short-circuits (facts must stay lazy on "
            "a tree-key hit) or, for a deliberate trade-off, refresh "
            "benchmarks/BENCH_lint_baseline.json in this PR and justify it."
        )
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

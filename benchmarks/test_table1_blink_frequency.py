"""Table I — blink frequency at different times (morning vs night).

The paper's Sec. II-C study: 8 participants, 1-minute blink counts when
energized (10:00 am) vs lethargic (10:00 pm). The reproduction draws
1-minute counts from each synthetic participant's blink process and prints
the same two rows, asserting the universal morning<night contrast and the
cohort means the paper reports (~20/min vs ~26/min).
"""

import numpy as np

from conftest import print_block
from repro.datasets import TABLE1_MORNING_RATES, TABLE1_NIGHT_RATES, table1_participants
from repro.eval.report import format_table
from repro.physio.blink import BlinkProcess


def one_minute_counts(participant, state: str, n_minutes: int, seed: int) -> np.ndarray:
    process = BlinkProcess(participant.blink_stats(state))
    rng = np.random.default_rng(seed)
    return np.array(
        [len(process.sample_events(60.0, rng)) for _ in range(n_minutes)]
    )


def test_table1_blink_frequency(benchmark):
    participants = table1_participants()

    def run():
        morning, night = [], []
        for i, p in enumerate(participants):
            morning.append(one_minute_counts(p, "awake", 10, seed=1000 + i).mean())
            night.append(one_minute_counts(p, "drowsy", 10, seed=2000 + i).mean())
        return np.array(morning), np.array(night)

    morning, night = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["paper 10:00am"] + list(TABLE1_MORNING_RATES),
        ["measured am"] + [f"{m:.1f}" for m in morning],
        ["paper 10:00pm"] + list(TABLE1_NIGHT_RATES),
        ["measured pm"] + [f"{n:.1f}" for n in night],
    ]
    header = ["row"] + [f"P{i}" for i in range(1, 9)]
    print_block(format_table("Table I: blinks per minute, morning vs night", header, rows))

    # Shape assertions: everyone blinks more at night, and the cohort
    # means land on the paper's (~20 vs ~26).
    assert np.all(night > morning)
    assert abs(morning.mean() - np.mean(TABLE1_MORNING_RATES)) < 2.0
    assert abs(night.mean() - np.mean(TABLE1_NIGHT_RATES)) < 2.0

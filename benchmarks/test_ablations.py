"""Ablations — the design choices DESIGN.md calls out, argued with numbers.

Not a paper figure: this benchmark quantifies each BlinkRadar design
decision by knocking it out and re-running a common battery:

- I/Q relative distance vs 1-D amplitude vs phase-only observables;
- variance-based nearest-peak bin selection vs amplitude peak vs global
  variance maximum;
- adaptive updates vs a frozen viewing position;
- Pratt vs Kåsa vs Taubin arc fits;
- event counting vs frequency-domain rate estimation.
"""

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.baselines import (
    AmplitudeDetector,
    PhaseDetector,
    SpectralRateEstimator,
    amplitude_bin_config,
    kasa_fit_config,
    max_variance_bin_config,
    static_view_config,
    taubin_fit_config,
)
from repro.core.pipeline import BlinkRadar
from repro.eval.metrics import score_blink_detection
from repro.eval.report import format_table
from repro.sim import simulate

SEEDS = [91, 92, 93]


def battery_accuracy(detect_fn) -> float:
    # A maneuver-heavy condition: body sway is where the motion-robustness
    # of the I/Q viewing position separates from the 1-D observables.
    accs = []
    for seed in SEEDS:
        trace = simulate(base_scenario(duration_s=60.0, road="roundabout"), seed=seed)
        times = detect_fn(trace.frames)
        accs.append(score_blink_detection(trace.blink_times_s, times).accuracy)
    return float(np.mean(accs))


@pytest.mark.slow
def test_ablation_battery(benchmark):
    def run_all():
        variants = {}
        variants["full pipeline (BlinkRadar)"] = battery_accuracy(
            lambda f: BlinkRadar(25.0).detect(f).event_times_s
        )
        variants["1-D amplitude observable"] = battery_accuracy(
            lambda f: AmplitudeDetector(25.0).event_times(f)
        )
        variants["phase-only observable"] = battery_accuracy(
            lambda f: PhaseDetector(25.0).event_times(f)
        )
        variants["bin = amplitude peak"] = battery_accuracy(
            lambda f: BlinkRadar(25.0, config=amplitude_bin_config()).detect(f).event_times_s
        )
        variants["bin = global variance max"] = battery_accuracy(
            lambda f: BlinkRadar(25.0, config=max_variance_bin_config()).detect(f).event_times_s
        )
        variants["static viewing position"] = battery_accuracy(
            lambda f: BlinkRadar(25.0, config=static_view_config()).detect(f).event_times_s
        )
        variants["arc fit = Kasa"] = battery_accuracy(
            lambda f: BlinkRadar(25.0, config=kasa_fit_config()).detect(f).event_times_s
        )
        variants["arc fit = Taubin"] = battery_accuracy(
            lambda f: BlinkRadar(25.0, config=taubin_fit_config()).detect(f).event_times_s
        )
        return variants

    variants = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, f"{acc:.3f}"] for name, acc in variants.items()]
    print_block(format_table("Ablation battery (blink-detection accuracy)",
                             ["variant", "accuracy"], rows))

    full = variants["full pipeline (BlinkRadar)"]
    assert full >= 0.75
    # Under heavy body sway, the 1-D observables lose to the full system
    # (the paper's motion-robustness claim), and the wrong-bin ablations
    # fail outright.
    assert variants["1-D amplitude observable"] < full - 0.05
    assert variants["phase-only observable"] < full - 0.05
    assert variants["bin = global variance max"] < full - 0.3
    assert variants["bin = amplitude peak"] < full - 0.3
    # Pratt's siblings are fine substitutes (the paper picked Pratt for
    # cost, not accuracy) — they must be in the same regime.
    assert variants["arc fit = Taubin"] > full - 0.2
    assert variants["arc fit = Kasa"] > full - 0.3


@pytest.mark.slow
def test_ablation_spectral_rate(benchmark):
    """The frequency-domain baseline cannot track the blink rate."""
    def run():
        err_spec, err_count = [], []
        for seed in SEEDS:
            trace = simulate(base_scenario(duration_s=60.0), seed=seed)
            true_rate = trace.blink_rate_per_min()
            spec = SpectralRateEstimator(25.0).rate_per_min(trace.frames)
            counted = BlinkRadar(25.0).detect(trace.frames).blink_rate_per_min()
            err_spec.append(abs(spec - true_rate))
            err_count.append(abs(counted - true_rate))
        return float(np.mean(err_spec)), float(np.mean(err_count))

    err_spec, err_count = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["spectral-peak rate error (blinks/min)", f"{err_spec:.1f}"],
        ["event-counting rate error (blinks/min)", f"{err_count:.1f}"],
    ]
    print_block(format_table("Ablation: frequency-domain vs event counting",
                             ["method", "mean abs error"], rows))
    assert err_count < err_spec


@pytest.mark.slow
def test_ablation_drowsiness_features(benchmark):
    """Rate-only (the paper's literal model) vs rate+duration drowsiness.

    The paper motivates drowsiness by *both* markers — "the blink time is
    longer, and the blink rate is higher" (Sec. IV-F) — but its simple
    model thresholds the rate alone. This ablation quantifies what the
    duration feature adds at this repository's detection noise level.
    """
    from repro.datasets import study_participants
    from repro.eval.runner import evaluate_drowsy_battery
    from repro.sim import Scenario

    participants = study_participants()[:4]

    def run(features: str) -> float:
        accs = []
        for i, participant in enumerate(participants):
            awake = Scenario(participant=participant, road="smooth_highway",
                             state="awake", duration_s=120.0)
            drowsy = Scenario(participant=participant, road="smooth_highway",
                              state="drowsy", duration_s=120.0)
            accs.append(evaluate_drowsy_battery(
                awake, drowsy, train_seeds=[700 + i, 800 + i],
                test_seeds=[900 + i, 1000 + i], features=features,
            ))
        return float(np.mean(accs))

    def both():
        return run("rate"), run("rate+duration")

    rate_only, dual = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = [
        ["rate only (paper's model)", f"{rate_only:.3f}"],
        ["rate + duration", f"{dual:.3f}"],
    ]
    print_block(format_table("Ablation: drowsiness features",
                             ["model", "mean user accuracy"], rows))
    assert dual >= rate_only
    assert dual >= 0.75


@pytest.mark.slow
def test_ablation_per_user_calibration(benchmark):
    """Per-user calibration (the paper's protocol) vs one pooled model.

    The paper trains a drowsiness model per participant. This ablation
    pools every participant's calibration windows into one global model
    and compares. (With very little calibration data the pooled model can
    even win — per-user Gaussians overfit two windows — which is itself a
    finding worth keeping visible.)
    """
    from repro.core.analytics import DualFeatureClassifier, result_window_features
    from repro.datasets import study_participants
    from repro.sim import Scenario

    participants = study_participants()[:4]

    def battery():
        per_user_feats = {}
        radar = BlinkRadar(25.0)
        for i, participant in enumerate(participants):
            feats = {}
            for state in ("awake", "drowsy"):
                train, test = [], []
                for seed, sink in ((700 + i, train), (800 + i, train),
                                   (900 + i, test)):
                    scenario = Scenario(participant=participant,
                                        road="smooth_highway", state=state,
                                        duration_s=120.0)
                    result = radar.detect(simulate(scenario, seed=seed).frames)
                    sink.append(result_window_features(result, 60.0))
                feats[state] = (np.vstack(train), np.vstack(test))
            per_user_feats[participant.name] = feats

        def accuracy(clf_for_user):
            correct = total = 0
            for name, feats in per_user_feats.items():
                clf = clf_for_user(name)
                for state in ("awake", "drowsy"):
                    for rate, dur in feats[state][1]:
                        correct += clf.classify(rate, dur) == state
                        total += 1
            return correct / total

        per_user_clfs = {
            name: DualFeatureClassifier().fit(f["awake"][0], f["drowsy"][0])
            for name, f in per_user_feats.items()
        }
        pooled = DualFeatureClassifier().fit(
            np.vstack([f["awake"][0] for f in per_user_feats.values()]),
            np.vstack([f["drowsy"][0] for f in per_user_feats.values()]),
        )
        return accuracy(lambda n: per_user_clfs[n]), accuracy(lambda n: pooled)

    per_user, pooled = benchmark.pedantic(battery, rounds=1, iterations=1)
    rows = [
        ["per-user calibration (paper)", f"{per_user:.3f}"],
        ["one pooled model", f"{pooled:.3f}"],
    ]
    print_block(format_table("Ablation: per-user vs pooled drowsiness calibration",
                             ["protocol", "window accuracy"], rows))
    # With two calibration drives per state (the paper's protocol) both
    # models are healthy; the print shows how much personalisation buys on
    # this cohort.
    assert per_user >= 0.7
    assert pooled >= 0.6

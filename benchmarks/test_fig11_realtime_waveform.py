"""Fig. 11 — a 20 s stretch of the real-time relative-distance waveform
with the detected eye blinks marked.

Also benchmarks the real-time constraint of Sec. IV-E: after the one-time
2 s cold start, the detector must produce an output every 40 ms, so the
per-frame processing cost is measured against that budget.
"""

import numpy as np

from conftest import base_scenario, print_block
from repro.core.realtime import RealTimeBlinkDetector
from repro.eval.metrics import score_blink_detection
from repro.eval.report import format_table
from repro.sim import simulate


def test_fig11_realtime_waveform(benchmark):
    trace = simulate(base_scenario(duration_s=20.0), seed=16)

    def run():
        detector = RealTimeBlinkDetector(25.0)
        r = np.array(
            [detector.process_frame(f).relative_distance for f in trace.frames]
        )
        detector.finish()
        return detector, r

    detector, r = benchmark.pedantic(run, rounds=1, iterations=1)
    detected = np.array([e.time_s for e in detector.events])

    # Blinks inside the one-time 2 s cold start are unobservable by design
    # (Sec. IV-E); score against the steady-state ground truth.
    steady_truth = trace.blink_times_s[trace.blink_times_s > 2.5]
    score = score_blink_detection(steady_truth, detected)
    rows = [
        ["true blinks", ", ".join(f"{t:.1f}" for t in trace.blink_times_s)],
        ["detected", ", ".join(f"{t:.1f}" for t in detected)],
        ["steady-state accuracy", f"{score.accuracy:.2f}"],
        ["r(k) baseline", f"{np.nanmedian(r):.3e}"],
    ]
    print_block(format_table("Fig. 11: 20 s real-time waveform", ["quantity", "value"], rows))

    # Each blink leaves a visible excursion in the waveform (the 'Eye
    # Blink' annotations of the figure).
    assert score.accuracy >= 0.6
    assert np.isfinite(r[60:]).all()


def test_fig11_per_frame_latency(benchmark, reference_trace):
    """Per-frame cost must fit far inside the 40 ms frame period."""
    detector = RealTimeBlinkDetector(25.0)
    for frame in reference_trace.frames[:200]:
        detector.process_frame(frame)  # warm: past cold start

    frames = reference_trace.frames[200:]
    counter = {"k": 0}

    def step():
        detector.process_frame(frames[counter["k"] % len(frames)])
        counter["k"] += 1

    benchmark.pedantic(step, rounds=200, iterations=1)
    assert benchmark.stats["max"] < 0.040  # never blow the frame budget
    assert benchmark.stats["mean"] < 0.010

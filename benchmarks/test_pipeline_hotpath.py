"""Core-pipeline hot path — the compute budget, as a tracked artifact.

Not a paper figure: this benchmark publishes the numbers the
embedded-systems literature expects of a deployable detector (see
PAPERS.md, "Embedded System Performance Analysis for a Portable
Drowsiness Detection System"): per-stage cost in ms/frame, frames/s per
core at fleet scales S ∈ {1, 16, 64, 256}, and peak working memory per
session. Results land in ``BENCH_pipeline.json`` with host metadata so
trajectories are comparable across machines, and CI gates the S=64
frames/s-per-core figure against the committed baseline copy
(``BENCH_pipeline_baseline.json``, >15% regression fails the build).

Inputs come from the store catalog: a small pool of recorded ``.rst``
captures is tiled round-robin across the S sessions (every session gets
its own detector; the fleet sizes share the frozen frame pool), so the
workload is bit-reproducible across runs and machines.

``benchmarks/.seed_scalar_baseline.txt`` pins the pre-batching scalar
path's throughput on this host; the batched pipeline must hold a ≥3×
margin over it here (the recorded JSON shows the full ≥5× figure — the
assert leaves headroom for noisy CI neighbours).
"""

import json
import platform
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from conftest import base_scenario, print_block, timed_fps
from repro.core.batched import BatchedPipeline
from repro.core.levd import LocalExtremeValueDetector
from repro.core.realtime import RealTimeBlinkDetector
from repro.core.viewpos import ViewingPositionTracker
from repro.eval.report import format_table

BENCH_PATH = Path(__file__).parent / "BENCH_pipeline.json"
SEED_BASELINE_PATH = Path(__file__).parent / ".seed_scalar_baseline.txt"
FRAME_RATE_HZ = 25.0
FLEET_SIZES = [1, 16, 64, 256]
#: Distinct recorded captures tiled across the fleet sizes.
POOL_SEEDS = [201, 202, 203, 204]
CAPTURE_S = 30.0


@pytest.fixture(scope="module")
def capture_pool(trace_catalog):
    return [
        trace_catalog.get_or_simulate(base_scenario(duration_s=CAPTURE_S), seed=seed)
        for seed in POOL_SEEDS
    ]


def seed_scalar_fps() -> float:
    text = SEED_BASELINE_PATH.read_text()
    for token in text.split():
        if token.startswith("seed_scalar_fps_per_core="):
            return float(token.split("=", 1)[1])
    raise ValueError(f"no seed_scalar_fps_per_core= entry in {SEED_BASELINE_PATH}")


def stage_timings_ms(trace) -> dict:
    """Per-stage ms/frame over one capture, each stage fed real data.

    Stages follow the paper's pipeline order: fast-time cascading filter,
    slow-time clutter removal (smoothing + background subtraction), range
    -bin selection, IQ arc fit, LEVD scoring. Stateful stages get a fresh
    instance per timed repeat so no repeat starts warm.
    """
    frames = trace.frames
    n = frames.shape[0]
    detector = RealTimeBlinkDetector(FRAME_RATE_HZ)
    config = detector.config

    # filter: the fused fast-time cascade over the whole block.
    filter_s, _ = timed_fps(
        lambda: detector.preprocessor.denoise_block(frames),
        n,
        warmup=lambda: detector.preprocessor.denoise_block(frames[:50]),
    )
    denoised = detector.preprocessor.denoise_block(frames)

    # clutter: per-frame slow-time smoothing + loopback background.
    def run_clutter():
        pre = RealTimeBlinkDetector(FRAME_RATE_HZ).preprocessor
        for row in denoised:
            pre.push_denoised(row)

    clutter_s, _ = timed_fps(run_clutter, n)

    # Drive a real detector to steady state for the remaining stages'
    # inputs: the processed window, the selected bin and the r series.
    statuses = detector.process_block(frames)
    window = detector._rolling.last(config.bin_reselect_window).copy()
    eye_bin = detector._selected_bin
    if eye_bin is None:  # never true on the catalog captures
        raise RuntimeError("capture ended cold; pick a longer capture")

    # binselect: one reselection, amortised over its reselect interval.
    select_s, _ = timed_fps(lambda: detector._select_bin(window), 1, repeats=5)
    binselect_per_frame_s = select_s / config.bin_reselect_interval

    # arcfit: track the viewing position over the selected bin's samples.
    pre = RealTimeBlinkDetector(FRAME_RATE_HZ).preprocessor
    samples = [complex(pre.push_denoised(row)[eye_bin]) for row in denoised]

    def run_arcfit():
        tracker = ViewingPositionTracker(
            window=config.viewpos_window,
            min_samples=config.viewpos_min_samples,
            update_interval=config.viewpos_update_interval,
        )
        for sample in samples:
            tracker.push(sample)

    arcfit_s, _ = timed_fps(run_arcfit, n)

    # levd: score the r(k) series the detector actually produced.
    r_series = [
        s.relative_distance for s in statuses if np.isfinite(s.relative_distance)
    ]

    def run_levd():
        levd = LocalExtremeValueDetector(FRAME_RATE_HZ, config.levd)
        for r in r_series:
            levd.push(r)
        levd.finish()

    levd_s, _ = timed_fps(run_levd, len(r_series))

    return {
        "filter": 1e3 * filter_s / n,
        "clutter": 1e3 * clutter_s / n,
        "binselect": 1e3 * binselect_per_frame_s,
        "arcfit": 1e3 * arcfit_s / n,
        "levd": 1e3 * levd_s / len(r_series),
    }


def fleet_blocks(capture_pool, n_sessions: int) -> np.ndarray:
    frames = [t.frames for t in capture_pool]
    return np.stack([frames[k % len(frames)] for k in range(n_sessions)])


def throughput_at(capture_pool, n_sessions: int, repeats: int) -> dict:
    blocks = fleet_blocks(capture_pool, n_sessions)
    n_frames = int(blocks.shape[0] * blocks.shape[1])

    def run():
        pipeline = BatchedPipeline(FRAME_RATE_HZ, n_sessions=n_sessions)
        pipeline.process_block(blocks)
        pipeline.finish()

    best_s, fps = timed_fps(
        run,
        n_frames,
        warmup=lambda: BatchedPipeline(FRAME_RATE_HZ).process_block(blocks[:1, :80]),
        repeats=repeats,
    )
    return {
        "sessions": n_sessions,
        "frames": n_frames,
        "best_s": round(best_s, 4),
        # Single-threaded numpy: one pipeline occupies one core, so
        # frames/s IS frames/s-per-core.
        "fps_per_core": round(fps, 1),
    }


def peak_memory_per_session(capture_pool, n_sessions: int = 16) -> int:
    """Peak tracemalloc bytes per session for a full batched run."""
    blocks = fleet_blocks(capture_pool, n_sessions)
    pipeline = BatchedPipeline(FRAME_RATE_HZ, n_sessions=n_sessions)
    tracemalloc.start()
    pipeline.process_block(blocks)
    pipeline.finish()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak // n_sessions)


def host_metadata() -> dict:
    cpu_model = platform.processor() or ""
    cpuinfo = Path("/proc/cpuinfo")
    if cpuinfo.exists():
        for line in cpuinfo.read_text().splitlines():
            if line.lower().startswith("model name"):
                cpu_model = line.split(":", 1)[1].strip()
                break
    import os

    return {
        "cpu": cpu_model,
        "cores": os.cpu_count(),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


@pytest.mark.slow
def test_pipeline_hotpath(capture_pool):
    stages = stage_timings_ms(capture_pool[0])
    # S=64 is the CI-gated figure: extra repeats shrink the noise floor
    # (best-of-N, so more repeats only tighten the estimate).
    results = [
        throughput_at(capture_pool, s, repeats=2 if s >= 256 else 5)
        for s in FLEET_SIZES
    ]
    mem_per_session = peak_memory_per_session(capture_pool)
    baseline_fps = seed_scalar_fps()
    at_64 = next(r for r in results if r["sessions"] == 64)
    speedup = at_64["fps_per_core"] / baseline_fps

    print_block(
        format_table(
            "Pipeline hot path: per-stage cost",
            ["stage", "ms/frame"],
            [[name, f"{ms:.4f}"] for name, ms in stages.items()],
        )
    )
    print_block(
        format_table(
            "Pipeline hot path: batched throughput",
            ["sessions", "frames", "best s", "frames/s per core", "vs seed scalar"],
            [
                [
                    r["sessions"],
                    r["frames"],
                    f"{r['best_s']:.2f}",
                    f"{r['fps_per_core']:.0f}",
                    f"{r['fps_per_core'] / baseline_fps:.2f}x",
                ]
                for r in results
            ],
        )
    )

    BENCH_PATH.write_text(
        json.dumps(
            {
                "host": host_metadata(),
                "frame_rate_hz": FRAME_RATE_HZ,
                "capture_s": CAPTURE_S,
                "stages_ms_per_frame": {k: round(v, 5) for k, v in stages.items()},
                "throughput": results,
                "peak_memory_per_session_bytes": mem_per_session,
                "seed_scalar_fps_per_core": baseline_fps,
                "speedup_vs_seed_at_s64": round(speedup, 2),
            },
            indent=2,
        )
        + "\n"
    )

    # Shape assertions: every stage was actually exercised, the batched
    # path beats the pre-batching scalar baseline with a wide margin
    # (the JSON records the full figure; 3x leaves room for CI noise),
    # and a session's working set stays within tens of MB.
    assert all(ms > 0 for ms in stages.values())
    assert speedup >= 3.0
    assert mem_per_session < 64 * 1024 * 1024

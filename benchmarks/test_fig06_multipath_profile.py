"""Fig. 6(b) — the multipath range profile ("direct path / eyes / surroundings").

The paper's figure shows three peak groups. With fully physical amplitudes
the *static* eye return is too weak to stand clear of the cabin clutter —
the very observation the paper makes in Sec. IV-D ("the magnitude of eye
reflections may be weaker than reflections from other surrounding objects
... even if the eye is closer"). The reproduction therefore prints both
views of the same scene:

- the static power profile, where the direct path and the surroundings
  dominate and the eye does not produce a prominent peak of its own;
- the slow-time variance profile, where the eye/face region is the nearest
  dynamic cluster — the signal BlinkRadar actually selects on.
"""

import numpy as np

from conftest import base_scenario, print_block
from repro.core.binselect import variance_profile
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.dsp.peaks import local_maxima
from repro.eval.report import format_table
from repro.physio import DriverModel
from repro.sim import simulate
from repro.sim.simulator import ScenarioSimulator


def test_fig06_multipath_range_profile(benchmark):
    scenario = base_scenario(duration_s=20.0)
    sim = ScenarioSimulator(scenario)
    rng = np.random.default_rng(0)
    motion = DriverModel(scenario.participant).generate(
        10, 25.0, "awake", rng, allow_posture_shifts=False
    )
    zeros = np.zeros(10)

    profile = benchmark.pedantic(
        lambda: sim.build_channel(motion, zeros, zeros).static_profile(),
        rounds=3,
        iterations=1,
    )
    power = np.abs(profile) ** 2
    cfg = scenario.radar
    ranges = cfg.bin_ranges_m

    peaks = [int(p) for p in local_maxima(power, min_distance=8)
             if power[p] > 1e-4 * power.max()]
    rows = [[f"{ranges[p]:.2f} m", f"{power[p]:.3e}"] for p in peaks]
    print_block(format_table("Fig. 6(b): static range-profile peaks",
                             ["range", "power"], rows))

    # Static view: direct path strongest and nearest; surroundings beyond
    # the driver clearly visible; the eye region NOT the dominant return.
    assert ranges[peaks[0]] < 0.1
    assert power[peaks[0]] == max(power[p] for p in peaks)
    assert any(ranges[p] > 0.55 for p in peaks)
    eye_region_power = power[cfg.range_to_bin(0.38) : cfg.range_to_bin(0.46)].max()
    surround_power = max(power[p] for p in peaks if ranges[p] > 0.55)
    assert eye_region_power < power[peaks[0]]

    # Dynamic view: the variance profile puts the nearest dynamic cluster
    # on the eyes, well before the (globally strongest) breathing torso.
    trace = simulate(scenario, seed=0)
    pre = Preprocessor(PreprocessorConfig(subtract_background=False))
    var = variance_profile(pre.apply(trace.frames)[:300])
    var_peaks = [int(p) for p in local_maxima(var, min_distance=12)
                 if var[p] > 5e-3 * var.max()]
    var_rows = [[f"{ranges[p]:.2f} m", f"{var[p]:.3e}"] for p in var_peaks]
    print_block(format_table("Fig. 6(b) companion: slow-time variance peaks",
                             ["range", "variance"], var_rows))
    assert 0.3 < ranges[var_peaks[0]] < 0.55      # nearest dynamic = the eyes
    assert ranges[int(np.argmax(var))] > 0.6       # global max = the torso

"""Fleet throughput — how many vehicles one host can serve.

Not a paper figure: this benchmark sizes the ``repro.fleet`` service.
The same 10 s world is registered 1, 4 and 16 times and pumped through
the shared worker pool as fast as the detectors allow; we record the
aggregate detection throughput and the queue-to-detector latency
percentiles at saturation (the pump is unpaced, so latency here measures
backlog drain, i.e. how far behind a session may fall before the bounded
queue starts shedding).

The paper's real-time budget is one frame per 40 ms per vehicle
(25 FPS); the service clears it when aggregate throughput exceeds
``25 x n_sessions``. Results land in ``BENCH_fleet.json`` so the perf
trajectory survives across PRs.
"""

import json
import os
from pathlib import Path

import pytest

from conftest import base_scenario, print_block
from repro.eval.report import format_table
from repro.fleet import FleetService

BENCH_PATH = Path(__file__).parent / "BENCH_fleet.json"
FLEET_SIZES = [1, 4, 16]
#: Backend-comparison fleet sizes: 64 is the ROADMAP's "one host" target
#: where the threaded GIL ceiling binds; 256 probes the p99 trend beyond it.
SCALE_SIZES = [64, 256]
WORKERS = 4
FRAME_RATE_HZ = 25.0


@pytest.fixture(scope="module")
def shared_trace(trace_catalog):
    # Through the store catalog: recorded once as .rst, replayed
    # bit-for-bit on every later run, so the benchmark input is frozen.
    return trace_catalog.get_or_simulate(
        base_scenario(duration_s=10.0, road="smooth_highway"), seed=55
    )


@pytest.fixture(scope="module")
def scale_trace(trace_catalog):
    # Shorter world for the 256-session sweep: the comparison needs many
    # sessions, not many frames per session.
    return trace_catalog.get_or_simulate(
        base_scenario(duration_s=4.0, road="smooth_highway"), seed=56
    )


def run_fleet(
    trace, n_sessions: int, backend: str = "threaded", queue_depth: int = 4096
) -> dict:
    service = FleetService(workers=WORKERS, queue_depth=queue_depth, backend=backend)
    for k in range(n_sessions):
        service.add_session(f"v{k:02d}", trace.frames)
    service.run()
    snap = service.metrics_snapshot()
    latency = snap["histograms"]["fleet.latency_s"]
    frames = snap["counters"]["fleet.frames_processed"]
    assert frames == n_sessions * trace.n_frames  # lossless at chosen depth
    return {
        "backend": backend,
        "sessions": n_sessions,
        "workers": WORKERS,
        "frames": frames,
        "wall_s": snap["gauges"]["fleet.wall_s"],
        "throughput_fps": snap["gauges"]["fleet.throughput_fps"],
        "latency_p50_s": latency["p50"],
        "latency_p95_s": latency["p95"],
        "latency_p99_s": latency["p99"],
    }


def _merge_bench(update: dict) -> None:
    """Merge ``update`` into BENCH_fleet.json (tests may run standalone)."""
    merged = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    merged.update(update)
    BENCH_PATH.write_text(json.dumps(merged, indent=2))


@pytest.mark.slow
def test_fleet_throughput(shared_trace):
    results = [run_fleet(shared_trace, n) for n in FLEET_SIZES]

    rows = [
        [
            r["sessions"],
            r["frames"],
            f"{r['wall_s']:.2f}",
            f"{r['throughput_fps']:.0f}",
            f"{r['throughput_fps'] / (FRAME_RATE_HZ * r['sessions']):.1f}x",
            f"{r['latency_p95_s'] * 1e3:.0f}",
        ]
        for r in results
    ]
    print_block(
        format_table(
            f"Fleet throughput ({WORKERS} workers, 10 s world per session)",
            ["sessions", "frames", "wall s", "frames/s", "real-time", "p95 ms"],
            rows,
        )
    )

    _merge_bench({"workers": WORKERS, "results": results})

    # Shape, not absolute numbers: every fleet size must beat its own
    # real-time budget (25 FPS per vehicle), and concurrent sessions must
    # actually use the pool — 16 sessions keep more workers busy than 1
    # (per-session FIFO order caps a single session at one worker).
    for r in results:
        assert r["throughput_fps"] > FRAME_RATE_HZ * r["sessions"]
    assert results[-1]["throughput_fps"] > 1.3 * results[0]["throughput_fps"]


@pytest.mark.slow
def test_backend_scaling(scale_trace):
    """Threaded vs sharded at 64/256 sessions: the GIL-ceiling figure.

    The threaded scheduler flat-lines once the interpreter saturates one
    core; the sharded backend's workers score their shards in parallel
    processes. On a multi-core host the sharded curve must clear 2x the
    threaded ceiling at 64 sessions, with p99 at 256 sessions no worse
    than the threaded p99 at 16 — near-linear session scaling with flat
    tail latency. Single-core hosts still run the sweep (the numbers are
    recorded either way) but only the conservation checks are asserted.
    """

    def depth_for(n_sessions: int) -> int:
        # One ring per shard, shared by its whole session slice: size it
        # to hold every frame the unpaced pump can enqueue, so the
        # comparison measures compute, not drop-newest shedding.
        return -(-n_sessions // WORKERS) * scale_trace.n_frames

    threaded = {
        n: run_fleet(scale_trace, n, backend="threaded")
        for n in [16, *SCALE_SIZES]
    }
    sharded = {
        n: run_fleet(scale_trace, n, backend="sharded", queue_depth=depth_for(n))
        for n in SCALE_SIZES
    }

    results = [*threaded.values(), *sharded.values()]
    rows = [
        [
            r["backend"],
            r["sessions"],
            f"{r['wall_s']:.2f}",
            f"{r['throughput_fps']:.0f}",
            f"{r['latency_p99_s'] * 1e3:.0f}",
        ]
        for r in results
    ]
    print_block(
        format_table(
            f"Fleet backend scaling ({WORKERS} workers/shards, "
            f"{os.cpu_count()} cores, 4 s world per session)",
            ["backend", "sessions", "wall s", "frames/s", "p99 ms"],
            rows,
        )
    )

    _merge_bench({"backends": {"cores": os.cpu_count(), "results": results}})

    if (os.cpu_count() or 1) >= 4:
        # The tentpole acceptance bar, meaningful only with real cores.
        assert (
            sharded[64]["throughput_fps"] >= 2.0 * threaded[64]["throughput_fps"]
        ), "sharded backend does not clear 2x the threaded ceiling at 64 sessions"
        assert sharded[256]["latency_p99_s"] <= threaded[16]["latency_p99_s"], (
            "sharded p99 at 256 sessions regressed past threaded p99 at 16"
        )

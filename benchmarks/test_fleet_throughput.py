"""Fleet throughput — how many vehicles one host can serve.

Not a paper figure: this benchmark sizes the ``repro.fleet`` service.
The same 10 s world is registered 1, 4 and 16 times and pumped through
the shared worker pool as fast as the detectors allow; we record the
aggregate detection throughput and the queue-to-detector latency
percentiles at saturation (the pump is unpaced, so latency here measures
backlog drain, i.e. how far behind a session may fall before the bounded
queue starts shedding).

The paper's real-time budget is one frame per 40 ms per vehicle
(25 FPS); the service clears it when aggregate throughput exceeds
``25 x n_sessions``. Results land in ``BENCH_fleet.json`` so the perf
trajectory survives across PRs.
"""

import json
from pathlib import Path

import pytest

from conftest import base_scenario, print_block
from repro.eval.report import format_table
from repro.fleet import FleetService

BENCH_PATH = Path(__file__).parent / "BENCH_fleet.json"
FLEET_SIZES = [1, 4, 16]
WORKERS = 4
FRAME_RATE_HZ = 25.0


@pytest.fixture(scope="module")
def shared_trace(trace_catalog):
    # Through the store catalog: recorded once as .rst, replayed
    # bit-for-bit on every later run, so the benchmark input is frozen.
    return trace_catalog.get_or_simulate(
        base_scenario(duration_s=10.0, road="smooth_highway"), seed=55
    )


def run_fleet(trace, n_sessions: int) -> dict:
    service = FleetService(workers=WORKERS)
    for k in range(n_sessions):
        service.add_session(f"v{k:02d}", trace.frames)
    service.run()
    snap = service.metrics_snapshot()
    latency = snap["histograms"]["fleet.latency_s"]
    frames = snap["counters"]["fleet.frames_processed"]
    assert frames == n_sessions * trace.n_frames  # lossless at default depth
    return {
        "sessions": n_sessions,
        "workers": WORKERS,
        "frames": frames,
        "wall_s": snap["gauges"]["fleet.wall_s"],
        "throughput_fps": snap["gauges"]["fleet.throughput_fps"],
        "latency_p50_s": latency["p50"],
        "latency_p95_s": latency["p95"],
        "latency_p99_s": latency["p99"],
    }


@pytest.mark.slow
def test_fleet_throughput(shared_trace):
    results = [run_fleet(shared_trace, n) for n in FLEET_SIZES]

    rows = [
        [
            r["sessions"],
            r["frames"],
            f"{r['wall_s']:.2f}",
            f"{r['throughput_fps']:.0f}",
            f"{r['throughput_fps'] / (FRAME_RATE_HZ * r['sessions']):.1f}x",
            f"{r['latency_p95_s'] * 1e3:.0f}",
        ]
        for r in results
    ]
    print_block(
        format_table(
            f"Fleet throughput ({WORKERS} workers, 10 s world per session)",
            ["sessions", "frames", "wall s", "frames/s", "real-time", "p95 ms"],
            rows,
        )
    )

    BENCH_PATH.write_text(json.dumps({"workers": WORKERS, "results": results}, indent=2))

    # Shape, not absolute numbers: every fleet size must beat its own
    # real-time budget (25 FPS per vehicle), and concurrent sessions must
    # actually use the pool — 16 sessions keep more workers busy than 1
    # (per-session FIFO order caps a single session at one worker).
    for r in results:
        assert r["throughput_fps"] > FRAME_RATE_HZ * r["sessions"]
    assert results[-1]["throughput_fps"] > 1.3 * results[0]["throughput_fps"]

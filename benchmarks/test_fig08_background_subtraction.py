"""Fig. 8 — the range-time power map without and with background subtraction.

The paper's map shows static reflectors as constant horizontal lines that
background subtraction removes while the (moving) human returns survive.
The reproduction measures the residual power of static clutter bins and
the preserved power of the breathing torso bin.
"""

import numpy as np

from conftest import base_scenario, print_block
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.dsp.spectral import range_time_map
from repro.eval.report import format_table
from repro.sim import simulate


def test_fig08_background_subtraction(benchmark):
    trace = simulate(base_scenario(duration_s=20.0), seed=5)
    cfg_on = PreprocessorConfig(subtract_background=True)

    subtracted = benchmark.pedantic(
        lambda: Preprocessor(cfg_on).apply(trace.frames), rounds=1, iterations=1
    )
    raw_map = range_time_map(trace.frames)
    sub_map = range_time_map(subtracted)

    radar = base_scenario().radar
    # Use the steady-state half of the capture (the loopback filter's
    # estimate has converged there).
    half = trace.n_frames // 2
    leak_bin = radar.range_to_bin(0.02)
    torso_bin = radar.range_to_bin(0.75)

    leak_before = raw_map[half:, leak_bin].mean()
    leak_after = sub_map[half:, leak_bin].mean()
    torso_before = raw_map[half:, torso_bin].mean()
    torso_after = sub_map[half:, torso_bin].mean()

    rows = [
        ["direct-path power before", f"{leak_before:.3e}"],
        ["direct-path power after", f"{leak_after:.3e}"],
        ["static suppression (dB)", f"{10*np.log10(leak_before/leak_after):.1f}"],
        ["torso dynamic power after / before", f"{torso_after/torso_before:.3f}"],
    ]
    print_block(format_table("Fig. 8: background subtraction", ["quantity", "value"], rows))

    # Shape: the static line vanishes (tens of dB), the breathing torso's
    # dynamic content survives subtraction far better than the statics.
    assert leak_after < 1e-3 * leak_before
    static_retention = leak_after / leak_before
    dynamic_retention = torso_after / torso_before
    assert dynamic_retention > 100 * static_retention

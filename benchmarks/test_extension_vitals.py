"""Extension — vital signs from the same radar stream.

Not a paper figure: the paper's related work (V2iFi, MoVi-Fi) measures
vitals with the same class of radar, and this repository's substrate
models the physiology, so the reproduction closes the loop: respiration
and heart rate estimated from the identical captures the blink pipeline
consumes.
"""

import numpy as np
import pytest

from conftest import print_block
from repro.core.pipeline import BlinkRadar
from repro.core.vitals import VitalSignsMonitor
from repro.eval.report import format_table
from repro.physio import ParticipantProfile
from repro.physio.cardiac import CardiacModel
from repro.physio.respiration import RespirationModel
from repro.sim import Scenario, simulate


@pytest.mark.slow
def test_extension_vital_signs(benchmark):
    cases = [
        (0.22, 1.00),
        (0.25, 1.15),
        (0.28, 1.30),
    ]

    def battery():
        rows = []
        for resp_hz, hr_hz in cases:
            participant = ParticipantProfile(
                "VIT",
                respiration=RespirationModel(rate_hz=resp_hz),
                cardiac=CardiacModel(rate_hz=hr_hz),
            )
            resp_err, hr_err = [], []
            for seed in (61, 62):
                scenario = Scenario(participant=participant, duration_s=40.0,
                                    allow_posture_shifts=False)
                trace = simulate(scenario, seed=seed)
                blinks = np.array(
                    [e.frame_index for e in BlinkRadar(25.0).detect(trace.frames).events]
                )
                vs = VitalSignsMonitor(25.0).measure(trace.frames, blink_frames=blinks)
                resp_err.append(abs(vs.respiration_bpm - resp_hz * 60))
                hr_err.append(abs(vs.heart_rate_bpm - hr_hz * 60))
            rows.append([
                f"{resp_hz*60:.0f} / {hr_hz*60:.0f}",
                f"{np.mean(resp_err):.1f}",
                f"{np.mean(hr_err):.1f}",
            ])
        return rows

    rows = benchmark.pedantic(battery, rounds=1, iterations=1)
    print_block(format_table(
        "Extension: vital signs (true resp/HR bpm vs abs errors)",
        ["truth (resp / HR)", "resp err (bpm)", "HR err (bpm)"], rows,
    ))

    resp_errs = [float(r[1]) for r in rows]
    hr_errs = [float(r[2]) for r in rows]
    # Respiration is essentially exact; BCG heart rate is coarse but must
    # stay in a clinically meaningful range.
    assert max(resp_errs) < 2.0
    assert np.mean(hr_errs) < 15.0

"""Fig. 9 — the I/Q-space signal variation for eyes closed vs eyes open.

The paper's observation: closing the eye swaps the reflecting surface from
the wet eyeball to eyelid skin, so the signal amplitude at the eye bin
*shrinks* while the phase shifts (the eyelid sits slightly proud of the
cornea); opening reverses both. The reproduction simulates a controlled
blink and measures both signatures at the true eye bin.
"""

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.eval.report import format_table
from repro.physio import DriverModel
from repro.sim import simulate


def test_fig09_iq_blink_signature(benchmark):
    scenario = base_scenario(duration_s=40.0, state="drowsy")
    trace = benchmark.pedantic(lambda: simulate(scenario, seed=8), rounds=1, iterations=1)
    pre = Preprocessor(PreprocessorConfig(subtract_background=False))
    processed = pre.apply(trace.frames)
    series = processed[:, trace.eye_bin]

    # Ground-truth closure for the open/closed masks.
    rng = np.random.default_rng(8)
    motion = DriverModel(scenario.participant).generate(
        trace.n_frames, 25.0, "drowsy", rng, allow_posture_shifts=False
    )
    open_mask = motion.eyelid_closure < 0.02
    closed_mask = motion.eyelid_closure > 0.95
    open_mask[:60] = False
    assert closed_mask.sum() > 20, "need enough fully-closed frames"

    # The static point is the common centre of the open/closed arcs —
    # recover it with the arc fit and read radial magnitudes from there.
    from repro.dsp.circlefit import fit_circle_dominant

    center = fit_circle_dominant(series[open_mask]).center
    amp_open = np.abs(series[open_mask] - center).mean()
    amp_closed = np.abs(series[closed_mask] - center).mean()

    rows = [
        ["mean |dynamic| eyes open", f"{amp_open:.3e}"],
        ["mean |dynamic| eyes closed", f"{amp_closed:.3e}"],
        ["closed / open ratio", f"{amp_closed / amp_open:.2f}"],
    ]
    print_block(format_table("Fig. 9: I/Q amplitude, closed vs open", ["quantity", "value"], rows))

    # Shape: the closed-eye amplitude is clearly smaller (paper Fig. 9:
    # "the signal's amplitude becomes small" on closing).
    assert amp_closed < 0.8 * amp_open

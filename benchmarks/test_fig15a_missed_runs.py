"""Fig. 15(a) — continuous missed-detection rates.

Paper: "The first missed detection rate in continuous blink detection is
4.9%, the probability of two consecutive missed detections is 2.1%, and
three consecutive missed detections are 0.2%." The reproduction pools the
hit masks of a multi-session battery and computes the same three rates.
"""

import numpy as np
import pytest

from conftest import base_scenario, print_block
from repro.eval.metrics import consecutive_miss_rates
from repro.eval.report import format_table
from repro.eval.runner import run_session

PAPER_RATES = (0.049, 0.021, 0.002)


@pytest.mark.slow
def test_fig15a_consecutive_missed_detection(benchmark):
    def battery():
        masks = []
        for seed in range(40, 48):
            scenario = base_scenario(duration_s=90.0, road="smooth_highway")
            result = run_session(scenario, seed=seed)
            masks.append(result.score.matched_true)
        return consecutive_miss_rates(masks)

    rates = benchmark.pedantic(battery, rounds=1, iterations=1)

    rows = [
        [f">= {k} consecutive", f"{rates[k-1]*100:.1f} %", f"{PAPER_RATES[k-1]*100:.1f} %"]
        for k in (1, 2, 3)
    ]
    print_block(format_table("Fig. 15(a): continuous missed detection",
                             ["run length", "measured", "paper"], rows))

    # Shape: strictly decreasing run probabilities, single misses around a
    # few percent, triple misses rare.
    assert rates[0] > rates[1] > rates[2]
    assert rates[0] < 0.25
    assert rates[2] < 0.05

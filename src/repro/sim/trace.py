"""The :class:`RadarTrace` artefact: frames + exact ground truth.

A trace is what a recording session produces: the complex baseband frame
matrix the detector consumes, plus the labels the simulator knows exactly
(blink events, driver state, posture-shift times). Traces round-trip
through ``.npz`` files or, with a ``.rst`` suffix, through the chunked
:mod:`repro.store` container (streamable, checksummed, mmap-readable) so
example scripts and benchmarks can cache expensive simulations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.physio.blink import BlinkEvent

__all__ = ["RadarTrace"]


@dataclass
class RadarTrace:
    """One labelled radar recording.

    Attributes
    ----------
    frames:
        (n_frames, n_bins) complex baseband range profiles.
    timestamps_s:
        (n_frames,) slow-time stamps.
    frame_rate_hz:
        Slow-time frame rate.
    blink_events:
        Ground-truth blinks (the simulator's exact event list; stands in
        for the paper's camera ground truth).
    state:
        ``"awake"`` or ``"drowsy"``.
    eye_bin:
        Fast-time bin containing the eye return — ground truth for
        bin-selection tests; the detector never reads it.
    posture_shift_times_s:
        Times of large posture shifts (restart-logic ground truth).
    metadata:
        Free-form scenario descriptors (participant, road, pose, ...).
    """

    frames: np.ndarray
    timestamps_s: np.ndarray
    frame_rate_hz: float
    blink_events: list[BlinkEvent]
    state: str = "awake"
    eye_bin: int | None = None
    posture_shift_times_s: list[float] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.frames = np.asarray(self.frames)
        self.timestamps_s = np.asarray(self.timestamps_s, dtype=float)
        if self.frames.ndim != 2:
            raise ValueError(f"frames must be 2-D, got shape {self.frames.shape}")
        if len(self.timestamps_s) != self.frames.shape[0]:
            raise ValueError(
                f"{len(self.timestamps_s)} timestamps for {self.frames.shape[0]} frames"
            )
        if self.frame_rate_hz <= 0:
            raise ValueError(f"frame rate must be positive, got {self.frame_rate_hz}")

    @property
    def n_frames(self) -> int:
        """Number of slow-time frames."""
        return int(self.frames.shape[0])

    @property
    def n_bins(self) -> int:
        """Number of fast-time range bins."""
        return int(self.frames.shape[1])

    @property
    def duration_s(self) -> float:
        """Trace duration."""
        return self.n_frames / self.frame_rate_hz

    @property
    def blink_times_s(self) -> np.ndarray:
        """Mid-blink times of every ground-truth blink."""
        return np.array([e.center_s for e in self.blink_events])

    def blink_rate_per_min(self) -> float:
        """Ground-truth blink rate over the whole trace."""
        return 60.0 * len(self.blink_events) / self.duration_s

    def save(self, path: str | Path) -> None:
        """Serialise to disk (complex frames kept exactly).

        The suffix picks the container: ``.rst`` writes the chunked
        :mod:`repro.store` format, anything else an ``.npz`` archive.
        """
        path = Path(path)
        if path.suffix == ".rst":
            # Imported lazily: the store depends on this module for
            # to_trace(), so a top-level import would be a cycle.
            from repro.store.writer import write_trace

            write_trace(path, self)
            return
        events = np.array(
            [(e.start_s, e.duration_s) for e in self.blink_events], dtype=float
        ).reshape(-1, 2)
        np.savez_compressed(
            path,
            frames=self.frames,
            timestamps_s=self.timestamps_s,
            frame_rate_hz=np.array(self.frame_rate_hz),
            blink_events=events,
            state=np.array(self.state),
            eye_bin=np.array(-1 if self.eye_bin is None else self.eye_bin),
            posture_shift_times_s=np.array(self.posture_shift_times_s, dtype=float),
            metadata=np.array(json.dumps(self.metadata)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RadarTrace":
        """Load a trace previously written by :meth:`save`.

        The container is sniffed from the file's magic bytes, not the
        suffix, so renamed store files still load.
        """
        path = Path(path)
        with open(path, "rb") as fh:
            magic = fh.read(4)
        if magic == b"RSTR":
            from repro.store.reader import read_trace

            loaded: RadarTrace = read_trace(path)
            return loaded
        with np.load(Path(path), allow_pickle=False) as data:
            events = [
                BlinkEvent(start_s=float(s), duration_s=float(d))
                for s, d in data["blink_events"]
            ]
            eye_bin = int(data["eye_bin"])
            return cls(
                frames=data["frames"],
                timestamps_s=data["timestamps_s"],
                frame_rate_hz=float(data["frame_rate_hz"]),
                blink_events=events,
                state=str(data["state"]),
                eye_bin=None if eye_bin < 0 else eye_bin,
                posture_shift_times_s=[float(t) for t in data["posture_shift_times_s"]],
                metadata=json.loads(str(data["metadata"])),
            )

"""Render a :class:`~repro.sim.scenario.Scenario` into a radar trace.

This is where the physical narrative of the paper is assembled path by
path:

- **direct leakage** — the transmit antenna couples straight into the
  receive antenna ("the path directly received by the antenna itself",
  Fig. 6); static and strong.
- **eye path** — range = pose distance; amplitude from the radar equation
  with the eye RCS, antenna gain, specular aspect factor, and spectacle
  transmission; amplitude *modulated by the blink* (eyelid skin replacing
  the eyeball surface) and displaced by head motion + eyelid travel +
  vibration.
- **face path** — forehead/cheek return in the same range-resolution cell;
  carries head motion (BCG, respiration coupling, tremor, posture). This is
  the persistent disturbance that makes the eye bin identifiable and arcs
  the I/Q trajectory.
- **torso path** — strong, respiration-driven, a few bins further and far
  off the elevation beam of the windshield mount.
- **cabin clutter** — static reflectors from the vehicle model, with a
  small residual chassis-flex motion on the road.

Thermal noise is added per Eq. 6's n(t).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physio.driver import DriverModel, DriverMotion
from repro.rf.channel import MultipathChannel, PropagationPath, radar_equation_amplitude
from repro.rf.geometry import AntennaPattern, aspect_gain
from repro.rf.materials import LENS_TRANSMISSION, get_material
from repro.sim.scenario import Scenario
from repro.sim.trace import RadarTrace

__all__ = ["ScenarioSimulator", "simulate"]

#: Elevation angle (deg) of the torso as seen from the windshield mount
#: when the radar boresight points at the eyes.
TORSO_ELEVATION_DEG = 35.0
#: Extra range of the torso relative to the eyes (m).
TORSO_RANGE_OFFSET_M = 0.35
#: Torso radar cross-section through clothing (m²).
TORSO_RCS_M2 = 0.30
#: Face scattering centres (brow ridge, nose/cheeks, forehead plane) within
#: the eye's range-resolution cell: (range offset from the eyes, RCS).
#: A real face is an extended scatterer; several centres at different
#: sub-wavelength depths keep the combined dynamic vector from ever
#: cancelling completely, which a single-point model can do by accident.
FACE_SCATTERERS: tuple[tuple[float, float], ...] = (
    (0.008, 0.8e-3),
    (0.020, 0.8e-3),
    (0.032, 0.4e-3),
)
#: Direct TX→RX leakage: apparent range and fraction of the TX amplitude.
LEAKAGE_RANGE_M = 0.02
LEAKAGE_FRACTION = 2.0e-3


@dataclass
class ScenarioSimulator:
    """Build the multipath channel for a scenario and capture frames."""

    scenario: Scenario
    antenna: AntennaPattern = field(default_factory=AntennaPattern)

    def _eye_amplitude(self) -> float:
        """Field amplitude of the open-eye return via the radar equation."""
        sc = self.scenario
        lens_t = LENS_TRANSMISSION[sc.participant.glasses]
        aspect = aspect_gain(sc.pose.azimuth_deg, sc.pose.elevation_deg)
        return radar_equation_amplitude(
            tx_amplitude=sc.radar.tx_amplitude,
            carrier_hz=sc.radar.carrier_hz,
            range_m=sc.pose.distance_m,
            rcs_m2=sc.participant.eye.rcs_m2,
            reflectivity=get_material("eyeball").reflectivity,
            two_way_gain=self.antenna.two_way_gain(sc.pose.azimuth_deg, sc.pose.elevation_deg),
            extra_power_factor=aspect * lens_t**4,
        )

    def _blink_amplitude_scale(self, weighted_closure: np.ndarray) -> np.ndarray:
        """Relative eye-path amplitude as the eyelid covers the eyeball.

        Linear mix of eyeball and eyelid reflectivity weighted by the
        (per-event-gain-weighted) closure fraction, normalised to 1 at
        eyes-open and floored at a small positive value so an unusually
        strong blink never produces an unphysical negative amplitude.
        """
        r_ball = get_material("eyeball").reflectivity
        r_lid = get_material("eyelid_skin").reflectivity
        contrast = (r_ball - r_lid) / r_ball
        return np.clip(1.0 - contrast * weighted_closure, 0.05, None)

    def build_channel(
        self, motion: DriverMotion, vibration: np.ndarray, clutter_motion: np.ndarray
    ) -> MultipathChannel:
        """Assemble every propagation path for the given motion tracks."""
        sc = self.scenario
        channel = MultipathChannel(sc.radar)

        channel.add_path(
            PropagationPath(
                name="leakage",
                base_range_m=LEAKAGE_RANGE_M,
                amplitude=LEAKAGE_FRACTION * sc.radar.tx_amplitude,
            )
        )

        channel.add_path(
            PropagationPath(
                name="eye",
                base_range_m=sc.pose.distance_m,
                amplitude=self._eye_amplitude(),
                displacement_m=motion.head_displacement
                + motion.eye_extra_displacement
                + vibration,
                amplitude_scale=self._blink_amplitude_scale(motion.blink_reflectivity_weight),
            )
        )

        for i, (offset_m, rcs_m2) in enumerate(FACE_SCATTERERS):
            face_amp = radar_equation_amplitude(
                tx_amplitude=sc.radar.tx_amplitude,
                carrier_hz=sc.radar.carrier_hz,
                range_m=sc.pose.distance_m + offset_m,
                rcs_m2=rcs_m2,
                reflectivity=get_material("face_skin").reflectivity,
                two_way_gain=self.antenna.two_way_gain(
                    sc.pose.azimuth_deg, sc.pose.elevation_deg
                ),
            )
            channel.add_path(
                PropagationPath(
                    name=f"face_{i}",
                    base_range_m=sc.pose.distance_m + offset_m,
                    amplitude=face_amp,
                    displacement_m=motion.head_displacement + vibration,
                )
            )

        torso_amp = radar_equation_amplitude(
            tx_amplitude=sc.radar.tx_amplitude,
            carrier_hz=sc.radar.carrier_hz,
            range_m=sc.pose.distance_m + TORSO_RANGE_OFFSET_M,
            rcs_m2=TORSO_RCS_M2,
            reflectivity=get_material("torso_clothed").reflectivity,
            two_way_gain=self.antenna.two_way_gain(
                sc.pose.azimuth_deg, TORSO_ELEVATION_DEG + sc.pose.elevation_deg
            ),
        )
        channel.add_path(
            PropagationPath(
                name="torso",
                base_range_m=sc.pose.distance_m + TORSO_RANGE_OFFSET_M,
                amplitude=torso_amp,
                displacement_m=motion.chest_displacement + vibration,
            )
        )

        vehicle = sc.vehicle()
        for reflector, abs_range in vehicle.cabin.resolved(sc.pose.distance_m):
            if abs_range >= sc.radar.max_range_m:
                continue
            amp = radar_equation_amplitude(
                tx_amplitude=sc.radar.tx_amplitude,
                carrier_hz=sc.radar.carrier_hz,
                range_m=abs_range,
                rcs_m2=reflector.rcs_m2,
                reflectivity=get_material(reflector.material).reflectivity,
                two_way_gain=reflector.beam_gain,
            )
            channel.add_path(
                PropagationPath(
                    name=reflector.name,
                    base_range_m=abs_range,
                    amplitude=amp,
                    displacement_m=clutter_motion if clutter_motion.any() else None,
                )
            )
        return channel

    def run(self, rng: np.random.Generator) -> RadarTrace:
        """Simulate the scenario end to end and return the labelled trace."""
        sc = self.scenario
        n_frames = sc.n_frames
        fps = sc.radar.frame_rate_hz

        driver = DriverModel(sc.participant)
        motion = driver.generate(
            n_frames, fps, sc.state, rng, allow_posture_shifts=sc.allow_posture_shifts
        )
        vehicle = sc.vehicle()
        vibration = vehicle.vibration(n_frames, fps, rng)
        clutter_motion = vehicle.clutter_vibration(vibration)

        channel = self.build_channel(motion, vibration, clutter_motion)
        frames = channel.baseband_frames(n_frames=n_frames, rng=rng)
        timestamps = np.arange(n_frames) / fps

        return RadarTrace(
            frames=frames,
            timestamps_s=timestamps,
            frame_rate_hz=fps,
            blink_events=motion.blink_events,
            state=sc.state,
            eye_bin=sc.radar.range_to_bin(sc.pose.distance_m),
            posture_shift_times_s=list(motion.posture_shift_times_s),
            metadata={
                "participant": sc.participant.name,
                "road": sc.road,
                "distance_m": sc.pose.distance_m,
                "azimuth_deg": sc.pose.azimuth_deg,
                "elevation_deg": sc.pose.elevation_deg,
                "glasses": sc.participant.glasses,
            },
        )


def simulate(scenario: Scenario, seed: int | np.random.Generator = 0) -> RadarTrace:
    """One-call convenience: simulate ``scenario`` with a seeded RNG."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return ScenarioSimulator(scenario).run(rng)

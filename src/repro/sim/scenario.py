"""Declarative description of one recording session."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.physio.driver import ParticipantProfile
from repro.rf.config import RadarConfig
from repro.rf.geometry import SensorPose
from repro.vehicle.road import get_road
from repro.vehicle.vehicle import VehicleModel

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One simulated data-collection session.

    Attributes
    ----------
    participant:
        Who is driving (eye geometry, glasses, blink statistics, vitals).
    state:
        ``"awake"`` or ``"drowsy"`` — which blink statistics apply.
    pose:
        Radar placement relative to the eyes (distance / azimuth /
        elevation; paper default: 0.4 m, boresight).
    road:
        Road-condition name from :data:`repro.vehicle.road.ROAD_TYPES`
        (``"parked"`` reproduces the laboratory sessions).
    duration_s:
        Session length. The paper's drowsiness windows are 1 min; most
        sweeps here use 60–120 s sessions.
    radar:
        Radar configuration (paper defaults).
    allow_posture_shifts:
        Disable for controlled micro-experiments (I/Q signature figures).
    """

    participant: ParticipantProfile
    state: str = "awake"
    pose: SensorPose = field(default_factory=SensorPose)
    road: str = "parked"
    duration_s: float = 60.0
    radar: RadarConfig = field(default_factory=RadarConfig)
    allow_posture_shifts: bool = True

    def __post_init__(self) -> None:
        if self.state not in ("awake", "drowsy"):
            raise ValueError(f"state must be 'awake' or 'drowsy', got {self.state!r}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        get_road(self.road)  # validate the road name early

    @property
    def n_frames(self) -> int:
        """Number of slow-time frames the session spans."""
        return int(round(self.duration_s * self.radar.frame_rate_hz))

    def vehicle(self) -> VehicleModel:
        """Vehicle model (default cabin + this scenario's road)."""
        return VehicleModel(road=get_road(self.road))

"""Scenario orchestration: compose driver, vehicle and radar into traces.

- :mod:`repro.sim.scenario` — :class:`~repro.sim.scenario.Scenario`, the
  declarative description of one recording session (who, where the radar
  is, which road, awake or drowsy, how long).
- :mod:`repro.sim.simulator` — :class:`~repro.sim.simulator.ScenarioSimulator`,
  which renders a scenario into radar frames plus exact ground truth.
- :mod:`repro.sim.trace` — :class:`~repro.sim.trace.RadarTrace`, the saved
  artefact (frames + labels) with npz round-tripping.
"""

from repro.sim.scenario import Scenario
from repro.sim.simulator import ScenarioSimulator, simulate
from repro.sim.trace import RadarTrace

__all__ = ["Scenario", "ScenarioSimulator", "simulate", "RadarTrace"]

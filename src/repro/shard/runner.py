"""Run-to-completion pump over a :class:`~repro.shard.fleet.ShardedFleet`.

The sharded analogue of :meth:`FleetScheduler.run
<repro.fleet.scheduler.FleetScheduler.run>`: one pump loop advances
every active session a frame period per round — device time in lockstep
across the fleet — and submits each produced frame to the session's
shard ring. Workers process in parallel *processes*; the pump thread
never touches a detector.

Teardown mirrors the threaded run contract: every ring fully drained,
every session detached (flushing its pending detection state worker-side)
and then closed parent-side, every worker stopped and released.
"""

from __future__ import annotations

import time

from repro.fleet.metrics import MetricsRegistry
from repro.fleet.session import DetectorSession

from repro.shard.fleet import ShardedFleet

__all__ = ["run_sharded"]


def run_sharded(
    sessions: list[DetectorSession],
    shards: int = 4,
    queue_depth: int = 1024,
    metrics: MetricsRegistry | None = None,
    max_rounds: int | None = None,
    pace_s: float | None = None,
) -> int:
    """Pump ``sessions`` to completion across shard processes; returns rounds.

    Blocks the calling thread. Frames a full ring sheds are counted and
    evented, never silently lost; on return every produced-and-accepted
    frame has been processed and every session is closed.
    """
    fleet = ShardedFleet(sessions, workers=shards, queue_depth=queue_depth, metrics=metrics)
    fleet.start()
    rounds = 0
    try:
        while max_rounds is None or rounds < max_rounds:
            alive = False
            for session in sessions:
                if not session.active or session.draining:
                    continue
                alive = True
                item = session.produce()
                if item is not None:
                    fleet.submit(session.session_id, item)
            rounds += 1
            fleet.metrics.counter("fleet.rounds").inc()
            if not alive:
                break
            if pace_s:
                time.sleep(pace_s)
    finally:
        # Detach drains each shard's ring and flushes the session's
        # detector worker-side before acking, so by the time ``close``
        # stamps the lifecycle, every result is already applied.
        for session in sessions:
            try:
                fleet.detach(session.session_id)
            except KeyError:
                pass
        fleet.stop()
        for session in sessions:
            session.close()
    return rounds

"""`ShardedFleet`: the process-sharded drop-in fleet backend.

Implements the :class:`~repro.fleet.scheduler.FleetScheduler` serve-mode
surface — ``start``/``stop``/``attach``/``detach``/``submit``/
``drained``/``idle`` plus the ``queue_depths``/``dropped`` inspection
pair — over a pool of shard worker *processes* instead of a thread pool,
so the gateway and the fleet CLI switch backends without changing a
line of their own code.

Topology::

    parent process                         worker processes
    ──────────────                         ────────────────
    submit() ──encode──▶ ShmRing[shard] ──▶ drain tick ─▶ fused stage-1
                                           │              + stateful walks
    supervisor thread ◀── pipe ─────────── ShardReport / heartbeat
      │ apply results, metrics deltas,
      │ events onto parent sessions
      └─ crash watch: respawn + re-home

Accounting invariants:

- Every submitted frame is **accepted** (pushed onto its shard's ring)
  or **dropped** (ring full — counted, evented, ``submit`` returns
  False). Every accepted frame is eventually **consumed** (the worker
  processed or stale-flushed it) or — only if its shard dies first —
  counted as a crash loss. ``drained(sid)`` is exactly
  ``consumed >= accepted``, and reports ship *after* processing, so a
  drained session's results are already visible parent-side.
- A SIGKILLed worker costs precisely its own ring's in-flight slots:
  the supervisor counts them (``fleet.dropped_crash``), spawns a
  replacement shard, re-homes the dead shard's sessions onto it, and
  fails any parent call waiting on the dead worker — sessions on other
  shards never stall, and no parent call blocks unboundedly.
"""

from __future__ import annotations

import threading
import time
from multiprocessing.connection import wait as connection_wait
from typing import Any

import numpy as np

from repro.fleet.events import BlinkEvent, FleetEvent, FrameDropEvent
from repro.fleet.metrics import MetricsRegistry
from repro.fleet.session import DetectorSession, FrameItem, SessionState
from repro.shard.messages import (
    AttachMsg,
    DetachAck,
    DetachMsg,
    ReadyMsg,
    ShardReport,
    StopMsg,
    StoppedMsg,
)
from repro.shard.metrics import apply_delta
from repro.shard.ring import encode_slot, slot_bytes_for
from repro.shard.worker import ShardWorker, mp_context

__all__ = ["ShardedFleet"]

#: Supervisor multiplexing cadence over the worker pipes.
_SUPERVISE_POLL_S = 0.05

#: Bound on any parent call waiting for a worker acknowledgement. Crash
#: detection normally resolves the wait far earlier; the timeout is the
#: no-deadlock backstop, not the expected path.
_OP_TIMEOUT_S = 60.0

#: Respawn-storm backstop: past this many shard restarts the fleet stops
#: replacing corpses (an environment that kills every worker would
#: otherwise respawn forever). Sessions homed on the unreplaced shard
#: are unhomed — their accounting is settled so ``drained`` stays true,
#: and further ``submit`` calls raise ``KeyError``.
_MAX_RESPAWNS = 32


class ShardedFleet:
    """Drive many detector sessions across shard worker processes.

    Parameters mirror :class:`~repro.fleet.scheduler.FleetScheduler`:

    sessions:
        Pre-registered fleet (attached to shards on :meth:`start`;
        still-INIT sessions are started there). Empty is legal — the
        gateway attaches sessions at runtime.
    workers:
        Shard *processes* (each also drains its ring on its own core).
    queue_depth:
        Ring slots per shard — the same backpressure threshold role the
        per-session queue bound plays in the threaded scheduler, but
        shared by the shard's sessions and shedding the *newest* frame
        when full (an SPSC producer cannot evict past the consumer).
    metrics:
        Parent-side registry; worker deltas aggregate into it, so
        Prometheus rendering spans every process.
    slot_bins:
        Largest frame (fast-time bins) a ring slot must carry. Sessions
        declaring more bins than this are rejected at attach.
    """

    def __init__(
        self,
        sessions: list[DetectorSession] | None = None,
        workers: int = 4,
        queue_depth: int = 1024,
        metrics: MetricsRegistry | None = None,
        slot_bins: int = 256,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._initial_sessions = list(sessions) if sessions else []
        max_bins = max(
            [slot_bins] + [s.n_bins for s in self._initial_sessions]
        )
        self.slot_bins = max_bins
        self._slot_bytes = slot_bytes_for(max_bins)
        self._cond = threading.Condition()
        self._pool: list[ShardWorker] = []  # reprolint: guarded-by(_cond)
        self._assign: dict[str, ShardWorker] = {}  # reprolint: guarded-by(_cond)
        self._index_of: dict[str, int] = {}  # reprolint: guarded-by(_cond)
        self._sessions: dict[str, DetectorSession] = {}  # reprolint: guarded-by(_cond)
        self._accepted: dict[str, int] = {}  # reprolint: guarded-by(_cond)
        self._consumed: dict[str, int] = {}  # reprolint: guarded-by(_cond)
        #: Consumed frames credited from *previous* shard epochs: a
        #: replacement worker's cumulative counts restart at zero, so
        #: reports merge as base + reported. Bumped on every re-home.
        self._consumed_base: dict[str, int] = {}  # reprolint: guarded-by(_cond)
        self._dropped: dict[str, int] = {}  # reprolint: guarded-by(_cond)
        self._detach_acks: dict[str, DetachAck] = {}  # reprolint: guarded-by(_cond)
        self._pending_detach: dict[str, ShardWorker] = {}  # reprolint: guarded-by(_cond)
        self._next_index = 0
        self._next_shard = 0
        self._respawns = 0  # reprolint: guarded-by(_cond)
        self._started = False
        self._supervisor: threading.Thread | None = None
        self._closing = threading.Event()

    # ----------------------------------------------------------- serve surface
    def start(self, start_timeout_s: float = 120.0) -> None:
        """Spawn the shard workers and wait until every one is warm.

        Blocking: worker start-up pays the interpreter + scipy imports
        (amortised by the forkserver preload where available), and
        waiting here keeps that cost out of the first frames' latency.
        """
        with self._cond:
            if self._started:
                raise RuntimeError("scheduler already running")
            self._started = True
        self._closing.clear()
        ctx = mp_context()
        pool = [self._spawn_worker(ctx) for _ in range(self.workers)]
        with self._cond:
            self._pool = pool
        supervisor = threading.Thread(
            target=self._supervise, name="shard-supervisor", daemon=True
        )
        with self._cond:
            self._supervisor = supervisor
        supervisor.start()
        deadline = time.monotonic() + start_timeout_s
        with self._cond:
            while not all(w.ready for w in self._pool):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=min(0.1, remaining))
            all_ready = all(w.ready for w in self._pool)
            late = [w.shard_index for w in self._pool if not w.ready]
        if not all_ready:
            self.stop()
            raise RuntimeError(f"shard workers never became ready: {late}")
        for session in self._initial_sessions:
            if session.state is SessionState.INIT:
                session.start()
            self.attach(session)
        self._initial_sessions = []

    def stop(self) -> None:
        """Drain every ring, stop and release every worker (idempotent).

        Attached sessions are *not* closed — they are externally owned,
        exactly as in the threaded scheduler's serve mode. Flush a
        session's pending detection state with :meth:`detach` first.
        """
        with self._cond:
            if not self._started:
                return
            pool = list(self._pool)
        for worker in pool:
            worker.stop_requested = True
            worker.send(StopMsg())
        deadline = time.monotonic() + _OP_TIMEOUT_S
        with self._cond:
            while any(w.stopped is False and w.alive() for w in pool):
                if not self._cond.wait(timeout=0.1) and time.monotonic() > deadline:
                    break
        self._closing.set()
        with self._cond:
            supervisor = self._supervisor
        if supervisor is not None:
            supervisor.join(timeout=_OP_TIMEOUT_S)
        for worker in pool:
            worker.close()
        with self._cond:
            self._pool = []
            self._started = False
            self._supervisor = None

    def attach(self, session: DetectorSession) -> None:
        """Home an externally-owned session on the least-loaded shard."""
        if session.n_bins > self.slot_bins:
            raise ValueError(
                f"session {session.session_id!r} declares {session.n_bins} bins; "
                f"ring slots carry at most {self.slot_bins}"
            )
        with self._cond:
            if not self._started:
                raise RuntimeError("fleet is not started")
            sid = session.session_id
            if sid in self._sessions:
                raise ValueError(f"duplicate session id {sid!r}")
            loads = {id(w): 0 for w in self._pool}
            for homed_worker in self._assign.values():
                loads[id(homed_worker)] = loads.get(id(homed_worker), 0) + 1
            worker = min(self._pool, key=lambda w: loads[id(w)])
            index = self._next_index
            self._next_index += 1
            self._sessions[sid] = session
            self._assign[sid] = worker
            self._index_of[sid] = index
            self._accepted.setdefault(sid, 0)
            self._consumed.setdefault(sid, 0)
            self._dropped.setdefault(sid, 0)
        worker.send(self._attach_msg(session, index))

    def detach(self, session_id: str) -> int:
        """Flush and unhome a session; returns frames lost on the way.

        The shard drains its ring, flushes the session's pending
        detection state, and ships a final report before the ack — so
        after ``detach`` returns, every event the session ever produced
        is applied parent-side. Returns 0 on the clean path; non-zero
        only when the shard died mid-detach (its in-flight slots).
        """
        with self._cond:
            worker = self._assign.pop(session_id, None)
            if worker is None:
                raise KeyError(f"unknown session id {session_id!r}")
            self._pending_detach[session_id] = worker
        if not worker.send(DetachMsg(session_id)):
            # Unreachable worker: the supervisor's crash path will (or
            # already did) synthesize the ack; fall through to the wait.
            pass
        deadline = time.monotonic() + _OP_TIMEOUT_S
        with self._cond:
            while session_id not in self._detach_acks:
                if not self._cond.wait(timeout=0.1) and time.monotonic() > deadline:
                    raise TimeoutError(f"shard never acknowledged detach of {session_id!r}")
            self._detach_acks.pop(session_id)
            self._pending_detach.pop(session_id, None)
            self._sessions.pop(session_id, None)
            self._index_of.pop(session_id, None)
            lost = self._accepted.pop(session_id, 0) - self._consumed.pop(session_id, 0)
            self._consumed_base.pop(session_id, None)
            self._dropped.pop(session_id, None)
            return max(0, lost)

    def submit(self, session_id: str, item: FrameItem) -> bool:
        """Non-blocking ingest of one produced frame item.

        Encodes the frame into a checksummed ring slot and publishes it
        to the session's shard. True when accepted; False when the ring
        was full and the frame was shed (counted and evented exactly as
        the threaded scheduler's queue drops are).
        """
        generation, timestamp_s, frame = item
        with self._cond:
            worker = self._assign.get(session_id)
            if worker is None:
                raise KeyError(f"unknown session id {session_id!r}")
            index = self._index_of[session_id]
            slot = encode_slot(
                index,
                generation,
                time.perf_counter(),
                timestamp_s,
                np.ascontiguousarray(frame),
            )
            accepted = worker.ring.push(slot)
            if accepted:
                self._accepted[session_id] += 1
            else:
                self._dropped[session_id] += 1
            depth = self._accepted[session_id] - self._consumed.get(session_id, 0)
            session = self._sessions.get(session_id)
        self.metrics.gauge(f"session.{session_id}.queue_depth").set(depth)
        if not accepted:
            self.metrics.counter(f"session.{session_id}.dropped_queue").inc()
            self.metrics.counter("fleet.dropped_queue").inc()
            if session is not None:
                session._emit(
                    FrameDropEvent(session_id, timestamp_s, 1, where="queue")
                )
        return accepted

    def drained(self, session_id: str) -> bool:
        """True when every accepted frame has been consumed by its shard."""
        with self._cond:
            if session_id not in self._sessions:
                raise KeyError(f"unknown session id {session_id!r}")
            return self._consumed.get(session_id, 0) >= self._accepted.get(session_id, 0)

    def idle(self) -> bool:
        """True when every session is drained."""
        with self._cond:
            return all(
                self._consumed.get(sid, 0) >= self._accepted.get(sid, 0)
                for sid in self._sessions
            )

    # -------------------------------------------------------------- inspection
    def queue_depths(self) -> dict[str, int]:
        """In-flight (accepted, not yet consumed) frames per session id."""
        with self._cond:
            return {
                sid: self._accepted.get(sid, 0) - self._consumed.get(sid, 0)
                for sid in self._sessions
            }

    def dropped(self) -> dict[str, int]:
        """Ring-full drops per session id since attach."""
        with self._cond:
            return dict(self._dropped)

    def shards(self) -> dict[int, list[str]]:
        """Session ids homed on each live shard (shard index keyed)."""
        with self._cond:
            out: dict[int, list[str]] = {w.shard_index: [] for w in self._pool}
            for sid, worker in self._assign.items():
                out.setdefault(worker.shard_index, []).append(sid)
            return out

    # -------------------------------------------------------------- supervisor
    def _spawn_worker(self, ctx: Any) -> ShardWorker:
        worker = ShardWorker(self._next_shard, self.queue_depth, self._slot_bytes, ctx)
        self._next_shard += 1
        return worker

    def _attach_msg(self, session: DetectorSession, index: int) -> AttachMsg:
        return AttachMsg(
            session_index=index,
            session_id=session.session_id,
            n_bins=session.n_bins,
            frame_rate_hz=session.frame_rate_hz,
            config=session.config,
        )

    def _supervise(self) -> None:
        """Multiplex worker pipes; apply reports; watch for crashes."""
        while not self._closing.is_set():
            with self._cond:
                live = [w for w in self._pool if w.alive() or w.conn.poll(0)]
            conns = {w.conn: w for w in live}
            if not conns:
                if self._closing.wait(timeout=_SUPERVISE_POLL_S):
                    return
                self._check_crashes()
                continue
            for conn in connection_wait(list(conns), timeout=_SUPERVISE_POLL_S):
                worker = conns[conn]  # type: ignore[index]
                try:
                    msg = conn.recv()  # type: ignore[union-attr]
                except (EOFError, OSError):
                    continue  # liveness check below handles the corpse
                worker.last_seen = time.monotonic()
                self._handle_message(worker, msg)
            self._check_crashes()

    def _handle_message(self, worker: ShardWorker, msg: object) -> None:
        if isinstance(msg, ReadyMsg):
            with self._cond:
                worker.ready = True
                self._cond.notify_all()
        elif isinstance(msg, ShardReport):
            self._apply_report(msg)
        elif isinstance(msg, DetachAck):
            self._apply_report(msg.report)
            with self._cond:
                self._detach_acks[msg.session_id] = msg
                self._cond.notify_all()
        elif isinstance(msg, StoppedMsg):
            self._apply_report(msg.report)
            with self._cond:
                worker.stopped = True
                self._cond.notify_all()

    def _apply_report(self, report: ShardReport) -> None:
        """Fold one worker report into parent sessions and metrics."""
        apply_delta(self.metrics, report.metrics)
        with self._cond:
            sessions = dict(self._sessions)
        for sid, delta in report.frames.items():
            session = sessions.get(sid)
            if session is not None:
                session.frames_processed += delta
        for sid, delta in report.restarts.items():
            session = sessions.get(sid)
            if session is not None:
                session.restarts += delta
        for event in report.events:
            self._apply_event(sessions.get(event.session_id), event)
        for sid, (generation, state_value) in report.states.items():
            session = sessions.get(sid)
            if session is not None:
                self._mirror_state(session, generation, state_value)
        with self._cond:
            for sid, consumed in report.consumed.items():
                rebased = self._consumed_base.get(sid, 0) + consumed
                if rebased > self._consumed.get(sid, 0):
                    self._consumed[sid] = rebased
            self._cond.notify_all()

    def _apply_event(self, session: DetectorSession | None, event: FleetEvent) -> None:
        if session is None:
            return
        if isinstance(event, BlinkEvent):
            session.blink_events.append(event)
        session._emit(event)

    def _mirror_state(
        self, session: DetectorSession, generation: int, state_value: str
    ) -> None:
        # Generation-guarded, and never resurrects a stopped session:
        # the parent owns INIT/STOPPED, the worker owns the running
        # cycle (COLD_START ⇄ RUNNING) in between.
        new_state = SessionState(state_value)
        if new_state in (SessionState.INIT, SessionState.STOPPED):
            return
        with session._lock:
            if session._generation != generation:
                return
            if session._state in (SessionState.INIT, SessionState.STOPPED):
                return
            session._state = new_state

    def _check_crashes(self) -> None:
        with self._cond:
            dead = [
                w
                for w in self._pool
                if not w.alive() and not w.stop_requested and not w.stopped
            ]
        for worker in dead:
            self._restart_shard(worker)

    def _restart_shard(self, worker: ShardWorker) -> None:
        """Crash path: account losses, respawn, re-home (see module doc)."""
        with self._cond:
            if worker not in self._pool:
                return
            homed = [sid for sid, w in self._assign.items() if w is worker]
            for sid in homed:
                lost = self._accepted.get(sid, 0) - self._consumed.get(sid, 0)
                if lost > 0:
                    # The dead shard's in-flight ring slots: the only
                    # frames a crash may cost, per the loss contract.
                    self._consumed[sid] = self._accepted[sid]
                    self.metrics.counter(f"session.{sid}.dropped_crash").inc(lost)
                    self.metrics.counter("fleet.dropped_crash").inc(lost)
                    session = self._sessions.get(sid)
                    if session is not None:
                        session._emit(FrameDropEvent(sid, session.time_s, lost, where="crash"))
                # Replacement workers count consumed frames from zero:
                # credit everything up to the crash as this epoch's base.
                self._consumed_base[sid] = self._accepted.get(sid, 0)
            # Fail any call waiting on the corpse.
            for sid, pending_worker in list(self._pending_detach.items()):
                if pending_worker is worker:
                    self._detach_acks[sid] = DetachAck(sid, ShardReport())
                    self._pending_detach.pop(sid)
            self.metrics.counter("fleet.shard_crashes").inc()
            if self._respawns >= _MAX_RESPAWNS:
                self._pool = [w for w in self._pool if w is not worker]
                for sid in homed:
                    self._assign.pop(sid, None)
                self._cond.notify_all()
                worker.close()
                return
            self._respawns += 1
            replacement = self._spawn_worker(mp_context())
            self._pool = [replacement if w is worker else w for w in self._pool]
            for sid in homed:
                self._assign[sid] = replacement
            attach_msgs = [
                self._attach_msg(self._sessions[sid], self._index_of[sid])
                for sid in homed
                if sid in self._sessions
            ]
            self._cond.notify_all()
        for msg in attach_msgs:
            replacement.send(msg)
        worker.close()

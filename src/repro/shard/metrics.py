"""Worker-side metrics journaling and parent-side aggregation.

A shard worker records metrics exactly as the in-process fleet does —
same names, same instruments — into a :class:`JournalingRegistry`, which
additionally journals every mutation. Each tick the worker drains the
journal into a compact :class:`~repro.shard.messages.MetricsDelta` and
ships it; the parent replays the delta into its own
:class:`~repro.fleet.metrics.MetricsRegistry` with :func:`apply_delta`.

Because histogram *observations* (not summaries) cross the boundary,
the parent's ``render_prometheus`` output aggregates latency percentiles
across every worker process exactly as if all sessions ran in-process.
"""

from __future__ import annotations

from repro.fleet.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.shard.messages import MetricsDelta

__all__ = ["JournalingRegistry", "apply_delta"]


class _Journal:
    """Mutable accumulation shared by every journaling instrument."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.observations: dict[str, list[float]] = {}


class _JournalCounter(Counter):
    def __init__(self, name: str, journal: _Journal) -> None:
        super().__init__()
        self._name = name
        self._journal = journal

    def inc(self, amount: int = 1) -> None:
        super().inc(amount)
        journal = self._journal
        journal.counters[self._name] = journal.counters.get(self._name, 0) + amount


class _JournalGauge(Gauge):
    def __init__(self, name: str, journal: _Journal) -> None:
        super().__init__()
        self._name = name
        self._journal = journal

    def set(self, value: float) -> None:
        super().set(value)
        self._journal.gauges[self._name] = self.value

    def add(self, delta: float) -> None:
        super().add(delta)
        self._journal.gauges[self._name] = self.value


class _JournalHistogram(Histogram):
    def __init__(self, name: str, journal: _Journal, window: int) -> None:
        super().__init__(window)
        self._name = name
        self._journal = journal

    def observe(self, value: float) -> None:
        super().observe(value)
        self._journal.observations.setdefault(self._name, []).append(float(value))


class JournalingRegistry(MetricsRegistry):
    """A registry whose instruments journal every mutation for shipping."""

    def __init__(self) -> None:
        super().__init__()
        self._journal = _Journal()

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: _JournalCounter(name, self._journal))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: _JournalGauge(name, self._journal))

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: _JournalHistogram(name, self._journal, window)
        )

    def drain_delta(self) -> MetricsDelta:
        """Everything recorded since the last drain, as a shippable delta."""
        journal = self._journal
        delta = MetricsDelta(
            counters=dict(journal.counters),
            gauges=dict(journal.gauges),
            observations={k: list(v) for k, v in journal.observations.items()},
        )
        journal.counters.clear()
        journal.gauges.clear()
        journal.observations.clear()
        return delta


def apply_delta(registry: MetricsRegistry, delta: MetricsDelta) -> None:
    """Replay one worker's metrics delta into the parent registry."""
    for name, amount in delta.counters.items():
        registry.counter(name).inc(amount)
    for name, value in delta.gauges.items():
        registry.gauge(name).set(value)
    for name, values in delta.observations.items():
        histogram = registry.histogram(name)
        for value in values:
            histogram.observe(value)

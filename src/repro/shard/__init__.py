"""Process-sharded fleet runtime.

The thread-based :class:`~repro.fleet.scheduler.FleetScheduler` flat-lines
once the stateful per-session walks saturate the GIL: past ~4 sessions,
adding workers adds contention, not throughput. This package moves the
detector side into worker *processes*, each owning a shard of sessions:

- Frames travel parent → worker over a fixed-slot SPSC shared-memory
  ring (:class:`~repro.shard.ring.ShmRing`); each slot carries one frame
  framed exactly like a one-frame ``.rst`` CHUNK block (24-byte header,
  CRC-32 over header and payload), so payloads are checksummed and the
  worker consumes them zero-copy straight out of shared memory.
- A small pickle-over-pipe control plane (:mod:`repro.shard.messages`)
  handles attach/detach/drain/stop, ships per-tick results and metric
  deltas back, and heartbeats each shard.
- Each worker drains its ring into one fused stage-1 kernel launch per
  tick (the cross-session row-matrix batching of
  :class:`~repro.core.batched.BatchedPipeline`), then runs the stateful
  per-session walks — in its own interpreter, on its own core.
- The parent (:class:`~repro.shard.fleet.ShardedFleet`) supervises the
  shards: a SIGKILLed worker is detected, its in-flight ring slots are
  counted as losses, a replacement is spawned and the dead shard's
  sessions are re-homed onto it — other shards never notice, and no
  parent call deadlocks.

:class:`ShardedFleet` implements the scheduler's serve-mode surface
(``start``/``stop``/``attach``/``detach``/``submit``/``drained``/
``idle``), so the network gateway and the fleet CLI select it as a
drop-in backend.
"""

from __future__ import annotations

from repro.shard.fleet import ShardedFleet
from repro.shard.ring import ShmRing
from repro.shard.runner import run_sharded
from repro.shard.worker import ShardWorker

__all__ = ["ShardWorker", "ShardedFleet", "ShmRing", "run_sharded"]

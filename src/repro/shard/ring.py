"""Fixed-slot SPSC frame ring over POSIX shared memory.

One :class:`ShmRing` connects exactly one producer (the parent's submit
path) to exactly one consumer (a shard worker process). The layout is a
classic bounded single-producer/single-consumer ring: two monotonically
increasing 64-bit counters — ``tail`` (slots published) owned by the
producer, ``head`` (slots consumed) owned by the consumer — over a
fixed array of equal-sized slots. Each side writes only its own counter,
so no locks cross the process boundary.

Byte layout of the shared segment (all integers little-endian)::

    0    magic "SRNG" | version u16 | reserved u16
         | n_slots u64 | slot_bytes u64                 (24 B used)
    64   head u64   — consumer cursor (slots consumed)
    128  tail u64   — producer cursor (slots published)
    192  drops u64  — producer count of frames shed ring-full
    256  slot[0] ... slot[n_slots-1]

The counters sit on their own 64-byte lines so the producer's tail
stores and the consumer's head stores never share a cache line. An
aligned 8-byte store is atomic on every platform CPython runs on, and
each counter has a single writer, so torn reads cannot occur; the
publish order (slot bytes first, counter second) is preserved because
each store is a separate C-level ``memcpy`` issued by the interpreter.

Slot content reuses the ``.rst`` chunk framing from
:mod:`repro.store.format` — the wire format the rest of the repo already
trusts for checksummed frame transport::

    route   = session_index u32 | generation u32
            | dtype code u8 | pad 7B | enqueued_at f64   (24 B)
    block   = pack_block_header(KIND_CHUNK, 1, payload)  (24 B)
    payload = timestamp f64 | frame row bytes            (one-frame CHUNK)

``payload`` is byte-for-byte what a one-frame ``.rst`` CHUNK block
carries, and the 24-byte block header CRCs both itself and the payload,
so a corrupted slot fails loudly on the consumer side instead of feeding
the detector garbage. The frame bytes start 8-byte aligned (24+24+8+8),
so the consumer can wrap them in a numpy view *in place* — frames are
never copied out of shared memory before the fused kernel gathers them.
"""

from __future__ import annotations

import secrets
import struct
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.store.format import (
    KIND_CHUNK,
    StoreFormatError,
    StoreIntegrityError,
    crc32,
    pack_block_header,
    unpack_block_header,
)

__all__ = ["RingFrame", "ShmRing", "encode_slot"]

_MAGIC = b"SRNG"
_VERSION = 1
_META = struct.Struct("<4sHHQQ")
_U64 = struct.Struct("<Q")
_ROUTE = struct.Struct("<IIB7xd")

_HEAD_OFF = 64
_TAIL_OFF = 128
_DROPS_OFF = 192
_SLOTS_OFF = 256

_ROUTE_SIZE = _ROUTE.size  # 24
_BLOCK_OFF = _ROUTE_SIZE  # block header follows the route prefix
_PAYLOAD_OFF = _BLOCK_OFF + 24  # chunk payload follows the block header

#: Route-prefix dtype codes (same values as the ``.rst`` header codes).
DTYPE_CODES: dict[str, int] = {"complex64": 1, "complex128": 2}
CODE_DTYPES: dict[int, np.dtype[Any]] = {
    1: np.dtype("<c8"),
    2: np.dtype("<c16"),
}


def slot_bytes_for(n_bins: int, itemsize: int = 16) -> int:
    """Slot size needed for one ``n_bins``-bin frame of ``itemsize`` bytes."""
    payload = 8 + n_bins * itemsize
    return _PAYLOAD_OFF + ((payload + 7) & ~7)


def encode_slot(
    session_index: int,
    generation: int,
    enqueued_at: float,
    timestamp_s: float,
    frame: np.ndarray,
) -> bytes:
    """Encode one frame into ring-slot bytes (route + framed chunk)."""
    code = DTYPE_CODES.get(frame.dtype.name)
    if code is None:
        raise StoreFormatError(
            f"unsupported frame dtype {frame.dtype.name!r}; "
            f"expected one of {sorted(DTYPE_CODES)}"
        )
    payload = struct.pack("<d", timestamp_s) + frame.tobytes()
    return (
        _ROUTE.pack(session_index, generation, code, enqueued_at)
        + pack_block_header(KIND_CHUNK, 1, payload)
        + payload
    )


class RingFrame:
    """One decoded ring slot: routing fields plus an in-place frame view.

    ``frame`` is a numpy view *into the shared segment* — valid only
    until the consumer calls :meth:`ShmRing.advance` past this slot.
    The worker stacks views into its per-tick block (which copies) and
    only then advances, so the zero-copy window is exactly one tick.
    """

    __slots__ = ("enqueued_at", "frame", "generation", "session_index", "timestamp_s")

    def __init__(
        self,
        session_index: int,
        generation: int,
        enqueued_at: float,
        timestamp_s: float,
        frame: np.ndarray,
    ) -> None:
        self.session_index = session_index
        self.generation = generation
        self.enqueued_at = enqueued_at
        self.timestamp_s = timestamp_s
        self.frame = frame


class ShmRing:
    """Bounded SPSC shared-memory frame ring (see module docstring).

    Construct with :meth:`create` on the owning (producer) side and
    :meth:`attach` on the consumer side. Both sides must :meth:`close`;
    only the owner :meth:`unlink`\\ s the segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        magic, version, _r, n_slots, slot_bytes = _META.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise StoreFormatError(f"bad ring magic {magic!r}")
        if version != _VERSION:
            shm.close()
            raise StoreFormatError(f"unsupported ring version {version}")
        self.n_slots = int(n_slots)
        self.slot_bytes = int(slot_bytes)

    # ------------------------------------------------------------ construction
    @classmethod
    def create(cls, slots: int, slot_bytes: int, name: str | None = None) -> "ShmRing":
        """Allocate and initialize a ring (producer side, owns the segment)."""
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < _PAYLOAD_OFF + 8 or slot_bytes % 8:
            raise ValueError(f"slot_bytes must be 8-aligned and >= {_PAYLOAD_OFF + 8}")
        if name is None:
            name = f"repro-ring-{secrets.token_hex(6)}"
        size = _SLOTS_OFF + slots * slot_bytes
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        _META.pack_into(shm.buf, 0, _MAGIC, _VERSION, 0, slots, slot_bytes)
        for off in (_HEAD_OFF, _TAIL_OFF, _DROPS_OFF):
            _U64.pack_into(shm.buf, off, 0)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Map an existing ring by name (consumer side)."""
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        """Shared-memory segment name (hand to the worker process)."""
        return self._shm.name

    # ---------------------------------------------------------------- counters
    def _read(self, off: int) -> int:
        value: int = _U64.unpack_from(self._shm.buf, off)[0]
        return value

    @property
    def head(self) -> int:
        """Slots consumed (consumer-owned counter)."""
        return self._read(_HEAD_OFF)

    @property
    def tail(self) -> int:
        """Slots published (producer-owned counter)."""
        return self._read(_TAIL_OFF)

    @property
    def drops(self) -> int:
        """Frames shed because the ring was full (producer-owned)."""
        return self._read(_DROPS_OFF)

    @property
    def size(self) -> int:
        """Slots currently in flight (published, not yet consumed)."""
        return self.tail - self.head

    # ---------------------------------------------------------------- producer
    def push(self, slot: bytes) -> bool:
        """Publish one encoded slot; False (and a counted drop) when full.

        Drop-*newest*: unlike the threaded scheduler's in-process deques,
        the producer cannot reach past the consumer's cursor to evict the
        oldest slot, so backpressure sheds the arriving frame instead.
        Conservation still holds exactly: every submitted frame is either
        published (and eventually consumed) or counted in :attr:`drops`.
        """
        if len(slot) > self.slot_bytes:
            raise ValueError(f"slot of {len(slot)} bytes exceeds slot_bytes={self.slot_bytes}")
        buf = self._shm.buf
        tail = self._read(_TAIL_OFF)
        if tail - self._read(_HEAD_OFF) >= self.n_slots:
            _U64.pack_into(buf, _DROPS_OFF, self._read(_DROPS_OFF) + 1)
            return False
        off = _SLOTS_OFF + (tail % self.n_slots) * self.slot_bytes
        buf[off : off + len(slot)] = slot
        # Publish after the slot bytes are in place (single-writer u64).
        _U64.pack_into(buf, _TAIL_OFF, tail + 1)
        return True

    # ---------------------------------------------------------------- consumer
    def peek(self, max_items: int) -> list[RingFrame]:
        """Decode up to ``max_items`` published slots without consuming them.

        Frames are zero-copy views into the segment; call :meth:`advance`
        with the returned count once the tick no longer needs them.
        A checksum mismatch raises :class:`StoreIntegrityError` — a slot
        the producer published is never silently skipped.
        """
        head = self._read(_HEAD_OFF)
        avail = min(self._read(_TAIL_OFF) - head, max_items)
        out: list[RingFrame] = []
        buf = self._shm.buf
        for k in range(avail):
            off = _SLOTS_OFF + ((head + k) % self.n_slots) * self.slot_bytes
            session_index, generation, code, enqueued_at = _ROUTE.unpack_from(buf, off)
            header = unpack_block_header(
                bytes(buf[off + _BLOCK_OFF : off + _PAYLOAD_OFF])
            )
            payload = buf[off + _PAYLOAD_OFF : off + _PAYLOAD_OFF + header.payload_len]
            if crc32(payload) != header.payload_crc:
                raise StoreIntegrityError(
                    f"ring slot {head + k} payload checksum mismatch"
                )
            dtype = CODE_DTYPES.get(code)
            if dtype is None:
                raise StoreFormatError(f"ring slot {head + k} has dtype code {code}")
            (timestamp_s,) = struct.unpack_from("<d", payload, 0)
            frame = np.frombuffer(payload, dtype=dtype, offset=8)
            out.append(
                RingFrame(session_index, generation, enqueued_at, timestamp_s, frame)
            )
        return out

    def advance(self, n: int) -> None:
        """Consume ``n`` peeked slots (frees them for the producer)."""
        if n < 0:
            raise ValueError(f"cannot advance by {n}")
        if n:
            _U64.pack_into(self._shm.buf, _HEAD_OFF, self._read(_HEAD_OFF) + n)

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unmap this side's view of the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner side, after close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked (e.g. crash cleanup raced us)

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        if self._owner:
            self.unlink()

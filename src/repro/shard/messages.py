"""Pickle-over-pipe control plane between the parent and shard workers.

The data plane (frames) is the shared-memory ring; everything else —
session attach/detach, drain accounting, results, metric deltas,
heartbeats, shutdown — travels as small picklable records over one
:func:`multiprocessing.Pipe` per worker. The parent's supervisor thread
multiplexes every worker pipe with :func:`multiprocessing.connection.wait`.

Parent → worker: :class:`AttachMsg`, :class:`DetachMsg`, :class:`StopMsg`.
Worker → parent: :class:`ReadyMsg` once warm, then a :class:`ShardReport`
after every tick that did work and on a heartbeat cadence when idle;
:class:`DetachAck` / :class:`StoppedMsg` close the respective requests,
each carrying a final report so nothing the worker produced is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.events import FleetEvent
from repro.fleet.session import SessionConfig

__all__ = [
    "AttachMsg",
    "DetachAck",
    "DetachMsg",
    "MetricsDelta",
    "ReadyMsg",
    "ShardReport",
    "StopMsg",
    "StoppedMsg",
]


@dataclass(frozen=True)
class MetricsDelta:
    """Everything a worker's registry recorded since the last report.

    Counters ship as increments, gauges as last-written values, and
    histograms as the raw observations — so the parent registry's
    percentiles aggregate *observations* across processes, not summaries
    of summaries.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    observations: dict[str, list[float]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.observations)


@dataclass(frozen=True)
class AttachMsg:
    """Home a session on this shard (parent → worker).

    ``session_index`` is the ring route id; the worker builds its own
    detector-side session from the declared geometry and config, so the
    parent's session object never crosses the process boundary.
    """

    session_index: int
    session_id: str
    n_bins: int
    frame_rate_hz: float
    config: SessionConfig | None


@dataclass(frozen=True)
class DetachMsg:
    """Drain the ring, flush the session's detector, answer DetachAck."""

    session_id: str


@dataclass(frozen=True)
class StopMsg:
    """Drain the ring, ship a final report, exit the worker loop."""


@dataclass(frozen=True)
class ReadyMsg:
    """Worker is warm (imports paid, ring mapped) and accepting work."""

    pid: int


@dataclass(frozen=True)
class ShardReport:
    """Per-tick results and accounting (worker → parent).

    ``consumed`` is cumulative per session — frames taken off the ring
    and fully handled (processed or flushed as stale) — and is what the
    parent's ``drained()`` compares against its accepted counts. Reports
    are sent *after* the tick's processing, so a drained session's
    results are already applied parent-side. ``frames``/``restarts`` are
    deltas onto the parent session objects; ``events`` replay onto the
    parent's per-session logs and sink in emission order; ``states``
    carries ``(generation, state)`` so lifecycle mirroring stays
    generation-guarded across the process boundary.
    """

    consumed: dict[str, int] = field(default_factory=dict)
    frames: dict[str, int] = field(default_factory=dict)
    restarts: dict[str, int] = field(default_factory=dict)
    events: list[FleetEvent] = field(default_factory=list)
    states: dict[str, tuple[int, str]] = field(default_factory=dict)
    metrics: MetricsDelta = field(default_factory=MetricsDelta)


@dataclass(frozen=True)
class DetachAck:
    """Detach finished: the session's final report, ring fully drained."""

    session_id: str
    report: ShardReport


@dataclass(frozen=True)
class StoppedMsg:
    """Orderly stop finished: the shard's last report."""

    report: ShardReport

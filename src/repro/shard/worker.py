"""One shard: the worker-process loop and its parent-side handle.

The worker process owns a shard of sessions. Its loop is a tick:

1. Drain the control pipe (attach/detach/stop must order ahead of the
   frames they govern).
2. Drain up to a tick's worth of ring slots, group the frames by
   session, run **one fused stage-1 kernel launch** over every session's
   rows at once (the cross-session row-matrix batching of
   :class:`~repro.core.batched.BatchedPipeline`), then run each
   session's stateful walk over its slice via the inherited
   :meth:`~repro.fleet.session.DetectorSession.process_batch` — the same
   code path the threaded scheduler's workers call, which is what makes
   sharded output bit-identical to threaded output.
3. Ship a :class:`~repro.shard.messages.ShardReport` (results, events,
   metric deltas, cumulative consumed counts) — after processing, so the
   parent's ``drained()`` implies results are already applied — and
   heartbeat on a fixed cadence while idle.

Latency is measured worker-side against the parent's ``perf_counter``
enqueue stamps: both clocks are CLOCK_MONOTONIC on Linux, so the stamps
compare across the process boundary.

:class:`ShardWorker` is the parent-side handle bundling the process, its
ring, and its pipe; :meth:`ShardWorker.close` releases all three.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from multiprocessing.connection import Connection
from typing import Any

import numpy as np

from repro.core.realtime import RealTimeBlinkDetector
from repro.fleet.events import FleetEvent
from repro.fleet.session import SessionState
from repro.gateway.ingest import IngestSession
from repro.shard.messages import (
    AttachMsg,
    DetachAck,
    DetachMsg,
    ReadyMsg,
    ShardReport,
    StopMsg,
    StoppedMsg,
)
from repro.shard.metrics import JournalingRegistry
from repro.shard.ring import RingFrame, ShmRing

__all__ = ["ShardWorker", "mp_context", "shard_worker_main"]

#: Ring slots drained per tick (bounds the fused block and the zero-copy
#: window; a deeper backlog simply takes several ticks).
_TICK_MAX = 1024

#: Idle heartbeat cadence — the parent treats reports as liveness.
_HEARTBEAT_S = 0.2

#: Idle poll on the control pipe (doubles as the idle sleep).
_IDLE_POLL_S = 0.002


def mp_context() -> Any:
    """The start-method context shard workers use.

    Forkserver with a warmed preload (scipy, numpy, the detector stack)
    where the platform offers it — forks are then cheap and never
    inherit the parent's threads — falling back to spawn elsewhere.
    """
    try:
        ctx = multiprocessing.get_context("forkserver")
        ctx.set_forkserver_preload(["repro.shard._preload"])
        return ctx
    except ValueError:
        return multiprocessing.get_context("spawn")


class _ShardSession(IngestSession):
    """Worker-side detector session mirroring one parent session.

    Identical to the gateway's :class:`IngestSession` — same
    ``process_batch`` path, same metrics names, same events — plus the
    generation bridge: the *parent* owns the produce side (faults,
    restarts, generation bumps), so when stamped generations move past
    this mirror's, it rebuilds its detector exactly as the parent's
    ``_bring_up`` swap would have, and older-generation frames flush as
    stale through the inherited run splitting.
    """

    def adopt_generation(self, generation: int) -> None:
        """Mirror a parent-side restart: fresh detector, cold start."""
        with self._lock:
            if generation <= self._generation:
                return
            self._generation = generation
            self.detector = RealTimeBlinkDetector(self.frame_rate_hz, self.config.detector)
            self._state = SessionState.COLD_START

    def flush_final(self) -> None:
        """Flush the pending LEVD event (what close() would detect-flush).

        Lifecycle stamping stays with the parent's own ``close()``; only
        the detector state lives here, so only the detector is flushed.
        """
        detector = self.detector
        if detector is None:
            return
        event = detector.finish()
        if event is not None:
            apex = self._apex_time(self._last_time_s, self._last_det_index, event.frame_index)
            self._on_blink(apex, event.frame_index, event.prominence)


class _WorkerState:
    """Everything the worker loop tracks across ticks."""

    def __init__(self) -> None:
        self.registry = JournalingRegistry()
        self.outbox: list[FleetEvent] = []
        self.by_index: dict[int, _ShardSession] = {}
        self.by_id: dict[str, _ShardSession] = {}
        self.consumed: dict[str, int] = {}
        self.shipped_frames: dict[str, int] = {}
        self.shipped_restarts: dict[str, int] = {}

    def attach(self, msg: AttachMsg) -> None:
        session = _ShardSession(
            msg.session_id,
            n_bins=msg.n_bins,
            frame_rate_hz=msg.frame_rate_hz,
            config=msg.config,
            metrics=self.registry,
        )
        # Bring-up events (INIT → COLD_START) already happened on the
        # parent's own session object; suppress the mirror's duplicates
        # by wiring the sink only after start.
        session.start()
        session._sink = self.outbox.append
        self.by_index[msg.session_index] = session
        self.by_id[msg.session_id] = session
        self.consumed.setdefault(msg.session_id, 0)
        self.shipped_frames.setdefault(msg.session_id, 0)
        self.shipped_restarts.setdefault(msg.session_id, 0)

    def report(self) -> ShardReport:
        frames: dict[str, int] = {}
        restarts: dict[str, int] = {}
        states: dict[str, tuple[int, str]] = {}
        for sid, session in self.by_id.items():
            frame_delta = session.frames_processed - self.shipped_frames[sid]
            if frame_delta:
                frames[sid] = frame_delta
                self.shipped_frames[sid] = session.frames_processed
            restart_delta = session.restarts - self.shipped_restarts[sid]
            if restart_delta:
                restarts[sid] = restart_delta
                self.shipped_restarts[sid] = session.restarts
            states[sid] = (session.generation, session.state.value)
        # Copy-and-clear in place: session sinks hold a bound reference
        # to this exact list, so it must never be rebound.
        events = list(self.outbox)
        self.outbox.clear()
        return ShardReport(
            consumed=dict(self.consumed),
            frames=frames,
            restarts=restarts,
            events=events,
            states=states,
            metrics=self.registry.drain_delta(),
        )


def _drain_tick(ring: ShmRing, state: _WorkerState) -> int:
    """Drain one tick of ring slots through the detectors; slots consumed."""
    ring_frames = ring.peek(_TICK_MAX)
    if not ring_frames:
        return 0
    groups: dict[int, list[RingFrame]] = {}
    for rf in ring_frames:
        groups.setdefault(rf.session_index, []).append(rf)
    denoised_of = _fused_stage1(groups, state)
    for index, rfs in groups.items():
        session = state.by_index.get(index)
        if session is None:
            # A frame for a session this shard no longer (or never)
            # homes: consume it loudly, never wedge the ring.
            state.registry.counter("shard.unrouted_frames").inc(len(rfs))
            continue
        session.adopt_generation(max(rf.generation for rf in rfs))
        session.process_batch(
            [(rf.generation, rf.timestamp_s, rf.frame) for rf in rfs],
            enqueued_ats=[rf.enqueued_at for rf in rfs],
            denoised=denoised_of.get(index),
        )
        state.consumed[session.session_id] += len(rfs)
    consumed = len(ring_frames)
    # Drop every shared-memory view before freeing the slots.
    del ring_frames, groups, denoised_of
    ring.advance(consumed)
    return consumed


def _fused_stage1(
    groups: dict[int, list[RingFrame]], state: _WorkerState
) -> dict[int, np.ndarray]:
    """One denoise launch across every session's tick rows, when legal.

    The fast-time cascade is stateless per row, so fusing sessions is
    bit-identical to per-session launches — but only when every row
    agrees on geometry, dtype and detector config. Mixed ticks simply
    return no slices and each ``process_batch`` launches its own kernel.
    """
    fusable: list[tuple[int, _ShardSession, list[RingFrame]]] = []
    for index, rfs in groups.items():
        session = state.by_index.get(index)
        if session is None or session.detector is None:
            return {}
        fusable.append((index, session, rfs))
    if len(fusable) < 2:
        return {}
    first = fusable[0][1]
    geometry = {
        (session.n_bins, rf.frame.dtype)
        for _, session, rfs in fusable
        for rf in rfs
    }
    if len(geometry) != 1:
        return {}
    reference = first.detector
    if reference is None:
        return {}
    for _, session, _ in fusable[1:]:
        detector = session.detector
        if detector is None or detector.config != reference.config:
            return {}
    rows = np.stack([rf.frame for _, _, rfs in fusable for rf in rfs])
    denoised_all = reference.preprocessor.denoise_block(rows)
    out: dict[int, np.ndarray] = {}
    offset = 0
    for index, _, rfs in fusable:
        out[index] = denoised_all[offset : offset + len(rfs)]
        offset += len(rfs)
    return out


def shard_worker_main(conn: Connection, ring_name: str) -> None:
    """Entry point of one shard worker process."""
    import repro.shard._preload  # noqa: F401  (no-op under forkserver preload)

    ring = ShmRing.attach(ring_name)
    state = _WorkerState()
    stopping = False
    try:
        conn.send(ReadyMsg(pid=os.getpid()))
        last_beat = time.monotonic()
        while True:
            while conn.poll(0):
                msg = conn.recv()
                if isinstance(msg, AttachMsg):
                    state.attach(msg)
                elif isinstance(msg, DetachMsg):
                    while _drain_tick(ring, state):
                        pass
                    session = state.by_id.get(msg.session_id)
                    if session is not None:
                        session.flush_final()
                    # Build the final report *before* deregistering: the
                    # per-session frame/restart deltas walk ``by_id``, and
                    # the detach drain above is exactly what they cover.
                    final = state.report()
                    if session is not None:
                        del state.by_id[msg.session_id]
                        state.by_index = {
                            i: s for i, s in state.by_index.items() if s is not session
                        }
                        # The parent zeroes its side on detach, so a
                        # re-attach of this sid must also restart the
                        # worker's cumulative accounting from zero.
                        state.consumed.pop(msg.session_id, None)
                        state.shipped_frames.pop(msg.session_id, None)
                        state.shipped_restarts.pop(msg.session_id, None)
                    conn.send(DetachAck(msg.session_id, final))
                elif isinstance(msg, StopMsg):
                    stopping = True
            worked = _drain_tick(ring, state)
            now = time.monotonic()
            if worked or now - last_beat >= _HEARTBEAT_S:
                conn.send(state.report())
                last_beat = now
            if stopping and ring.size == 0:
                conn.send(StoppedMsg(state.report()))
                return
            if not worked and not stopping:
                conn.poll(_IDLE_POLL_S)
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        # Parent gone (or tearing down): nothing to report to, exit.
        pass
    finally:
        state.by_index.clear()
        state.by_id.clear()
        ring.close()
        conn.close()


class ShardWorker:
    """Parent-side handle for one shard: process + ring + control pipe.

    Release with :meth:`close` — it joins (or, past the grace window,
    kills) the process, closes the pipe, and closes **and unlinks** the
    shared-memory ring, so no segment outlives the fleet.
    """

    def __init__(
        self,
        shard_index: int,
        ring_slots: int,
        slot_bytes: int,
        ctx: Any | None = None,
    ) -> None:
        self.shard_index = shard_index
        self.ring = ShmRing.create(ring_slots, slot_bytes)
        context = ctx if ctx is not None else mp_context()
        self.conn, child_conn = context.Pipe()
        self._send_lock = threading.Lock()
        self.ready = False
        self.stop_requested = False
        self.stopped = False
        self.last_seen = time.monotonic()
        self.process = context.Process(
            target=shard_worker_main,
            args=(child_conn, self.ring.name),
            name=f"repro-shard-{shard_index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def alive(self) -> bool:
        """True while the worker process runs."""
        return self.process.is_alive()

    def send(self, msg: object) -> bool:
        """Send a control message; False when the worker is unreachable."""
        try:
            with self._send_lock:
                self.conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def close(self, grace_s: float = 2.0) -> None:
        """Release the process, pipe, and ring (idempotent, never raises)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=grace_s)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=grace_s)
        try:
            self.conn.close()
        except OSError:
            pass
        self.ring.close()
        self.ring.unlink()

"""Import warm-up for shard worker processes.

Importing this module pays every heavy import a worker needs — numpy,
scipy.stats (seconds on a cold interpreter; LEVD construction resolves
its Gaussian quantile divisor through it), and the detector stack — so
it can happen *once* in the forkserver parent (via
``set_forkserver_preload``) or before a spawned worker reports Ready,
never while frames are in flight.
"""

from __future__ import annotations

import numpy  # noqa: F401
import scipy.stats  # noqa: F401

import repro.core.realtime  # noqa: F401
import repro.gateway.ingest  # noqa: F401
import repro.shard.ring  # noqa: F401

"""Road-condition catalogue.

The paper evaluates nine conditions — "smooth highway, bumpy road, uphill
road, downhill road, intersection, left turn, right turn, roundabout,
U-turn" (Sec. VI-H) — and reports accuracy over four grouped road types in
Fig. 16(b). Each condition is parameterised by:

- ``vibration_rms_m`` — RMS of the broadband body-vs-device displacement
  from road roughness (classes in the spirit of ISO 8608);
- ``bump_rate_hz`` — rate of discrete bump transients (potholes, joints);
- ``maneuver_rate_hz`` / ``maneuver_amplitude_m`` — rate and radial
  magnitude of slow body-sway excursions induced by steering/accelerating.

``ROAD_GROUPS`` maps the figure's group indices 1–4 (increasingly
challenging) onto the conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RoadCondition", "ROAD_TYPES", "ROAD_GROUPS", "get_road", "PARKED"]


@dataclass(frozen=True)
class RoadCondition:
    """One driving condition's disturbance parameters."""

    name: str
    vibration_rms_m: float
    bump_rate_hz: float
    maneuver_rate_hz: float
    maneuver_amplitude_m: float

    def __post_init__(self) -> None:
        for attr in (
            "vibration_rms_m",
            "bump_rate_hz",
            "maneuver_rate_hz",
            "maneuver_amplitude_m",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0, got {getattr(self, attr)}")


#: A stationary vehicle (laboratory condition in the paper's Sec. VI setup).
PARKED = RoadCondition(
    name="parked", vibration_rms_m=0.0, bump_rate_hz=0.0, maneuver_rate_hz=0.0,
    maneuver_amplitude_m=0.0,
)

_CONDITIONS = [
    RoadCondition("smooth_highway", 2.5e-4, 0.01, 0.002, 2.0e-3),
    RoadCondition("uphill", 3.5e-4, 0.02, 0.01, 3.0e-3),
    RoadCondition("downhill", 3.5e-4, 0.02, 0.01, 3.0e-3),
    RoadCondition("intersection", 3.0e-4, 0.02, 0.04, 5.0e-3),
    RoadCondition("left_turn", 3.0e-4, 0.02, 0.05, 6.0e-3),
    RoadCondition("right_turn", 3.0e-4, 0.02, 0.05, 6.0e-3),
    RoadCondition("roundabout", 4.0e-4, 0.03, 0.07, 7.0e-3),
    RoadCondition("u_turn", 4.0e-4, 0.03, 0.08, 8.0e-3),
    RoadCondition("bumpy", 9.0e-4, 0.12, 0.03, 5.0e-3),
]

#: All driving conditions, keyed by name (``PARKED`` included).
ROAD_TYPES: dict[str, RoadCondition] = {c.name: c for c in _CONDITIONS}
ROAD_TYPES[PARKED.name] = PARKED

#: Fig. 16(b)'s four road-type groups, easiest (1) to hardest (4).
ROAD_GROUPS: dict[int, list[str]] = {
    1: ["smooth_highway"],
    2: ["uphill", "downhill"],
    3: ["intersection", "left_turn", "right_turn"],
    4: ["bumpy", "roundabout", "u_turn"],
}


def get_road(name: str) -> RoadCondition:
    """Look up a road condition by name, with a helpful error on typos."""
    try:
        return ROAD_TYPES[name]
    except KeyError:
        known = ", ".join(sorted(ROAD_TYPES))
        raise KeyError(f"unknown road condition {name!r}; known: {known}") from None

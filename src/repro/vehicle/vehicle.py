"""The :class:`VehicleModel` façade.

Couples a cabin geometry with a road condition: the cabin supplies the
static clutter paths, the road supplies the radar-to-body vibration track.
Device-mount shake (the radar itself vibrating on the windshield) is folded
into the same relative-displacement track — the paper notes the two are
inseparable ("the detected motion information comes from both the target
and the device", Sec. VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vehicle.cabin import CabinGeometry, default_cabin
from repro.vehicle.road import PARKED, RoadCondition
from repro.vehicle.vibration import VibrationModel

__all__ = ["VehicleModel"]


@dataclass(frozen=True)
class VehicleModel:
    """A vehicle = cabin reflectors + road-induced motion."""

    cabin: CabinGeometry = field(default_factory=default_cabin)
    road: RoadCondition = PARKED

    def vibration(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Radar-to-body relative displacement track (m) for this road."""
        return VibrationModel(self.road).displacement(n_frames, frame_rate_hz, rng)

    def clutter_vibration(
        self, body_vibration: np.ndarray, coupling: float = 0.003
    ) -> np.ndarray:
        """Residual motion of 'static' cabin reflectors relative to the radar.

        Cabin fixtures are bolted to the same chassis as the radar, so they
        move far less *relative to the radar* than the loosely-coupled human
        does; a small fraction of the body track models panel flex. This is
        why background subtraction works on the road at all.
        """
        if not 0 <= coupling <= 1:
            raise ValueError(f"coupling must be in [0, 1], got {coupling}")
        return coupling * np.asarray(body_vibration, dtype=float)

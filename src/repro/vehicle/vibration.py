"""Vibration synthesis from a road condition.

Sec. VIII of the paper: "vibration and displacement can change the distance
measurement between the UWB radar and the human body ... the detected
motion information comes from both the target and the device". We model the
*relative* radar-to-body displacement directly, as the sum of:

1. broadband suspension-filtered roughness — band-limited Gaussian noise
   (~0.5–6 Hz, the post-suspension band) scaled to the condition's RMS;
2. discrete bump transients — damped half-sine impulses at the condition's
   bump rate (potholes, expansion joints);
3. maneuver sway — slow raised-cosine excursions during steering events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import design_lowpass_fir, fir_filter
from repro.vehicle.road import RoadCondition

__all__ = ["VibrationModel"]


@dataclass(frozen=True)
class VibrationModel:
    """Turn a :class:`RoadCondition` into displacement tracks.

    Attributes
    ----------
    condition:
        The road/maneuver condition to synthesize.
    band_low_hz / band_high_hz:
        Pass band of the suspension-filtered roughness. The high edge must
        stay below the slow-time Nyquist (12.5 Hz at 25 FPS).
    bump_amplitude_m:
        Peak displacement of one bump transient.
    bump_duration_s:
        Duration of the damped bump oscillation.
    """

    condition: RoadCondition
    band_low_hz: float = 0.5
    band_high_hz: float = 6.0
    bump_amplitude_m: float = 4.0e-3
    bump_duration_s: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.band_low_hz < self.band_high_hz:
            raise ValueError("need 0 < band_low_hz < band_high_hz")
        if self.bump_amplitude_m < 0 or self.bump_duration_s <= 0:
            raise ValueError("bump amplitude must be >= 0 and duration positive")

    def _roughness(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Band-limited roughness displacement scaled to the condition RMS."""
        if self.condition.vibration_rms_m == 0:
            return np.zeros(n_frames)
        white = rng.normal(size=n_frames)
        # Band-pass = low-pass(high edge) − low-pass(low edge).
        nyq = frame_rate_hz / 2.0
        hi = min(self.band_high_hz / frame_rate_hz, 0.49)
        lo = self.band_low_hz / frame_rate_hz
        if self.band_high_hz >= nyq:
            raise ValueError(
                f"band_high_hz {self.band_high_hz} must be below slow-time Nyquist {nyq}"
            )
        taps_hi = design_lowpass_fir(64, hi)
        taps_lo = design_lowpass_fir(64, lo)
        band = fir_filter(white, taps_hi) - fir_filter(white, taps_lo)
        rms = np.sqrt(np.mean(band**2))
        if rms < 1e-15:
            return np.zeros(n_frames)
        return band * (self.condition.vibration_rms_m / rms)

    def _bump_pulse(self, t_rel: np.ndarray) -> np.ndarray:
        """Damped oscillation of one bump, peak amplitude 1."""
        inside = (t_rel >= 0) & (t_rel <= self.bump_duration_s)
        pulse = np.zeros_like(t_rel)
        x = t_rel[inside] / self.bump_duration_s
        pulse[inside] = np.exp(-4.0 * x) * np.sin(2.0 * np.pi * 2.0 * x)
        return pulse

    def _bumps(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Discrete bump transients as a Poisson process."""
        track = np.zeros(n_frames)
        if self.condition.bump_rate_hz == 0 or self.bump_amplitude_m == 0:
            return track
        duration = n_frames / frame_rate_hz
        t = np.arange(n_frames) / frame_rate_hz
        n_bumps = rng.poisson(self.condition.bump_rate_hz * duration)
        for when in rng.uniform(0, duration, size=n_bumps):
            severity = float(rng.uniform(0.4, 1.0))
            track += self.bump_amplitude_m * severity * self._bump_pulse(t - when)
        return track

    def _maneuvers(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Slow body-sway excursions during steering/acceleration events."""
        track = np.zeros(n_frames)
        if self.condition.maneuver_rate_hz == 0 or self.condition.maneuver_amplitude_m == 0:
            return track
        duration = n_frames / frame_rate_hz
        t = np.arange(n_frames) / frame_rate_hz
        n_events = rng.poisson(self.condition.maneuver_rate_hz * duration)
        for when in rng.uniform(0, duration, size=n_events):
            sway_len = float(rng.uniform(2.0, 5.0))
            amp = self.condition.maneuver_amplitude_m * float(rng.uniform(0.5, 1.0))
            sign = 1.0 if rng.random() < 0.5 else -1.0
            rel = (t - when) / sway_len
            inside = (rel >= 0) & (rel <= 1)
            lobe = np.zeros_like(t)
            lobe[inside] = np.sin(np.pi * rel[inside]) ** 2
            track += sign * amp * lobe
        return track

    def displacement(
        self, n_frames: int, frame_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Total radar-to-body relative displacement (m), slow-time grid."""
        if n_frames < 1 or frame_rate_hz <= 0:
            raise ValueError("n_frames must be >= 1 and frame_rate_hz positive")
        return (
            self._roughness(n_frames, frame_rate_hz, rng)
            + self._bumps(n_frames, frame_rate_hz, rng)
            + self._maneuvers(n_frames, frame_rate_hz, rng)
        )

"""Vehicle and road substrate.

Models the two ways the car enters the sensing problem:

- **Static clutter** — the cabin is full of strong reflectors (seats,
  steering wheel, dashboard) whose returns dwarf the eye's
  (:mod:`repro.vehicle.cabin`); background subtraction exists to remove
  them (paper Sec. IV-B-2).
- **Vibration and maneuvers** — road roughness and driving maneuvers
  modulate the radar-to-body distance, the dominant nuisance during road
  tests (paper Sec. VI-H and the Sec. VIII discussion of bumpy roads).
  :mod:`repro.vehicle.road` catalogues the paper's nine road/maneuver
  conditions; :mod:`repro.vehicle.vibration` turns a condition into a
  displacement track.
"""

from repro.vehicle.cabin import CabinGeometry, CabinReflector, default_cabin
from repro.vehicle.road import ROAD_GROUPS, ROAD_TYPES, RoadCondition, get_road
from repro.vehicle.vehicle import VehicleModel
from repro.vehicle.vibration import VibrationModel

__all__ = [
    "CabinGeometry",
    "CabinReflector",
    "default_cabin",
    "ROAD_GROUPS",
    "ROAD_TYPES",
    "RoadCondition",
    "get_road",
    "VehicleModel",
    "VibrationModel",
]

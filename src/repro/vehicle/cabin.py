"""Cabin geometry: the static reflector inventory.

"Reflections from the seats and steering wheel are much stronger than
reflections from the eyes" (Sec. IV-B-2) — this module provides exactly
those reflectors, positioned for a windshield-mounted radar facing the
driver (paper Fig. 1/12). Ranges of body-relative reflectors (headrest)
are expressed as offsets from the driver's eye distance so distance sweeps
keep the cabin coherent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rf.materials import get_material

__all__ = ["CabinReflector", "CabinGeometry", "default_cabin"]


@dataclass(frozen=True)
class CabinReflector:
    """One static reflector inside the cabin.

    Attributes
    ----------
    name:
        Identifier ("steering_wheel", "headrest", ...).
    range_m:
        One-way distance from the radar. Interpreted as absolute unless
        ``relative_to_driver`` is True, in which case the driver's eye
        distance is added.
    material:
        Key into :data:`repro.rf.materials.MATERIALS`.
    rcs_m2:
        Radar cross-section (m²).
    relative_to_driver:
        Whether ``range_m`` is an offset behind (positive) or in front
        (negative) of the driver's eyes.
    beam_gain:
        Two-way antenna power gain toward this reflector. The windshield
        radar is aimed at the driver's face, so fixtures well below
        boresight (dashboard, steering wheel) are illuminated only by the
        pattern's skirt.
    """

    name: str
    range_m: float
    material: str
    rcs_m2: float
    relative_to_driver: bool = False
    beam_gain: float = 1.0

    def __post_init__(self) -> None:
        get_material(self.material)  # validate early
        if self.rcs_m2 <= 0:
            raise ValueError(f"rcs must be positive, got {self.rcs_m2}")
        if not 0.0 < self.beam_gain <= 1.0:
            raise ValueError(f"beam_gain must be in (0, 1], got {self.beam_gain}")

    def absolute_range_m(self, driver_distance_m: float) -> float:
        """Resolve the reflector's absolute range for a given driver distance."""
        rng = self.range_m + (driver_distance_m if self.relative_to_driver else 0.0)
        if rng <= 0:
            raise ValueError(
                f"reflector {self.name!r} resolves to non-positive range {rng}"
            )
        return rng


@dataclass(frozen=True)
class CabinGeometry:
    """The set of static reflectors seen by the windshield-mounted radar."""

    reflectors: tuple[CabinReflector, ...] = field(default_factory=tuple)

    def resolved(self, driver_distance_m: float) -> list[tuple[CabinReflector, float]]:
        """Pairs of (reflector, absolute range) for a given driver distance."""
        return [(r, r.absolute_range_m(driver_distance_m)) for r in self.reflectors]


def default_cabin() -> CabinGeometry:
    """Volkswagen-Sagitar-like cabin as seen from the windshield mount.

    The steering wheel sits between the radar and the driver; the headrest
    and seat back are behind the head; the dashboard below the mount gives
    a short-range plastic return.
    """
    return CabinGeometry(
        reflectors=(
            CabinReflector("dashboard", 0.18, "plastic", 3.0e-2, beam_gain=0.02),
            CabinReflector("steering_wheel", 0.26, "metal", 4.0e-3, beam_gain=0.05),
            # Side structures at face range: they put a *static* vector in
            # the eye's own range cell (the "multipath-filled signal" of
            # Fig. 2), which is why 1-D amplitude is an unreliable blink
            # observable and the I/Q viewing position is needed.
            CabinReflector("a_pillar", 0.44, "plastic", 2.0e-2, beam_gain=0.15),
            CabinReflector("door_panel", 0.58, "plastic", 4.0e-2, beam_gain=0.2),
            CabinReflector(
                "headrest", 0.22, "fabric_foam", 5.0e-2,
                relative_to_driver=True, beam_gain=0.7,
            ),
            CabinReflector(
                "seat_back", 0.45, "fabric_foam", 1.2e-1,
                relative_to_driver=True, beam_gain=0.5,
            ),
            CabinReflector(
                "rear_cabin", 0.95, "plastic", 2.0e-1,
                relative_to_driver=True, beam_gain=0.3,
            ),
        )
    )

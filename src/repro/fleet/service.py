"""`FleetService`: the operator-facing front of the fleet subsystem.

The service composes everything below it: it simulates one driving
world per vehicle (:mod:`repro.sim`), builds a supervised
:class:`~repro.fleet.session.DetectorSession` per vehicle (optionally
behind a :class:`~repro.fleet.faults.SpiFaultInjector`), drives them all
through one :class:`~repro.fleet.scheduler.FleetScheduler`, aggregates
every typed event into a single time-ordered log, and exports health
snapshots plus a JSON-serialisable metrics snapshot.

Typical use::

    service = FleetService(workers=4)
    for k in range(8):
        service.add_vehicle(VehicleSpec(f"v{k:02d}", seed=k, duration_s=30.0,
                                        fault_at_s=10.0 if k < 2 else None))
    service.run()
    print(service.health())
    print(service.metrics_snapshot()["counters"]["fleet.blinks"])
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.fleet.events import FleetEvent
from repro.fleet.faults import SpiFaultInjector
from repro.hardware.spi import SpiSlave
from repro.fleet.metrics import MetricsRegistry
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.session import DetectorSession, SessionConfig

__all__ = ["VehicleSpec", "FleetService"]

#: Approximate SPI transactions per streamed frame (FIFO count ×2,
#: burst, FIFO count ×2, frame count ×2) and at bring-up (probe ×2,
#: configure ×2, start). Used only to aim scheduled faults at a rough
#: point in the stream — exactness is irrelevant to the recovery path.
_TX_PER_FRAME = 7
_TX_STARTUP = 5


@dataclass(frozen=True)
class VehicleSpec:
    """Declarative description of one simulated vehicle.

    Attributes
    ----------
    vehicle_id:
        Stable identifier (session id, metric prefix).
    road / state / duration_s / seed / distance_m:
        Scenario parameters passed to the simulator.
    fault_at_s:
        When set, an SPI fault burst is injected on this vehicle's wire
        at roughly this many seconds into the stream.
    fault_burst:
        Consecutive corrupted transactions per injected fault. Each
        failed recovery attempt consumes one transaction, so bursts of
        2+ also defeat the first reset attempts and exercise the retry
        path; bursts longer than the session's ``max_recovery_attempts``
        are terminal by design.
    """

    vehicle_id: str
    road: str = "smooth_highway"
    state: str = "awake"
    duration_s: float = 30.0
    seed: int = 0
    distance_m: float = 0.4
    fault_at_s: float | None = None
    fault_burst: int = 4

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.fault_at_s is not None and not 0 <= self.fault_at_s < self.duration_s:
            raise ValueError(
                f"fault_at_s={self.fault_at_s} outside the session's 0..{self.duration_s}s"
            )


class FleetService:
    """Spawn, supervise and observe many concurrent detector sessions."""

    def __init__(
        self,
        workers: int = 4,
        queue_depth: int = 4096,
        session_config: SessionConfig | None = None,
        pace_s: float | None = None,
        backend: str = "threaded",
    ) -> None:
        if backend not in ("threaded", "sharded"):
            raise ValueError(f"unknown backend {backend!r} (threaded|sharded)")
        self.backend = backend
        self.workers = workers
        self.queue_depth = queue_depth
        self.session_config = session_config if session_config is not None else SessionConfig()
        self.pace_s = pace_s
        self.metrics = MetricsRegistry()
        self.sessions: dict[str, DetectorSession] = {}
        self.traces: dict[str, object] = {}
        self._events: list[FleetEvent] = []  # reprolint: guarded-by(_events_lock)
        self._events_lock = threading.Lock()
        self._wall_s: float | None = None

    # ------------------------------------------------------------------ wiring
    def _record(self, event: FleetEvent) -> None:
        with self._events_lock:
            self._events.append(event)

    @property
    def events(self) -> list[FleetEvent]:
        """Aggregated fleet-wide event log (append order)."""
        with self._events_lock:
            return list(self._events)

    def events_of(self, kind: type[FleetEvent]) -> list[FleetEvent]:
        """All aggregated events of one record type."""
        return [e for e in self.events if isinstance(e, kind)]

    def add_session(
        self,
        session_id: str,
        frames: np.ndarray,
        wire_factory: Callable[[SpiSlave], SpiSlave] | None = None,
        config: SessionConfig | None = None,
    ) -> DetectorSession:
        """Register a session over pre-built frames (no simulation)."""
        if session_id in self.sessions:
            raise ValueError(f"duplicate session id {session_id!r}")
        session = DetectorSession(
            session_id,
            frames,
            config=config if config is not None else self.session_config,
            wire_factory=wire_factory,
            metrics=self.metrics,
            sink=self._record,
        )
        self.sessions[session_id] = session
        return session

    def add_vehicle(self, spec: VehicleSpec) -> DetectorSession:
        """Simulate ``spec``'s driving world and register its session."""
        from repro.physio import ParticipantProfile
        from repro.rf.geometry import SensorPose
        from repro.sim import Scenario, simulate

        scenario = Scenario(
            participant=ParticipantProfile(spec.vehicle_id),
            road=spec.road,
            state=spec.state,
            duration_s=spec.duration_s,
            pose=SensorPose(distance_m=spec.distance_m),
        )
        trace = simulate(scenario, seed=spec.seed)
        wire_factory: Callable[[SpiSlave], SpiSlave] | None = None
        if spec.fault_at_s is not None:
            frame_rate = 100.0 / self.session_config.frame_rate_div
            fault_tx = _TX_STARTUP + _TX_PER_FRAME * int(spec.fault_at_s * frame_rate)
            wire_factory = lambda device: SpiFaultInjector(  # noqa: E731
                device, fault_at=(fault_tx,), burst=spec.fault_burst
            )
        session = self.add_session(spec.vehicle_id, trace.frames, wire_factory=wire_factory)
        self.traces[spec.vehicle_id] = trace
        return session

    # ----------------------------------------------------------------- control
    def restart(self, session_id: str) -> None:
        """Request an operator restart of one session."""
        self.sessions[session_id].request_restart()

    def stop(self, session_id: str) -> None:
        """Request an orderly stop of one session."""
        self.sessions[session_id].request_stop()

    def run(self, max_rounds: int | None = None) -> int:
        """Drive every session to completion; returns pump rounds.

        Sessions are started (INIT → COLD_START), pumped concurrently
        through the scheduler's worker pool, drained, and finalized.
        Wall time and aggregate throughput land in the metrics registry.
        """
        if not self.sessions:
            raise RuntimeError("no sessions registered")
        started = time.perf_counter()
        if self.backend == "sharded":
            from repro.shard.runner import run_sharded

            rounds = run_sharded(
                list(self.sessions.values()),
                shards=self.workers,
                queue_depth=self.queue_depth,
                metrics=self.metrics,
                max_rounds=max_rounds,
                pace_s=self.pace_s,
            )
        else:
            scheduler = FleetScheduler(
                list(self.sessions.values()),
                workers=self.workers,
                queue_depth=self.queue_depth,
                metrics=self.metrics,
                pace_s=self.pace_s,
            )
            rounds = scheduler.run(max_rounds=max_rounds)
        self._wall_s = time.perf_counter() - started
        processed = self.metrics.counter("fleet.frames_processed").value
        self.metrics.gauge("fleet.wall_s").set(self._wall_s)
        if self._wall_s > 0:
            self.metrics.gauge("fleet.throughput_fps").set(processed / self._wall_s)
        return rounds

    # -------------------------------------------------------------- inspection
    def health(self) -> dict[str, dict[str, object]]:
        """Per-session health snapshot keyed by session id."""
        return {sid: session.health() for sid, session in sorted(self.sessions.items())}

    def metrics_snapshot(self) -> dict[str, dict[str, object]]:
        """The registry export (counters / gauges / histograms), JSON-ready."""
        return self.metrics.as_dict()

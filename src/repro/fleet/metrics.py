"""Dependency-free metrics registry for the fleet service.

Three instrument kinds, modelled on the usual production trio:

- :class:`Counter` — monotonically increasing totals (frames processed,
  drops, restarts).
- :class:`Gauge` — last-written values (queue depth, session state).
- :class:`Histogram` — streaming distributions (per-frame latency). The
  histogram keeps exact ``count``/``sum``/``min``/``max`` over the full
  stream and estimates percentiles from a bounded ring of the most
  recent observations, so memory stays O(window) regardless of how long
  a session runs.

All instruments hang off a :class:`MetricsRegistry`, are created on
first use (``registry.counter("x").inc()``), are thread-safe, and
export to a plain JSON-serialisable dict via :meth:`MetricsRegistry.as_dict`.
Everything here is standard library only — no client libraries, no
numpy — so the observability layer can never be the reason the service
fails to import.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Callable, TypeVar

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_InstrumentT = TypeVar("_InstrumentT", "Counter", "Gauge", "Histogram")

#: Default number of recent observations a histogram keeps for
#: percentile estimation.
DEFAULT_HISTOGRAM_WINDOW = 2048


class Counter:
    """A monotonically increasing counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0  # reprolint: guarded-by(_lock)

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, state codes...)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0  # reprolint: guarded-by(_lock)

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta``."""
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Streaming distribution with bounded-memory percentile estimates.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    ``percentile`` sorts the retained window (the most recent
    ``window`` observations), which is the right trade-off for
    service latencies: recent behaviour is what a health check wants,
    and the window is large enough that p99 over it is stable.
    """

    def __init__(self, window: int = DEFAULT_HISTOGRAM_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._recent: deque[float] = deque(maxlen=window)  # reprolint: guarded-by(_lock)
        self._count = 0  # reprolint: guarded-by(_lock)
        self._sum = 0.0  # reprolint: guarded-by(_lock)
        self._min = float("inf")  # reprolint: guarded-by(_lock)
        self._max = float("-inf")  # reprolint: guarded-by(_lock)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Total observations ever recorded."""
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        """Mean over all observations (NaN when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) over the retained window (NaN when empty)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in 0..100, got {q}")
        with self._lock:
            if not self._recent:
                return float("nan")
            ordered = sorted(self._recent)
        # Nearest-rank on the retained window.
        rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict[str, float]:
        """Summary dict: count, sum, mean, min/max, p50/p95/p99."""
        with self._lock:
            if self._count == 0:
                return {"count": 0}
            base = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
            }
        base.update(
            p50=self.percentile(50), p95=self.percentile(95), p99=self.percentile(99)
        )
        return base


#: Characters legal in a Prometheus metric name; everything else maps
#: to ``_``.
_PROM_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")

#: Summary quantiles exported for every histogram (the registry's
#: snapshot trio).
_PROM_QUANTILES: tuple[tuple[str, float], ...] = (("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0))


def _prom_name(raw: str) -> str:
    """A registry name as a Prometheus metric name (dots become ``_``)."""
    name = _PROM_NAME_ILLEGAL.sub("_", raw)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_value(value: float) -> str:
    """Render one sample value (exposition accepts NaN/Inf spellings)."""
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prom_split(name: str, namespace: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    """``(family, labels)`` for one registry name.

    Per-session instruments — the registry convention
    ``session.<id>.<metric>`` — fold into one labelled family per
    metric (``repro_session_latency_s{session="v03"}``) instead of one
    family per vehicle, which is what makes the export scrapeable at
    fleet scale.
    """
    parts = name.split(".")
    if len(parts) >= 3 and parts[0] == "session":
        family = _prom_name(f"{namespace}_session_{'_'.join(parts[2:])}")
        return family, (("session", parts[1]),)
    return _prom_name(f"{namespace}_{'_'.join(parts)}"), ()


def _prom_series(family: str, labels: tuple[tuple[str, str], ...], value: str) -> str:
    if not labels:
        return f"{family} {value}"
    rendered = ",".join(f'{key}="{_prom_escape(val)}"' for key, val in labels)
    return f"{family}{{{rendered}}} {value}"


class MetricsRegistry:
    """Get-or-create home for every instrument in one service.

    Names are flat dotted strings (``"session.v03.frames_processed"``);
    the registry enforces that a name keeps one instrument kind for its
    lifetime, so a typo cannot silently fork a metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}  # reprolint: guarded-by(_lock)

    def _get_or_create(
        self,
        name: str,
        kind: type[_InstrumentT],
        factory: Callable[[], _InstrumentT],
    ) -> _InstrumentT:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Counter registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """Gauge registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, window: int = DEFAULT_HISTOGRAM_WINDOW) -> Histogram:
        """Histogram registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram, lambda: Histogram(window))

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Export every instrument as a JSON-serialisable dict."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: dict[str, dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in items:
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = instrument.snapshot()
        return out

    def render_prometheus(self, namespace: str = "repro") -> str:
        """Every instrument in Prometheus text exposition format.

        - Counters export as ``<namespace>_<name>_total`` with
          ``# TYPE ... counter``.
        - Gauges export under their name with ``# TYPE ... gauge``.
        - Histograms export as summaries: ``{quantile="0.5|0.95|0.99"}``
          series over the retained window plus exact ``_sum`` and
          ``_count`` over the full stream.
        - ``session.<id>.<metric>`` names fold into one family per
          metric with a ``session`` label.

        The output is deterministic: families are sorted by name, series
        within a family by label values, and label order is fixed
        (``session`` before ``quantile``), so two registries holding the
        same instruments render byte-identical text.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        # family -> (type, [(labels, value_str) ...]); insertion of
        # series follows the sorted registry walk, so per-family series
        # order is the sorted label order for free.
        families: dict[str, tuple[str, list[str]]] = {}

        def emit(family: str, prom_type: str, lines: list[str]) -> None:
            known = families.setdefault(family, (prom_type, []))
            if known[0] != prom_type:  # name collision across kinds
                raise ValueError(
                    f"metric family {family!r} rendered as both "
                    f"{known[0]} and {prom_type}"
                )
            known[1].extend(lines)

        for name, instrument in items:
            family, labels = _prom_split(name, namespace)
            if isinstance(instrument, Counter):
                emit(
                    f"{family}_total",
                    "counter",
                    [_prom_series(f"{family}_total", labels, _prom_value(instrument.value))],
                )
            elif isinstance(instrument, Gauge):
                emit(family, "gauge", [_prom_series(family, labels, _prom_value(instrument.value))])
            else:
                snap = instrument.snapshot()
                lines = [
                    _prom_series(
                        family,
                        labels + (("quantile", q_label),),
                        _prom_value(float(instrument.percentile(q))),
                    )
                    for q_label, q in _PROM_QUANTILES
                ]
                lines.append(
                    _prom_series(f"{family}_sum", labels, _prom_value(float(snap.get("sum", 0.0))))
                )
                lines.append(
                    _prom_series(f"{family}_count", labels, _prom_value(float(snap["count"])))
                )
                emit(family, "summary", lines)
        out: list[str] = []
        for family in sorted(families):
            prom_type, lines = families[family]
            out.append(f"# TYPE {family} {prom_type}")
            out.extend(lines)
        return "\n".join(out) + "\n" if out else ""

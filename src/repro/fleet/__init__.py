"""Concurrent multi-vehicle detection service (the fleet layer).

The single-session pipeline (``hardware`` → ``core``) detects one
driver's blinks; this package runs *many* of those pipelines as a
supervised, observable service — the host-side orchestration layer a
deployed BlinkRadar fleet needs:

- :mod:`repro.fleet.session` — :class:`DetectorSession`, a lifecycle
  state machine (INIT → COLD_START → RUNNING ⇄ DEGRADED → STOPPED) with
  SPI-fault recovery via chip soft-reset.
- :mod:`repro.fleet.scheduler` — :class:`FleetScheduler`, a thread-pool
  pump with bounded per-session queues and drop-oldest backpressure.
- :mod:`repro.fleet.service` — :class:`FleetService`, spawn/stop/restart,
  aggregated typed events, health snapshots.
- :mod:`repro.fleet.events` — the typed event records.
- :mod:`repro.fleet.metrics` — a dependency-free counters/gauges/
  histograms registry exporting to a JSON dict.
- :mod:`repro.fleet.faults` — deterministic SPI fault injection.

See ``docs/fleet.md`` for the architecture and policies.
"""

from repro.fleet.events import (
    BlinkEvent,
    DrowsyAlertEvent,
    FaultEvent,
    FleetEvent,
    FrameDropEvent,
    RestartEvent,
    StateChangeEvent,
)
from repro.fleet.faults import SpiFaultInjector
from repro.fleet.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.service import FleetService, VehicleSpec
from repro.fleet.session import DetectorSession, SessionConfig, SessionState

__all__ = [
    "BlinkEvent",
    "Counter",
    "DetectorSession",
    "DrowsyAlertEvent",
    "FaultEvent",
    "FleetEvent",
    "FleetScheduler",
    "FleetService",
    "FrameDropEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RestartEvent",
    "SessionConfig",
    "SessionState",
    "SpiFaultInjector",
    "StateChangeEvent",
    "VehicleSpec",
]

"""One vehicle's detector session: a supervised lifecycle around the stack.

:class:`DetectorSession` owns a full per-vehicle pipeline — emulated
chip, (optionally faulty) SPI wire, host driver, frame stream, streaming
blink detector — and wraps it in the state machine a service needs:

::

    INIT ──start()──▶ COLD_START ──bin selected──▶ RUNNING
                          ▲                          │
                          │      movement restart    │
                          ├──────────────────────────┤
                          │                          ▼
                    (soft reset ok)             DEGRADED ◀── SpiError
                          └─────── backoff ────────┘
                                                     │ attempts exhausted
      source dry / stop() ──▶ STOPPED ◀──────────────┘

A wire fault (:class:`~repro.hardware.spi.SpiError`) does not crash the
session: it parks in DEGRADED, keeps *device time moving* (the chip keeps
sampling into its FIFO — overflowing it, which is counted), then
soft-resets and reconfigures the chip and re-enters a fresh 2 s cold
start, exactly the recovery a deployed head unit performs.

Threading contract (enforced by :mod:`repro.fleet.scheduler`):
:meth:`produce` is only ever called from the scheduler's pump thread and
:meth:`process` from at most one worker at a time; the small amount of
state they share is guarded by an internal lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.realtime import RealTimeBlinkDetector, RealTimeConfig
from repro.fleet.events import (
    BlinkEvent,
    DrowsyAlertEvent,
    FaultEvent,
    FleetEvent,
    FrameDropEvent,
    RestartEvent,
    StateChangeEvent,
)
from repro.fleet.metrics import Counter, MetricsRegistry
from repro.hardware.device import UwbRadarDevice
from repro.hardware.driver import FrameStream, XepDriver
from repro.hardware.spi import SpiBus, SpiError, SpiSlave

__all__ = ["SessionState", "SessionConfig", "DetectorSession", "FrameItem"]

#: What the pump hands the workers: (generation, world time s, frame).
FrameItem = tuple[int, float, np.ndarray]


class SessionState(Enum):
    """Lifecycle states of a detector session."""

    INIT = "init"
    COLD_START = "cold_start"
    RUNNING = "running"
    DEGRADED = "degraded"
    STOPPED = "stopped"


@dataclass(frozen=True)
class SessionConfig:
    """Per-session policy knobs.

    Attributes
    ----------
    frame_rate_div / tx_power:
        Chip configuration programmed at every (re)start (div 4 = the
        paper's 25 FPS).
    fifo_frames:
        Device FIFO capacity in frames; overflows during a DEGRADED
        spell are the realistic loss mode.
    recovery_backoff_frames:
        Frame periods to sit in DEGRADED before attempting a soft reset
        (a real harness fault is rarely a single transaction long).
    max_recovery_attempts:
        Consecutive failed resets before the session gives up and stops.
        Each failed attempt consumes one wire transaction (the reset
        write), so a fault burst longer than this many transactions is
        terminal — size injected bursts accordingly.
    drowsy_rate_threshold_bpm / drowsy_window_s:
        Blink-rate alerting: alert when the rate over the trailing
        window crosses the threshold (paper Sec. IV-F: drowsy drivers
        blink markedly faster; awake baselines sit near 15-20/min).
    detector:
        Streaming detector configuration (paper defaults when None).
    """

    frame_rate_div: int = 4
    tx_power: int = 0xFF
    fifo_frames: int = 8
    recovery_backoff_frames: int = 10
    max_recovery_attempts: int = 8
    drowsy_rate_threshold_bpm: float = 28.0
    drowsy_window_s: float = 30.0
    detector: RealTimeConfig | None = None

    def __post_init__(self) -> None:
        if self.recovery_backoff_frames < 1:
            raise ValueError("recovery_backoff_frames must be >= 1")
        if self.max_recovery_attempts < 1:
            raise ValueError("max_recovery_attempts must be >= 1")
        if self.fifo_frames < 1:
            raise ValueError("fifo_frames must be >= 1")


class DetectorSession:
    """Supervised per-vehicle detection pipeline (see module docstring).

    Parameters
    ----------
    session_id:
        Stable identifier; prefixes every event and metric.
    frames:
        The vehicle's world: a (n_frames, n_bins) complex matrix the
        emulated chip samples from. The session keeps its own cursor
        into it, so a chip reset never rewinds the world — frames that
        elapse while the session is down are simply gone, as on a road.
    config:
        Policy knobs (:class:`SessionConfig`).
    wire_factory:
        Optional wrapper applied to the device before the bus sees it
        (e.g. :class:`~repro.fleet.faults.SpiFaultInjector`).
    metrics:
        Shared registry; the session records under ``session.<id>.*``
        and aggregates under ``fleet.*``.
    sink:
        Callable receiving every :class:`~repro.fleet.events.FleetEvent`
        (the service's aggregated log). Events are also kept locally in
        :attr:`events`.
    """

    def __init__(
        self,
        session_id: str,
        frames: np.ndarray,
        config: SessionConfig | None = None,
        wire_factory: Callable[[SpiSlave], SpiSlave] | None = None,
        metrics: MetricsRegistry | None = None,
        sink: Callable[[FleetEvent], None] | None = None,
    ) -> None:
        frames = np.asarray(frames)
        if frames.ndim != 2 or frames.shape[0] < 1:
            raise ValueError(f"frames must be a non-empty (n_frames, n_bins) matrix, got {frames.shape}")
        self.session_id = session_id
        self.config = config if config is not None else SessionConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sink = sink
        self._frames = frames
        self._n_world = frames.shape[0]
        self.n_bins = frames.shape[1]
        self.frame_rate_hz = 100.0 / self.config.frame_rate_div
        self._period_s = 1.0 / self.frame_rate_hz

        self.device = UwbRadarDevice(
            frame_source=self._feed,
            fifo_capacity_bytes=self.config.fifo_frames * self.n_bins * 4,
        )
        self.wire: SpiSlave = wire_factory(self.device) if wire_factory else self.device
        self.driver = XepDriver(SpiBus(self.wire), n_bins=self.n_bins)

        self._lock = threading.Lock()
        self._state = SessionState.INIT  # reprolint: guarded-by(_lock)
        self._cursor = 0  # next world frame index the chip will sample
        self._base_cursor = 0  # world index where the current incarnation began
        self._drops_reported = 0  # per-incarnation FIFO drops already evented
        self._backoff = 0
        self._recovery_attempts = 0
        self._pending_fault: str | None = None
        self._restart_requested = False
        self._stop_requested = False
        self._closed = False
        #: True once the world ran dry: the pump must stop producing,
        #: but STOPPED is only stamped after the queue drains (close()),
        #: so worker-side transitions land in order.
        self.draining = False
        self._last_time_s = 0.0
        self._last_det_index = 0
        self._generation = 0  # bumped at every bring-up  # reprolint: guarded-by(_lock)
        self._stream: FrameStream | None = None
        self.detector: RealTimeBlinkDetector | None = None
        self._blink_times: deque[float] = deque()
        self._last_alert_time_s = float("-inf")

        self.events: list[FleetEvent] = []
        self.blink_events: list[BlinkEvent] = []
        self.frames_processed = 0
        self.restarts = 0

    # ----------------------------------------------------------------- helpers
    def _feed(self, _k: int) -> np.ndarray:
        # The chip samples the *world*, not a tape: the session cursor
        # only moves forward, so resets lose frames instead of replaying.
        i = self._cursor
        if i >= self._n_world:
            raise IndexError(i)
        self._cursor = i + 1
        return self._frames[i]

    @property
    def state(self) -> SessionState:
        """Current lifecycle state."""
        with self._lock:
            return self._state

    @property
    def active(self) -> bool:
        """True until the session reaches STOPPED."""
        return self.state is not SessionState.STOPPED

    @property
    def time_s(self) -> float:
        """Session device-time clock (seconds of world elapsed)."""
        return self._cursor * self._period_s

    @property
    def generation(self) -> int:
        """Current detector incarnation (bumped at every bring-up).

        External frame producers (the gateway's ingestion path) stamp
        queued items with this so a restart mid-queue flushes the stale
        backlog exactly as the pump's :meth:`produce` tagging does.
        """
        with self._lock:
            return self._generation

    @property
    def blink_times_s(self) -> list[float]:
        """Device-time stamps of every detected blink."""
        return [e.time_s for e in self.blink_events]

    def _emit(self, event: FleetEvent) -> None:
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    def _transition(self, new_state: SessionState, at_s: float | None = None) -> None:
        # at_s: device-time stamp; worker-side transitions pass the time
        # of the frame that caused them (the cursor clock runs ahead of
        # the queue when the pump is unpaced).
        with self._lock:
            old = self._state
            if old is new_state:
                return
            self._state = new_state
        self._emit(
            StateChangeEvent(
                self.session_id, self.time_s if at_s is None else at_s, old.value, new_state.value
            )
        )

    def _metric(self, name: str) -> Counter:
        return self.metrics.counter(f"session.{self.session_id}.{name}")

    def _apex_time(self, anchor_time_s: float, anchor_index: int, event_index: int) -> float:
        """World time of a blink apex that the detector reported
        ``anchor_index - event_index`` frames after the fact.

        Computed index-first and divided by the frame rate — the same
        arithmetic the detector's own ``time_s`` uses — so apex stamps
        compare bit-for-bit with the single-session pipeline.
        """
        world_index = round(anchor_time_s * self.frame_rate_hz) - (anchor_index - event_index)
        return world_index / self.frame_rate_hz

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Probe, configure and start the chip; enter the first cold start."""
        if self.state is not SessionState.INIT:
            raise RuntimeError(f"session {self.session_id} already started")
        try:
            self._bring_up()
        except SpiError as exc:
            self._note_fault(str(exc))
            self._enter_degraded()

    def _bring_up(self) -> None:
        """(Re)configure the chip and build a fresh stream + detector."""
        self.driver.probe()
        self.driver.configure(
            frame_rate_div=self.config.frame_rate_div, tx_power=self.config.tx_power
        )
        self.driver.start()
        self._base_cursor = self._cursor
        self._drops_reported = 0
        self._stream = FrameStream(self.driver, self.device)
        # The generation bump and detector swap are atomic so workers
        # never feed a frame from a dead incarnation to the new detector.
        with self._lock:
            self._generation += 1
            self.detector = RealTimeBlinkDetector(self.frame_rate_hz, self.config.detector)
        self._recovery_attempts = 0
        self._transition(SessionState.COLD_START)

    def _note_fault(self, detail: str, terminal: bool = False) -> None:
        self._metric("faults").inc()
        self.metrics.counter("fleet.faults").inc()
        self._emit(FaultEvent(self.session_id, self.time_s, detail, terminal=terminal))

    def _enter_degraded(self) -> None:
        self._backoff = self.config.recovery_backoff_frames
        self._transition(SessionState.DEGRADED)

    def _shutdown(self) -> None:
        try:
            self.driver.stop()
        except SpiError:
            pass  # a dead wire cannot keep us from declaring the end
        self._transition(SessionState.STOPPED)

    def request_restart(self) -> None:
        """Ask for an operator restart (honoured on the next produce)."""
        self._restart_requested = True

    def request_stop(self) -> None:
        """Ask for an orderly stop (honoured on the next produce)."""
        self._stop_requested = True

    # ------------------------------------------------------------ produce side
    def produce(self) -> FrameItem | None:
        """Advance one frame period; return ``(generation, time_s, frame)``.

        Called once per scheduling round by the pump thread; returns
        None when no frame arrived this period. All fault handling
        lives here: an :class:`SpiError` parks the session in DEGRADED
        instead of propagating. The generation tag lets :meth:`process`
        flush frames that were queued before a restart instead of
        feeding the reborn detector a stale backlog.
        """
        state = self.state
        if state in (SessionState.INIT, SessionState.STOPPED):
            return None
        if self._stop_requested:
            self._stop_requested = False
            self._shutdown()
            return None
        if state is SessionState.DEGRADED:
            # The chip never stopped sampling: world time advances and
            # the FIFO overflows while the host backs off — those are
            # real, counted losses.
            self.device.tick()
            self._backoff -= 1
            if self._backoff <= 0:
                self._recover(reason="spi_fault")
            return None
        if self._restart_requested:
            self._restart_requested = False
            self._recover(reason="manual")
            return None
        try:
            item = self._stream.poll()
            self._account_fifo_drops()
        except SpiError as exc:
            self._note_fault(str(exc))
            self._enter_degraded()
            return None
        if item is None:
            if self._stream.exhausted:
                self.draining = True
            return None
        timestamp, frame = item
        world_time = self._base_cursor * self._period_s + timestamp
        self._last_time_s = world_time
        with self._lock:
            generation = self._generation
        return generation, world_time, frame

    def _account_fifo_drops(self) -> None:
        dropped = self._stream.dropped
        if dropped > self._drops_reported:
            delta = dropped - self._drops_reported
            self._drops_reported = dropped
            self._metric("dropped_fifo").inc(delta)
            self.metrics.counter("fleet.dropped_fifo").inc(delta)
            self._emit(FrameDropEvent(self.session_id, self.time_s, delta, where="fifo"))

    def _recover(self, reason: str) -> None:
        """Soft-reset and reconfigure the chip; re-enter cold start."""
        # Everything the world produced this incarnation that never made
        # it to the detector is lost at the reset (FIFO flush + overflow
        # drops not yet accounted).
        delivered = self._stream.delivered if self._stream is not None else 0
        lost = (self._cursor - self._base_cursor) - delivered - self._drops_reported
        attempts = self._recovery_attempts + 1
        try:
            self.driver.soft_reset()
            self._bring_up()
        except SpiError as exc:
            self._recovery_attempts += 1
            if self._recovery_attempts >= self.config.max_recovery_attempts:
                self._note_fault(f"recovery abandoned: {exc}", terminal=True)
                self._shutdown()
            else:
                self._note_fault(f"recovery attempt failed: {exc}")
                self._enter_degraded()
            return
        if lost > 0:
            self._metric("dropped_fifo").inc(lost)
            self.metrics.counter("fleet.dropped_fifo").inc(lost)
            self._emit(FrameDropEvent(self.session_id, self.time_s, lost, where="fifo"))
        self.restarts += 1
        self._metric("restarts").inc()
        self.metrics.counter("fleet.restarts").inc()
        self._emit(RestartEvent(self.session_id, self.time_s, reason, attempts=attempts))

    # ------------------------------------------------------------ process side
    def process(self, item: FrameItem, enqueued_at: float | None = None) -> None:
        """Run the detector over one produced item (worker side, serialized).

        The single-item degenerate case of :meth:`process_batch` — there
        is exactly one processing implementation.
        """
        self.process_batch([item], enqueued_ats=[enqueued_at])

    def process_batch(
        self,
        items: list[FrameItem],
        enqueued_ats: list[float | None] | None = None,
        denoised: np.ndarray | None = None,
    ) -> None:
        """Run the detector over several queued items (worker side, serialized).

        Contiguous same-generation runs are stacked and fed to
        :meth:`~repro.core.realtime.RealTimeBlinkDetector.process_block`,
        so a drained batch pays for one fused kernel launch instead of
        one per frame. Because the block walk is bit-identical to the
        frame-at-a-time walk, batching changes no detection output —
        the scheduler-vs-serial equivalence test holds frame counts,
        blink times and restarts fixed across batch sizes.

        ``denoised``, when given, is the fast-time cascade output for
        the batch's frames (row k denoises ``items[k]``'s frame),
        computed by a caller that fused the stage-1 kernel across many
        sessions (the shard worker). The cascade is stateless per row,
        so injecting it changes no output — it only moves the launch.

        Frames queued before a restart (older generation) are flushed,
        not processed: a reborn detector must cold-start on live frames,
        not on a backlog from its dead predecessor followed by a time
        jump it would misread as body movement. Staleness is judged
        once per run; a recovery landing mid-run supersedes the
        detector just as it could mid-frame before, and the state
        mirror below stays generation-guarded either way.
        """
        if enqueued_ats is None:
            enqueued_ats = [None] * len(items)
        start = 0
        for k in range(1, len(items) + 1):
            if k == len(items) or items[k][0] != items[start][0]:
                self._process_run(
                    items[start:k],
                    enqueued_ats[start:k],
                    None if denoised is None else denoised[start:k],
                )
                start = k

    def _process_run(
        self,
        items: list[FrameItem],
        enqueued_ats: list[float | None],
        denoised: np.ndarray | None = None,
    ) -> None:
        generation = items[0][0]
        with self._lock:
            detector = self.detector
            current = self._generation
        if detector is None:
            return
        if generation != current:
            for _, time_s, _ in items:
                self._metric("dropped_stale").inc()
                self.metrics.counter("fleet.dropped_stale").inc()
                self._emit(FrameDropEvent(self.session_id, time_s, 1, where="stale"))
            return
        statuses = detector.process_block(
            np.stack([frame for _, _, frame in items]), denoised=denoised
        )
        done_at = time.perf_counter()
        self.frames_processed += len(statuses)
        self._last_det_index = statuses[-1].frame_index
        self._metric("frames_processed").inc(len(statuses))
        self.metrics.counter("fleet.frames_processed").inc(len(statuses))
        for (_, time_s, _), status, enqueued_at in zip(items, statuses, enqueued_ats):
            if enqueued_at is not None:
                latency = done_at - enqueued_at
                self.metrics.histogram(f"session.{self.session_id}.latency_s").observe(latency)
                self.metrics.histogram("fleet.latency_s").observe(latency)
            if status.restarted:
                self.restarts += 1
                self._metric("restarts").inc()
                self.metrics.counter("fleet.restarts").inc()
                self._emit(RestartEvent(self.session_id, time_s, reason="movement"))
            if status.event is not None:
                # Stamp the blink at its apex in world time: LEVD
                # completes a blink a few hundred ms after the apex, and
                # the detector's own clock counts only delivered frames.
                apex = self._apex_time(time_s, status.frame_index, status.event.frame_index)
                self._on_blink(apex, status.event.frame_index, status.event.prominence)
            # Mirror the detector's internal cold-start cycle into the
            # session state (movement restarts re-enter cold start too).
            # status.selected_bin reflects the detector's bin *after*
            # this frame, so mirroring from statuses is frame-exact.
            # Guarded by generation: a recovery may supersede this
            # detector while the block runs, and its bin selection must
            # not leak onto the new incarnation's state.
            self._mirror_state(generation, time_s, selected=status.selected_bin != -1)

    def _mirror_state(self, generation: int, time_s: float, selected: bool) -> None:
        new_state: SessionState | None = None
        with self._lock:
            if self._generation == generation:
                if self._state is SessionState.COLD_START and selected:
                    self._state = new_state = SessionState.RUNNING
                elif self._state is SessionState.RUNNING and not selected:
                    self._state = new_state = SessionState.COLD_START
        if new_state is not None:
            old = (
                SessionState.COLD_START
                if new_state is SessionState.RUNNING
                else SessionState.RUNNING
            )
            self._emit(StateChangeEvent(self.session_id, time_s, old.value, new_state.value))

    def _on_blink(self, time_s: float, frame_index: int, prominence: float) -> None:
        event = BlinkEvent(self.session_id, time_s, frame_index, prominence)
        self.blink_events.append(event)
        self._emit(event)
        self._metric("blinks").inc()
        self.metrics.counter("fleet.blinks").inc()
        window = self.config.drowsy_window_s
        times = self._blink_times
        times.append(time_s)
        while times and times[0] < time_s - window:
            times.popleft()
        # Rate alerting only once the window is actually filled, with a
        # one-window refractory so a drowsy spell raises one alert, not
        # one per blink.
        if time_s < window or time_s - self._last_alert_time_s < window:
            return
        rate_bpm = len(times) * 60.0 / window
        if rate_bpm >= self.config.drowsy_rate_threshold_bpm:
            self._last_alert_time_s = time_s
            self._metric("drowsy_alerts").inc()
            self.metrics.counter("fleet.drowsy_alerts").inc()
            self._emit(
                DrowsyAlertEvent(
                    self.session_id,
                    time_s,
                    rate_bpm=rate_bpm,
                    threshold_bpm=self.config.drowsy_rate_threshold_bpm,
                    window_s=window,
                )
            )

    def close(self) -> None:
        """Flush the detector and stamp STOPPED (call after the queue drained)."""
        if self._closed:
            return
        self._closed = True
        detector = self.detector
        if detector is not None:
            event = detector.finish()
            if event is not None:
                apex = self._apex_time(self._last_time_s, self._last_det_index, event.frame_index)
                self._on_blink(apex, event.frame_index, event.prominence)
        if self.state is not SessionState.STOPPED:
            self._shutdown()

    # ------------------------------------------------------------- convenience
    def run_serial(self) -> None:
        """Drive the whole session on the calling thread (no scheduler).

        The reference execution mode: tests compare a scheduled fleet
        session against this to prove the scheduler changes nothing.
        """
        if self.state is SessionState.INIT:
            self.start()
        while self.active and not self.draining:
            item = self.produce()
            if item is not None:
                self.process(item, enqueued_at=time.perf_counter())
        self.close()

    def health(self) -> dict[str, object]:
        """One-line health snapshot (the service aggregates these)."""
        return {
            "state": self.state.value,
            "time_s": round(self.time_s, 3),
            "frames_world": self._cursor,
            "frames_processed": self.frames_processed,
            "blinks": len(self.blink_events),
            "restarts": self.restarts,
            "dropped_fifo": self._metric("dropped_fifo").value,
            "dropped_queue": self._metric("dropped_queue").value,
        }

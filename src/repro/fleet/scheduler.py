"""Thread-pool frame scheduler driving N sessions concurrently.

Design
------
One **pump** (the thread calling :meth:`FleetScheduler.run`) advances
every active session one frame period per round — device time stays in
lockstep across the fleet — and enqueues each produced frame on that
session's *bounded* queue. A pool of **workers** drains the queues and
feeds the detectors.

Two invariants make this correct and deterministic per session:

- **Per-session FIFO order.** Frames for one session are processed in
  production order: each session has its own queue, and a claim flag
  guarantees at most one worker works a given session at a time.
- **Explicit backpressure.** When a queue is full the *oldest* frame is
  dropped (freshest-data-wins, the right policy for a live detector
  whose cold start already tolerates gaps) and the loss is counted —
  never silent, never unbounded memory.

The pump never blocks on a slow session; a session's losses stay its
own. Detector math is numpy-heavy and releases the GIL, so the pool
buys real concurrency on this workload.

Two execution modes share the worker pool:

- **Pump mode** (:meth:`FleetScheduler.run`): the scheduler owns frame
  production — it advances every session's emulated device in lockstep
  and blocks until the fleet finishes.
- **Serve mode** (:meth:`FleetScheduler.start` / :meth:`FleetScheduler.stop`):
  frame production happens elsewhere (the network gateway); sessions are
  :meth:`attached <attach>` at runtime and frames arrive through
  :meth:`submit`, the public non-blocking ingestion path. Submitted
  frames get exactly the pump's treatment — same bounded queues, same
  drop-oldest backpressure, same metrics — and the sessions stay
  *externally owned*: :meth:`stop` drains the queues but never closes
  an attached session.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.fleet.events import FrameDropEvent
from repro.fleet.metrics import MetricsRegistry
from repro.fleet.session import DetectorSession, FrameItem

__all__ = ["FleetScheduler"]

#: Queue entries carry the frame plus the perf-counter enqueue stamp.
_QueueEntry = tuple[FrameItem, float]


@dataclass
class _SessionSlot:
    """Scheduler-side bookkeeping for one session."""

    session: DetectorSession
    queue: deque[_QueueEntry] = field(default_factory=deque)
    claimed: bool = False
    dropped: int = 0


class FleetScheduler:
    """Drive many :class:`DetectorSession` objects through a worker pool.

    Parameters
    ----------
    sessions:
        The fleet. Sessions still in INIT are started on :meth:`run`.
    workers:
        Worker threads processing frames (detector side).
    queue_depth:
        Per-session queue bound; beyond it the oldest queued frame is
        dropped and counted. The bound is a *memory cap*, not a rate
        matcher: an unpaced pump always outruns the detectors, so set
        the depth below the expected frame count only when load
        shedding is the intent (the default holds ~2.7 min of 25 FPS
        frames losslessly).
    metrics:
        Shared registry (``session.<id>.dropped_queue``,
        ``fleet.dropped_queue``, ``fleet.rounds``).
    pace_s:
        Optional sleep per round, to pump at real-time cadence instead
        of as-fast-as-possible.
    """

    def __init__(
        self,
        sessions: list[DetectorSession],
        workers: int = 4,
        queue_depth: int = 4096,
        metrics: MetricsRegistry | None = None,
        pace_s: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pace_s = pace_s
        #: Slot list and queues are shared with the workers: the list
        #: only grows (attach) or shrinks (detach) under the condition,
        #: and queue/claim state inside each slot is only touched under
        #: the condition. An empty list is legal: serve mode attaches
        #: sessions after construction.
        self._slots = [_SessionSlot(session=s) for s in sessions]
        self._cond = threading.Condition()
        self._by_id: dict[str, _SessionSlot] = {}  # reprolint: guarded-by(_cond)
        for slot in self._slots:
            if slot.session.session_id in self._by_id:
                raise ValueError(f"duplicate session id {slot.session.session_id!r}")
            self._by_id[slot.session.session_id] = slot
        self._pumping = False  # reprolint: guarded-by(_cond)
        self._serve_threads: list[threading.Thread] = []

    # ------------------------------------------------------------------- pump
    def run(self, max_rounds: int | None = None) -> int:
        """Pump until every session stops (or ``max_rounds``); returns rounds.

        Blocks the calling thread; workers are joined (and every queued
        frame fully processed) before it returns.
        """
        from repro.fleet.session import SessionState

        if self._serve_threads:
            raise RuntimeError("scheduler is in serve mode; stop() it before run()")
        if not self._slots:
            raise ValueError("need at least one session")
        for slot in self._slots:
            if slot.session.state is SessionState.INIT:
                slot.session.start()
        with self._cond:
            self._pumping = True
        threads = [
            threading.Thread(target=self._worker, name=f"fleet-worker-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for t in threads:
            t.start()
        rounds = 0
        try:
            while max_rounds is None or rounds < max_rounds:
                alive = False
                for slot in self._slots:
                    session = slot.session
                    if not session.active or session.draining:
                        continue
                    alive = True
                    item = session.produce()
                    if item is not None:
                        self._enqueue(slot, item)
                rounds += 1
                self.metrics.counter("fleet.rounds").inc()
                if not alive:
                    break
                if self.pace_s:
                    time.sleep(self.pace_s)
        finally:
            # Let the workers drain every queue, then stamp the final
            # lifecycle transitions in processing order.
            with self._cond:
                self._pumping = False
                self._cond.notify_all()
            for t in threads:
                t.join()
            for slot in self._slots:
                slot.session.close()
        return rounds

    def _enqueue(self, slot: _SessionSlot, item: FrameItem) -> bool:
        """Bounded enqueue with drop-oldest; True when a frame was shed."""
        session = slot.session
        with self._cond:
            if len(slot.queue) >= self.queue_depth:
                slot.queue.popleft()  # drop-oldest: freshest data wins
                slot.dropped += 1
                dropped_now = 1
            else:
                dropped_now = 0
            slot.queue.append((item, time.perf_counter()))
            depth = len(slot.queue)
            self._cond.notify()
        if dropped_now:
            self.metrics.counter(f"session.{session.session_id}.dropped_queue").inc()
            self.metrics.counter("fleet.dropped_queue").inc()
            session._emit(
                FrameDropEvent(session.session_id, session.time_s, dropped_now, where="queue")
            )
        self.metrics.gauge(f"session.{session.session_id}.queue_depth").set(depth)
        return bool(dropped_now)

    # -------------------------------------------------------- external ingest
    def attach(self, session: DetectorSession) -> None:
        """Register an externally-owned session at runtime (serve mode).

        The session's frames are expected through :meth:`submit`; the
        scheduler never calls :meth:`~DetectorSession.produce` or
        :meth:`~DetectorSession.close` on it — production and lifecycle
        stay with the caller (the gateway's connection handler).
        """
        with self._cond:
            if session.session_id in self._by_id:
                raise ValueError(f"duplicate session id {session.session_id!r}")
            slot = _SessionSlot(session=session)
            self._slots.append(slot)
            self._by_id[session.session_id] = slot

    def detach(self, session_id: str) -> int:
        """Unregister a session; returns frames still queued (discarded).

        Call after :meth:`drained` reports the queue empty to guarantee
        nothing is lost; detaching early sheds the backlog deliberately.
        """
        with self._cond:
            slot = self._by_id.pop(session_id, None)
            if slot is None:
                raise KeyError(f"unknown session id {session_id!r}")
            self._slots.remove(slot)
            return len(slot.queue)

    def submit(self, session_id: str, item: FrameItem) -> bool:
        """Public non-blocking ingestion path for externally-owned sessions.

        Enqueues one produced frame item exactly as the pump would —
        bounded queue, drop-oldest backpressure, per-session and fleet
        drop counters — and wakes a worker. Returns True when the frame
        was accepted without shedding, False when the oldest queued
        frame had to be dropped to make room. Never blocks on a full
        queue and is safe to call from any thread (including an asyncio
        event loop thread).
        """
        with self._cond:
            slot = self._by_id.get(session_id)
        if slot is None:
            raise KeyError(f"unknown session id {session_id!r}")
        return not self._enqueue(slot, item)

    def start(self) -> None:
        """Start the worker pool without a pump (serve mode).

        Pair with :meth:`stop`. Frames arrive through :meth:`submit`;
        sessions through :meth:`attach`.
        """
        with self._cond:
            if self._pumping or self._serve_threads:
                raise RuntimeError("scheduler already running")
            self._pumping = True
        self._serve_threads = [
            threading.Thread(target=self._worker, name=f"fleet-serve-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for t in self._serve_threads:
            t.start()

    def stop(self) -> None:
        """Drain every queue, then stop and join the serve-mode workers.

        Attached sessions are *not* closed — they are externally owned.
        Idempotent: stopping a scheduler that is not serving is a no-op.
        """
        if not self._serve_threads:
            return
        with self._cond:
            self._pumping = False
            self._cond.notify_all()
        for t in self._serve_threads:
            t.join()
        self._serve_threads = []

    def drained(self, session_id: str) -> bool:
        """True when a session's queue is empty and no worker holds it."""
        with self._cond:
            slot = self._by_id.get(session_id)
            if slot is None:
                raise KeyError(f"unknown session id {session_id!r}")
            return not slot.queue and not slot.claimed

    def idle(self) -> bool:
        """True when every queue is empty and every slot unclaimed."""
        with self._cond:
            return all(not s.queue and not s.claimed for s in self._slots)

    # ----------------------------------------------------------------- workers
    def _claim(self) -> _SessionSlot | None:
        """Under the lock: pick the unclaimed slot with the deepest queue."""
        best: _SessionSlot | None = None
        for slot in self._slots:
            if slot.claimed or not slot.queue:
                continue
            if best is None or len(slot.queue) > len(best.queue):
                best = slot
        if best is not None:
            best.claimed = True
        return best

    def _worker(self) -> None:
        batch_max = 8
        while True:
            with self._cond:
                slot = self._claim()
                if slot is None:
                    if not self._pumping and all(not s.queue for s in self._slots):
                        return
                    self._cond.wait(timeout=0.05)
                    continue
                batch = [slot.queue.popleft() for _ in range(min(batch_max, len(slot.queue)))]
            try:
                # One fused kernel launch for the whole drained batch;
                # bit-identical to feeding the frames one at a time.
                slot.session.process_batch(
                    [item for item, _ in batch],
                    enqueued_ats=[enqueued_at for _, enqueued_at in batch],
                )
            finally:
                with self._cond:
                    slot.claimed = False
                    if slot.queue:
                        self._cond.notify()

    # -------------------------------------------------------------- inspection
    def queue_depths(self) -> dict[str, int]:
        """Current queue depth per session id."""
        with self._cond:
            return {slot.session.session_id: len(slot.queue) for slot in self._slots}

    def dropped(self) -> dict[str, int]:
        """Queue drops per session id since construction."""
        with self._cond:
            return {slot.session.session_id: slot.dropped for slot in self._slots}

"""Deterministic SPI fault injection for fleet testing.

:class:`SpiFaultInjector` sits between the host's :class:`~repro.hardware.spi.SpiBus`
and the device, playing the role of a marginal wiring harness: at
scheduled transaction indices it corrupts the master's bytes before the
device sees them, so the device NAKs on the CRC and the driver raises
:class:`~repro.hardware.spi.SpiError` — exactly the failure mode a real
cabin install produces under vibration. Faults are scheduled by
transaction count, which makes every run bit-for-bit reproducible.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hardware.spi import SpiSlave

__all__ = ["SpiFaultInjector"]


class SpiFaultInjector:
    """Wire wrapper corrupting bursts of transactions at scheduled points.

    Parameters
    ----------
    slave:
        The real device (or any other :class:`SpiSlave`).
    fault_at:
        Transaction indices (1-based, counted on this wire) at which a
        fault burst begins.
    burst:
        Consecutive transactions corrupted per scheduled fault. A burst
        longer than one exercises the session's retry/backoff path, not
        just a single transient.
    """

    def __init__(self, slave: SpiSlave, fault_at: Iterable[int] = (), burst: int = 1) -> None:
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.slave = slave
        self.burst = burst
        self._starts = sorted(set(int(k) for k in fault_at))
        if self._starts and self._starts[0] < 1:
            raise ValueError("fault_at indices are 1-based transaction counts")
        self.transactions = 0
        self.faults_injected = 0

    def _faulty_now(self) -> bool:
        for start in self._starts:
            if start <= self.transactions < start + self.burst:
                return True
        return False

    def spi_transaction(self, mosi: bytes) -> bytes:
        """Forward one transaction, corrupting it when a fault is scheduled."""
        self.transactions += 1
        if self._faulty_now():
            self.faults_injected += 1
            # Flip a bit in the command byte: the CRC no longer matches,
            # the device NAKs, the master raises SpiError. The register
            # file is never touched by a corrupted write.
            mosi = bytes([mosi[0] ^ 0x01]) + mosi[1:]
        return self.slave.spi_transaction(mosi)

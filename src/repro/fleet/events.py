"""Typed event records flowing out of the fleet service.

Every noteworthy occurrence in a :class:`~repro.fleet.session.DetectorSession`
becomes one immutable record here, stamped with the session id and the
session's *device-time* clock (seconds since that vehicle's stream
started, anchored to the chip's frame counter — see
:class:`~repro.hardware.driver.FrameStream`). The service aggregates
them into one time-ordered log, which is what a dashboard, an alerting
rule, or a test asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FleetEvent",
    "BlinkEvent",
    "DrowsyAlertEvent",
    "StateChangeEvent",
    "RestartEvent",
    "FrameDropEvent",
    "FaultEvent",
]


@dataclass(frozen=True)
class FleetEvent:
    """Base record: which vehicle, when (session device-time seconds)."""

    session_id: str
    time_s: float


@dataclass(frozen=True)
class BlinkEvent(FleetEvent):
    """One detected eye blink.

    Attributes
    ----------
    frame_index:
        The detector's frame counter at the blink apex.
    prominence:
        LEVD prominence of the detection.
    """

    frame_index: int
    prominence: float


@dataclass(frozen=True)
class DrowsyAlertEvent(FleetEvent):
    """Blink rate crossed the drowsiness threshold.

    Attributes
    ----------
    rate_bpm:
        Blink rate (blinks/minute) over the trailing window.
    threshold_bpm:
        The configured alert threshold it exceeded.
    window_s:
        Length of the trailing window the rate was measured over.
    """

    rate_bpm: float
    threshold_bpm: float
    window_s: float


@dataclass(frozen=True)
class StateChangeEvent(FleetEvent):
    """A session lifecycle transition (values of ``SessionState``)."""

    old_state: str
    new_state: str


@dataclass(frozen=True)
class RestartEvent(FleetEvent):
    """The session re-entered cold start.

    Attributes
    ----------
    reason:
        ``"spi_fault"`` (device soft-reset after a wire fault),
        ``"movement"`` (the detector's own body-movement restart), or
        ``"manual"`` (operator-requested via the service).
    attempts:
        Recovery attempts it took (1 for a clean first-try recovery;
        always 1 for ``movement``/``manual``).
    """

    reason: str
    attempts: int = 1


@dataclass(frozen=True)
class FrameDropEvent(FleetEvent):
    """Frames were lost before reaching the detector.

    Attributes
    ----------
    n_dropped:
        How many frames this record accounts for.
    where:
        ``"fifo"`` (device FIFO overflow / reset flush), ``"queue"``
        (scheduler backpressure, drop-oldest), or ``"stale"`` (queued
        before a restart, flushed instead of fed to the new detector).
    """

    n_dropped: int
    where: str


@dataclass(frozen=True)
class FaultEvent(FleetEvent):
    """An SPI fault was observed on the session's wire.

    Attributes
    ----------
    detail:
        The error message from the driver.
    terminal:
        True when the session gave up recovering and stopped.
    """

    detail: str
    terminal: bool = False

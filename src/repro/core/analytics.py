"""Blink analytics beyond event times: durations and eyelid-closure load.

Sec. II of the paper grounds drowsiness in two markers — "the blinking
time will exceed 400 ms" and the rate rises — but its simple detector uses
rate only (Sec. IV-F). This module implements the duration side as the
natural extension:

- :func:`estimate_blink_durations` measures each detected blink's duration
  from the width of its excursion in the relative-distance waveform;
- :class:`BlinkWindowMetrics` aggregates a decision window into (rate,
  mean duration, closure fraction — a PERCLOS-style measure);
- :class:`DualFeatureClassifier` is the drop-in upgrade of the rate-only
  model: a two-feature Gaussian model over (rate, duration), which
  separates awake from drowsy far more strongly because drowsy blinks are
  ~2× longer while rates overlap window to window.

The ablation benchmark quantifies the rate-only vs rate+duration gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.levd import BlinkDetection

if TYPE_CHECKING:
    from repro.core.pipeline import BlinkRadarResult

__all__ = [
    "estimate_blink_durations",
    "BlinkWindowMetrics",
    "window_metrics",
    "DualFeatureClassifier",
    "PerclosClassifier",
    "result_window_features",
]


def estimate_blink_durations(
    relative_distance: np.ndarray,
    events: list[BlinkDetection],
    frame_rate_hz: float,
    max_duration_s: float = 1.5,
) -> np.ndarray:
    """Blink durations from the width of each r(k) excursion.

    For each detected apex, the local baseline is the median of r over a
    neighbourhood excluding the blink itself; the duration is the time r
    stays beyond half the apex deviation ("full width at half deviation",
    robust to the exact detection threshold). NaN stretches (cold starts)
    clip the walk.

    Returns one duration (seconds) per event; events whose apex lies in an
    invalid region yield NaN.
    """
    if frame_rate_hz <= 0:
        raise ValueError(f"frame rate must be positive, got {frame_rate_hz}")
    r = np.asarray(relative_distance, dtype=float)
    max_frames = int(max_duration_s * frame_rate_hz)
    durations = np.full(len(events), np.nan)

    for idx, event in enumerate(events):
        k = event.frame_index
        if not 0 <= k < len(r) or not np.isfinite(r[k]):
            continue
        lo = max(0, k - 3 * max_frames)
        hi = min(len(r), k + 3 * max_frames)
        neighbourhood = r[lo:hi]
        inside = np.abs(np.arange(lo, hi) - k) > max_frames // 2
        baseline_pool = neighbourhood[inside & np.isfinite(neighbourhood)]
        if baseline_pool.size < 8:
            continue
        baseline = float(np.median(baseline_pool))
        apex_dev = abs(r[k] - baseline)
        if apex_dev <= 0:
            continue
        half = apex_dev / 2.0

        def beyond(j: int) -> bool:
            return np.isfinite(r[j]) and abs(r[j] - baseline) > half

        start = k
        while start > max(0, k - max_frames) and beyond(start - 1):
            start -= 1
        stop = k
        while stop < min(len(r) - 1, k + max_frames) and beyond(stop + 1):
            stop += 1
        durations[idx] = (stop - start + 1) / frame_rate_hz
    return durations


@dataclass(frozen=True)
class BlinkWindowMetrics:
    """Aggregated blink behaviour over one decision window.

    Attributes
    ----------
    rate_per_min:
        Blink events per minute.
    mean_duration_s:
        Mean estimated blink duration (NaN when no event had a valid
        duration — treat as missing).
    closure_fraction:
        Fraction of the window spent mid-blink (duration × count over the
        window length) — the radar analogue of the camera PERCLOS measure.
    """

    rate_per_min: float
    mean_duration_s: float
    closure_fraction: float


def window_metrics(
    events: list[BlinkDetection],
    durations_s: np.ndarray,
    window_start_s: float,
    window_s: float,
) -> BlinkWindowMetrics:
    """Aggregate the events falling inside one window."""
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    durations_s = np.asarray(durations_s, dtype=float)
    if len(durations_s) != len(events):
        raise ValueError("one duration per event required")
    in_window = [
        (e, d) for e, d in zip(events, durations_s)
        if window_start_s <= e.time_s < window_start_s + window_s
    ]
    count = len(in_window)
    valid = [d for _, d in in_window if np.isfinite(d)]
    mean_duration = float(np.mean(valid)) if valid else float("nan")
    closure = (
        sum(valid) / window_s if valid else (0.0 if count == 0 else float("nan"))
    )
    return BlinkWindowMetrics(
        rate_per_min=count * 60.0 / window_s,
        mean_duration_s=mean_duration,
        closure_fraction=float(closure),
    )


@dataclass
class DualFeatureClassifier:
    """Two-feature (rate, duration) Gaussian drowsiness model.

    Same calibrate-then-classify protocol as
    :class:`repro.core.drowsy.BlinkRateClassifier`, but each window is the
    pair (blink rate, mean blink duration). Duration is the stronger
    feature — drowsy blinks are more than twice as long while window rates
    overlap — so this classifier stays reliable in windows where the rate
    alone is ambiguous.
    """

    awake_mean: np.ndarray = field(default=None, init=False)
    awake_std: np.ndarray = field(default=None, init=False)
    drowsy_mean: np.ndarray = field(default=None, init=False)
    drowsy_std: np.ndarray = field(default=None, init=False)
    trained: bool = field(default=False, init=False)

    _STD_FLOOR = np.array([0.5, 0.03])  # blinks/min, seconds

    @staticmethod
    def _clean(features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float).reshape(-1, 2)
        return features[np.isfinite(features).all(axis=1)]

    def fit(
        self, awake_features: np.ndarray, drowsy_features: np.ndarray
    ) -> DualFeatureClassifier:
        """Fit from (n, 2) arrays of per-window (rate, duration)."""
        awake = self._clean(awake_features)
        drowsy = self._clean(drowsy_features)
        if len(awake) < 1 or len(drowsy) < 1:
            raise ValueError("need at least one valid calibration window per class")
        self.awake_mean = awake.mean(axis=0)
        self.drowsy_mean = drowsy.mean(axis=0)
        floor = np.maximum(
            self._STD_FLOOR, 0.2 * np.abs(self.drowsy_mean - self.awake_mean)
        )
        self.awake_std = np.maximum(awake.std(axis=0), floor)
        self.drowsy_std = np.maximum(drowsy.std(axis=0), floor)
        self.trained = True
        return self

    def classify(self, rate_per_min: float, mean_duration_s: float) -> str:
        """Classify one window; falls back to rate-only if duration is NaN."""
        if not self.trained:
            raise RuntimeError("classifier not trained; call fit() first")
        features = np.array([rate_per_min, mean_duration_s], dtype=float)
        usable = np.isfinite(features)
        if not usable[0]:
            raise ValueError("rate must be finite")
        log_like = {}
        for state, mean, std in (
            ("awake", self.awake_mean, self.awake_std),
            ("drowsy", self.drowsy_mean, self.drowsy_std),
        ):
            z = (features[usable] - mean[usable]) / std[usable]
            log_like[state] = float(-0.5 * np.sum(z**2) - np.sum(np.log(std[usable])))
        return "drowsy" if log_like["drowsy"] > log_like["awake"] else "awake"


def result_window_features(
    result: BlinkRadarResult, window_s: float = 60.0
) -> np.ndarray:
    """Per-window (rate, mean duration) features of a detection result.

    ``result`` is a :class:`repro.core.pipeline.BlinkRadarResult`; returns
    an (n_windows, 2) array over non-overlapping windows, the calibration/
    decision unit of the dual-feature drowsiness model.
    """
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    durations = estimate_blink_durations(
        result.relative_distance, result.events, result.frame_rate_hz
    )
    rows = []
    start = 0.0
    while start + window_s <= result.duration_s + 1e-9:
        m = window_metrics(result.events, durations, start, window_s)
        rows.append([m.rate_per_min, m.mean_duration_s])
        start += window_s
    return np.array(rows).reshape(-1, 2)


@dataclass
class PerclosClassifier:
    """PERCLOS-style drowsiness model: threshold on eyelid-closure load.

    PERCLOS — the fraction of time the eyes are (near-)closed — is the
    classic camera-based drowsiness measure; its radar analogue here is
    the per-window ``closure_fraction`` (detected blink durations summed
    over the window). A single threshold is calibrated at the midpoint of
    the two classes' mean closure fractions.

    Simpler than the Gaussian models and attractive operationally (one
    interpretable number), but it inherits all the duration-estimation
    noise without the rate feature to fall back on.
    """

    threshold: float = field(default=0.0, init=False)
    trained: bool = field(default=False, init=False)

    def fit(
        self, awake_closure: np.ndarray, drowsy_closure: np.ndarray
    ) -> PerclosClassifier:
        """Fit from per-window closure fractions of each class."""
        awake = np.asarray(awake_closure, dtype=float)
        drowsy = np.asarray(drowsy_closure, dtype=float)
        awake = awake[np.isfinite(awake)]
        drowsy = drowsy[np.isfinite(drowsy)]
        if awake.size < 1 or drowsy.size < 1:
            raise ValueError("need at least one valid calibration window per class")
        self.threshold = float((awake.mean() + drowsy.mean()) / 2.0)
        self.trained = True
        return self

    def classify(self, closure_fraction: float) -> str:
        """Classify one window's closure fraction."""
        if not self.trained:
            raise RuntimeError("classifier not trained; call fit() first")
        if not np.isfinite(closure_fraction):
            raise ValueError("closure fraction must be finite")
        return "drowsy" if closure_fraction > self.threshold else "awake"

"""Vital-sign monitoring from the same radar (extension).

The interference BlinkRadar fights — respiration at the torso, BCG pulses
at the head — is itself the signal of the in-vehicle vital-sign systems
the paper builds on (V2iFi, MoVi-Fi). Since the simulation substrate
models both, this module closes the loop: respiration and heart rate
estimated from the identical frame stream, giving the repository an
in-cabin wellness monitor beside the blink detector.

- Respiration: the torso's range bin is the *global* variance maximum (the
  very property blink bin-selection must avoid); its unwrapped phase is
  chest displacement, whose spectral peak is the breathing rate.
- Heart rate: the head's BCG pulse train rides on the eye/face bin; its
  phase, band-passed around the cardiac band, peaks at the heart rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binselect import select_eye_bin
from repro.core.iqspace import phase_series
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.dsp.filters import design_lowpass_fir, fir_filter
from repro.dsp.spectral import dominant_frequency

__all__ = ["VitalSigns", "VitalSignsMonitor"]


@dataclass(frozen=True)
class VitalSigns:
    """One capture's vital-sign estimates.

    Attributes
    ----------
    respiration_bpm:
        Breathing rate, breaths per minute.
    heart_rate_bpm:
        Heart rate, beats per minute.
    torso_bin / head_bin:
        The fast-time bins the estimates were read from.
    """

    respiration_bpm: float
    heart_rate_bpm: float
    torso_bin: int
    head_bin: int


class VitalSignsMonitor:
    """Respiration + heart rate from raw radar frames."""

    #: Physiological search bands (Hz).
    RESP_BAND = (0.1, 0.5)
    CARDIAC_BAND = (0.8, 2.2)

    def __init__(self, frame_rate_hz: float = 25.0) -> None:
        if frame_rate_hz <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate_hz}")
        if frame_rate_hz / 2 <= self.CARDIAC_BAND[1]:
            raise ValueError("frame rate too low to resolve the cardiac band")
        self.frame_rate_hz = frame_rate_hz
        self._pre = Preprocessor(PreprocessorConfig(subtract_background=False))

    def _band_limited(self, x: np.ndarray, band: tuple[float, float]) -> np.ndarray:
        """Zero-mean band-pass via the difference of two low-pass FIRs."""
        lo = design_lowpass_fir(64, band[0] / self.frame_rate_hz)
        hi = design_lowpass_fir(64, min(band[1] / self.frame_rate_hz, 0.49))
        return fir_filter(x, hi) - fir_filter(x, lo)

    def _cardiac_rate(self, cardiac: np.ndarray, resp_hz: float) -> float:
        """Beat rate of the BCG pulse train by lag-domain autocorrelation.

        The BCG line is weak and HRV-smeared, so a spectral peak is
        unreliable; the pulse train's *autocorrelation* still peaks at the
        beat period. Lags corresponding to respiration harmonics are
        masked, since breathing dominates head sway and its harmonics fall
        inside the cardiac band.
        """
        x = cardiac - np.mean(cardiac)
        ac = np.correlate(x, x, "full")[len(x) - 1 :]
        lags_s = np.arange(len(ac)) / self.frame_rate_hz
        usable = (lags_s >= 1.0 / self.CARDIAC_BAND[1]) & (
            lags_s <= 1.0 / self.CARDIAC_BAND[0]
        )
        if resp_hz > 0:
            k = 1
            while k * resp_hz <= self.CARDIAC_BAND[1] + 0.1:
                if k * resp_hz >= self.CARDIAC_BAND[0]:
                    usable &= np.abs(1.0 / np.maximum(lags_s, 1e-9) - k * resp_hz) > 0.05
                k += 1
        if not usable.any():
            usable = (lags_s >= 1.0 / self.CARDIAC_BAND[1]) & (
                lags_s <= 1.0 / self.CARDIAC_BAND[0]
            )
        lag = float(lags_s[usable][int(np.argmax(ac[usable]))])
        return 1.0 / lag

    def measure(
        self, frames: np.ndarray, blink_frames: np.ndarray | None = None
    ) -> VitalSigns:
        """Estimate vitals from a capture of at least ~20 s.

        Shorter captures cannot resolve the respiration line (a 0.2 Hz
        peak needs several cycles). ``blink_frames`` (slow-time indices of
        detected blink apexes, e.g. from the blink pipeline running on the
        same stream) markedly improves the heart-rate estimate: blink
        transients are broadband interference in the cardiac band and are
        excised by interpolation before rate estimation.
        """
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise ValueError(f"expected (n_frames, n_bins), got {frames.shape}")
        min_frames = int(20 * self.frame_rate_hz)
        if frames.shape[0] < min_frames:
            raise ValueError(
                f"need >= {min_frames} frames (~20 s) to resolve respiration, "
                f"got {frames.shape[0]}"
            )
        processed = self._pre.apply(frames)

        # Torso: the global variance maximum (what blink bin-selection
        # deliberately skips past).
        torso = select_eye_bin(processed, strategy="max_variance")
        torso_phase = phase_series(
            processed[:, torso.bin_index] - processed[:, torso.bin_index].mean()
        )
        resp_hz = dominant_frequency(
            self._band_limited(torso_phase, self.RESP_BAND),
            self.frame_rate_hz,
            fmin=self.RESP_BAND[0],
        )

        # Head: the nearest dynamic cluster (the blink pipeline's bin).
        head = select_eye_bin(processed)
        head_phase = phase_series(
            processed[:, head.bin_index] - processed[:, head.bin_index].mean()
        )
        if blink_frames is not None and len(blink_frames) > 0:
            half = int(0.5 * self.frame_rate_hz)
            mask = np.zeros(len(head_phase), dtype=bool)
            for k in np.asarray(blink_frames, dtype=int):
                mask[max(0, k - half) : k + half + 1] = True
            if mask.any() and not mask.all():
                idx = np.arange(len(head_phase))
                head_phase = head_phase.copy()
                head_phase[mask] = np.interp(idx[mask], idx[~mask], head_phase[~mask])
        cardiac = self._band_limited(head_phase, self.CARDIAC_BAND)
        heart_hz = self._cardiac_rate(cardiac, resp_hz)

        return VitalSigns(
            respiration_bpm=resp_hz * 60.0,
            heart_rate_bpm=heart_hz * 60.0,
            torso_bin=torso.bin_index,
            head_bin=head.bin_index,
        )

"""BlinkRadar's detection pipeline — the paper's contribution.

The layering mirrors Sec. IV of the paper:

- :mod:`repro.core.preprocess` — Sec. IV-B: cascading noise-reduction
  filter and background subtraction.
- :mod:`repro.core.iqspace` — Sec. IV-C: I/Q-domain observables (phase
  Δφ = −4π f₀ Δd / c and amplitude Δα).
- :mod:`repro.core.binselect` — Sec. IV-D: finding the eye's range bin by
  the variance of the 2-D I/Q trajectory (exploiting the persistent
  respiration/BCG disturbance).
- :mod:`repro.core.viewpos` — Sec. IV-E: optimal viewing position by Pratt
  arc fitting; the relative-distance signal r(k).
- :mod:`repro.core.levd` — Sec. IV-E: local extreme value detection with a
  5σ threshold.
- :mod:`repro.core.realtime` — Sec. IV-E: the streaming detector with
  2 s cold start, adaptive updates and restart on body movement.
- :mod:`repro.core.drowsy` — Sec. IV-F: blink-rate windows → awake/drowsy.
- :mod:`repro.core.analytics` — extension: blink durations, PERCLOS-style
  closure load, and the rate+duration drowsiness model.
- :mod:`repro.core.vitals` — extension: respiration and heart rate from
  the same frame stream.
- :mod:`repro.core.pipeline` — the :class:`~repro.core.pipeline.BlinkRadar`
  façade tying everything together.

The pipeline only ever sees complex frame matrices — it never imports the
simulator.
"""

from repro.core.analytics import (
    DualFeatureClassifier,
    PerclosClassifier,
    estimate_blink_durations,
    result_window_features,
    window_metrics,
)
from repro.core.binselect import BinSelection, select_eye_bin, variance_profile
from repro.core.drowsy import BlinkRateClassifier, DrowsyDetector
from repro.core.vitals import VitalSigns, VitalSignsMonitor
from repro.core.levd import BlinkDetection, LevdConfig, LocalExtremeValueDetector, detect_blinks
from repro.core.pipeline import BlinkRadar, BlinkRadarResult
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.core.realtime import RealTimeBlinkDetector, RealTimeConfig
from repro.core.viewpos import ViewingPositionTracker

__all__ = [
    "DualFeatureClassifier",
    "PerclosClassifier",
    "estimate_blink_durations",
    "result_window_features",
    "window_metrics",
    "VitalSigns",
    "VitalSignsMonitor",
    "BinSelection",
    "select_eye_bin",
    "variance_profile",
    "BlinkRateClassifier",
    "DrowsyDetector",
    "BlinkDetection",
    "LevdConfig",
    "LocalExtremeValueDetector",
    "detect_blinks",
    "BlinkRadar",
    "BlinkRadarResult",
    "Preprocessor",
    "PreprocessorConfig",
    "RealTimeBlinkDetector",
    "RealTimeConfig",
    "ViewingPositionTracker",
]

"""Fixed-capacity sliding windows backed by double-written ring buffers.

The streaming detector keeps several trailing windows (the rolling
preprocessed-frame history, the arc-fit sample buffer) that the seed
implementation stored as ``collections.deque`` objects and materialized
with ``np.stack``/``np.array`` on every use. :class:`SlidingBlock`
replaces those with a preallocated ring of twice the capacity in which
every row is written at ``i`` and ``i + capacity``: any trailing window
of up to ``capacity`` entries is then a *contiguous* slice of the
backing array, so reads are zero-copy views and steady-state operation
performs no Python-level allocations.

The values exposed are exactly the values the deque held — same dtype,
same chronological order, same C-contiguous layout ``np.stack`` would
have produced — so downstream numerics are bit-for-bit unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SlidingBlock"]


class SlidingBlock:
    """Sliding window of equally-shaped entries with zero-copy trailing views.

    Parameters
    ----------
    capacity:
        Maximum number of entries retained; older entries are overwritten.
    row_shape:
        Shape of one entry: ``()`` for scalars (e.g. complex I/Q samples)
        or ``(n_bins,)`` for frames. May be deferred to the first
        :meth:`push` by passing ``None``.
    dtype:
        Entry dtype; deferred alongside ``row_shape`` when ``None``.
    """

    __slots__ = ("capacity", "_buf", "_write", "_count")

    def __init__(
        self,
        capacity: int,
        row_shape: tuple[int, ...] | None = None,
        dtype: np.dtype | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: np.ndarray | None = None
        if row_shape is not None and dtype is not None:
            self._buf = np.empty((2 * capacity, *row_shape), dtype=dtype)
        self._write = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, row: np.ndarray | complex | float) -> None:
        """Append one entry, evicting the oldest at capacity."""
        buf = self._buf
        if buf is None:
            row = np.asarray(row)
            buf = np.empty((2 * self.capacity, *row.shape), dtype=row.dtype)
            self._buf = buf
        w = self._write
        buf[w] = row
        buf[w + self.capacity] = row
        self._write = w + 1 if w + 1 < self.capacity else 0
        if self._count < self.capacity:
            self._count += 1

    def last(self, n: int) -> np.ndarray:
        """Contiguous chronological view of the most recent ``n`` entries.

        The view aliases the ring storage: it is invalidated by the next
        :meth:`push`, so callers that keep it must copy.
        """
        if n > self._count:
            raise ValueError(f"requested {n} entries, only {self._count} held")
        if self._count < self.capacity:
            # No wrap has happened yet: entries live at [0, count).
            return self._buf[self._count - n : self._count]
        end = self._write + self.capacity
        return self._buf[end - n : end]

    def view(self) -> np.ndarray:
        """Contiguous chronological view of everything currently held."""
        return self.last(self._count)

    def clear(self) -> None:
        """Drop all entries (storage is retained for reuse)."""
        self._write = 0
        self._count = 0

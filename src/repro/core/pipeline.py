"""The :class:`BlinkRadar` façade — the system of Fig. 3 in one object.

Offline use::

    radar = BlinkRadar(frame_rate_hz=25.0)
    result = radar.detect(frames)           # (n_frames, n_bins) complex
    result.event_times_s                    # detected blinks
    result.blink_rate_per_min()             # rate over the whole capture

Streaming use::

    radar = BlinkRadar(frame_rate_hz=25.0)
    for frame in device:
        status = radar.process_frame(frame)
        if status.event:
            ...

Drowsiness::

    clf = radar.train_drowsiness(awake_frames_list, drowsy_frames_list)
    verdicts = radar.detect_drowsiness(frames, clf)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.drowsy import BlinkRateClassifier, DrowsyDetector, blink_rate_windows
from repro.core.levd import BlinkDetection
from repro.core.realtime import FrameStatus, RealTimeBlinkDetector, RealTimeConfig

if TYPE_CHECKING:
    from repro.core.analytics import DualFeatureClassifier

__all__ = ["BlinkRadar", "BlinkRadarResult"]


@dataclass(frozen=True)
class BlinkRadarResult:
    """Everything the offline detector produces for one capture.

    Attributes
    ----------
    events:
        Detected blinks in time order.
    relative_distance:
        The r(k) waveform (NaN during cold starts) — Fig. 11's trace.
    selected_bins:
        Selected eye bin per frame (−1 during cold starts).
    restart_times_s:
        Times at which body movement forced a full restart.
    frame_rate_hz:
        Slow-time frame rate of the capture.
    """

    events: list[BlinkDetection]
    relative_distance: np.ndarray = field(repr=False)
    selected_bins: np.ndarray = field(repr=False)
    restart_times_s: list[float]
    frame_rate_hz: float

    @property
    def n_frames(self) -> int:
        """Number of frames processed."""
        return len(self.relative_distance)

    @property
    def duration_s(self) -> float:
        """Capture duration."""
        return self.n_frames / self.frame_rate_hz

    @property
    def event_times_s(self) -> np.ndarray:
        """Detected blink apex times."""
        return np.array([e.time_s for e in self.events])

    def blink_rate_per_min(self) -> float:
        """Mean detected blink rate over the capture."""
        if self.duration_s == 0:
            return 0.0
        return 60.0 * len(self.events) / self.duration_s

    def rate_windows(self, window_s: float = 60.0) -> np.ndarray:
        """Blink rates over hopping windows (Sec. IV-F)."""
        return blink_rate_windows(self.event_times_s, self.duration_s, window_s=window_s)


class BlinkRadar:
    """Public API of the BlinkRadar system."""

    def __init__(self, frame_rate_hz: float = 25.0, config: RealTimeConfig | None = None) -> None:
        self.frame_rate_hz = frame_rate_hz
        self.config = config if config is not None else RealTimeConfig()
        self._detector: RealTimeBlinkDetector | None = None

    def _fresh_detector(self) -> RealTimeBlinkDetector:
        return RealTimeBlinkDetector(self.frame_rate_hz, self.config)

    # ---------------------------------------------------------------- offline
    def detect(self, frames: np.ndarray) -> BlinkRadarResult:
        """Run the full pipeline over a recorded capture.

        Implemented as one :meth:`RealTimeBlinkDetector.process_block`
        call over the whole capture — the streaming walk itself, with its
        per-frame kernels fused over the block — so offline and online
        behaviour cannot diverge.
        """
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise ValueError(f"expected (n_frames, n_bins), got {frames.shape}")
        detector = self._fresh_detector()
        statuses = detector.process_block(frames)
        detector.finish()
        r = np.empty(frames.shape[0])
        bins = np.empty(frames.shape[0], dtype=int)
        restarts: list[float] = []
        for k, status in enumerate(statuses):
            r[k] = status.relative_distance
            bins[k] = status.selected_bin
            if status.restarted:
                restarts.append(k / self.frame_rate_hz)
        return BlinkRadarResult(
            events=list(detector.events),
            relative_distance=r,
            selected_bins=bins,
            restart_times_s=restarts,
            frame_rate_hz=self.frame_rate_hz,
        )

    # --------------------------------------------------------------- streaming
    def process_frame(self, frame: np.ndarray) -> FrameStatus:
        """Streaming entry point; keeps one persistent detector."""
        if self._detector is None:
            self._detector = self._fresh_detector()
        return self._detector.process_frame(frame)

    def reset_stream(self) -> None:
        """Drop the persistent streaming detector."""
        self._detector = None

    @property
    def stream_events(self) -> list[BlinkDetection]:
        """Events emitted so far on the streaming path."""
        return [] if self._detector is None else list(self._detector.events)

    # --------------------------------------------------------------- drowsiness
    def train_drowsiness(
        self,
        awake_captures: list[np.ndarray],
        drowsy_captures: list[np.ndarray],
        window_s: float = 60.0,
        features: str = "rate+duration",
    ) -> DualFeatureClassifier | BlinkRateClassifier:
        """Train the per-user drowsiness model from calibration captures.

        Each capture is a (n_frames, n_bins) frame matrix recorded in a
        known state; its *detected* blink behaviour (not ground truth)
        feeds the classifier, exactly as a deployed system would calibrate.

        ``features`` selects the model:

        - ``"rate+duration"`` (default) — the two-feature Gaussian model of
          :class:`repro.core.analytics.DualFeatureClassifier`. Drowsy
          blinks are both more frequent *and* over twice as long (the
          paper's own Sec. II/IV-F rationale), and the duration feature
          carries most of the separation.
        - ``"rate"`` — the paper-literal blink-rate-only model
          (:class:`repro.core.drowsy.BlinkRateClassifier`); kept for the
          ablation benchmark.
        """
        from repro.core.analytics import DualFeatureClassifier, result_window_features

        if features == "rate":
            awake_rates = np.concatenate(
                [self.detect(c).rate_windows(window_s) for c in awake_captures]
            )
            drowsy_rates = np.concatenate(
                [self.detect(c).rate_windows(window_s) for c in drowsy_captures]
            )
            return BlinkRateClassifier().fit(awake_rates, drowsy_rates)
        if features != "rate+duration":
            raise ValueError(
                f"unknown feature set {features!r}; expected 'rate' or 'rate+duration'"
            )
        awake = np.vstack(
            [result_window_features(self.detect(c), window_s) for c in awake_captures]
        )
        drowsy = np.vstack(
            [result_window_features(self.detect(c), window_s) for c in drowsy_captures]
        )
        return DualFeatureClassifier().fit(awake, drowsy)

    def detect_drowsiness(
        self,
        frames: np.ndarray,
        classifier: DualFeatureClassifier | BlinkRateClassifier,
        window_s: float = 60.0,
    ) -> list[str]:
        """Per-window awake/drowsy verdicts for a capture.

        Accepts either classifier flavour from :meth:`train_drowsiness`.
        """
        from repro.core.analytics import DualFeatureClassifier, result_window_features

        result = self.detect(frames)
        if isinstance(classifier, DualFeatureClassifier):
            features = result_window_features(result, window_s)
            return [classifier.classify(rate, dur) for rate, dur in features]
        return DrowsyDetector(classifier, window_s=window_s).detect(
            result.events, result.duration_s
        )

"""Range-bin identification (paper Sec. IV-D).

Which fast-time bin holds the eye? The naive answer — the strongest peak —
fails: "due to the tiny reflection area, the magnitude of eye reflections
may be weaker than reflections from other surrounding objects such as
steering wheels and seats, even if the eye is closer to the sensing
device". And waiting for a blink is too slow (blinks are sparse). The
paper's insight is to exploit the *persistent* respiration/BCG disturbance:
the eye/face bin's I/Q trajectory arcs continuously even between blinks, so
its 2-D variance is high at all times.

Two refinements are needed to make this operational (and are documented as
such in DESIGN.md):

1. After background subtraction, *every* moving body part produces
   variance, and the torso (huge RCS, mm-scale breathing) dominates
   globally. The eye is, however, always the **nearest** dynamic reflector
   to a windshield-mounted radar — everything closer is static dashboard or
   steering wheel and is removed by background subtraction. So we take the
   nearest local variance *peak*, not the global maximum.
2. Peaks are screened against a robust noise floor (a low percentile of
   the profile) so the threshold adapts to the actual noise level, and the
   profile is lightly smoothed so envelope shoulders do not spawn spurious
   peaks.

The global-maximum and amplitude-peak alternatives are kept (``strategy``
parameter) because they are the paper's implicit baselines and feed the
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.iqspace import trajectory_variance
from repro.dsp.filters import moving_average
from repro.dsp.peaks import local_maxima

__all__ = ["BinSelection", "variance_profile", "find_clusters", "select_eye_bin"]


@dataclass(frozen=True)
class BinSelection:
    """Result of a bin-selection pass.

    Attributes
    ----------
    bin_index:
        The chosen fast-time bin.
    variance:
        The (smoothed) per-bin 2-D variance profile behind the decision.
    noise_floor:
        Robust floor used for peak screening.
    candidate_bins:
        Every dynamic peak that cleared the threshold, nearest first.
    """

    bin_index: int
    variance: np.ndarray = field(repr=False)
    noise_floor: float = 0.0
    candidate_bins: tuple[int, ...] = ()


def variance_profile(frames: np.ndarray, smooth_bins: int = 5) -> np.ndarray:
    """Per-bin 2-D I/Q variance over slow time, lightly smoothed in range."""
    frames = np.asarray(frames)
    if frames.ndim != 2:
        raise ValueError(f"expected (n_frames, n_bins), got {frames.shape}")
    if frames.shape[0] < 2:
        raise ValueError("need at least 2 frames to compute variance")
    profile = trajectory_variance(frames, axis=0)
    if smooth_bins > 1:
        profile = moving_average(profile, smooth_bins)
    return profile


def find_clusters(
    variance: np.ndarray, noise_floor: float, threshold_factor: float = 8.0
) -> list[tuple[int, int]]:
    """Contiguous bin ranges whose variance exceeds the floor by the factor.

    Diagnostic helper (used by tests and the range-map figures); selection
    itself works on local peaks.
    """
    if noise_floor < 0:
        raise ValueError(f"noise floor must be >= 0, got {noise_floor}")
    mask = variance > threshold_factor * max(noise_floor, 1e-300)
    clusters: list[tuple[int, int]] = []
    start = None
    for i, hot in enumerate(mask):
        if hot and start is None:
            start = i
        elif not hot and start is not None:
            clusters.append((start, i))
            start = None
    if start is not None:
        clusters.append((start, len(mask)))
    return clusters


def select_eye_bin(
    frames: np.ndarray,
    strategy: str = "nearest_peak",
    threshold_factor: float = 8.0,
    floor_percentile: float = 10.0,
    peak_min_distance: int = 12,
    relative_threshold: float = 5.0e-3,
) -> BinSelection:
    """Identify the eye's range bin from a window of preprocessed frames.

    Parameters
    ----------
    frames:
        (n_frames, n_bins) preprocessed (background-subtracted) window;
        the paper's cold start uses 50 frames = 2 s.
    strategy:
        - ``"nearest_peak"`` (the BlinkRadar method): nearest local
          variance peak that clears the noise floor;
        - ``"max_variance"``: global variance maximum (locks onto the
          torso — kept for ablation);
        - ``"max_amplitude"``: strongest mean-amplitude bin (the "naive
          approach" of Sec. IV-D — kept for ablation).
    threshold_factor:
        Peak screening threshold as a multiple of the noise floor.
    floor_percentile:
        Percentile of the variance profile taken as the noise floor.
    peak_min_distance:
        Minimum bin spacing between candidate peaks (suppresses ripples on
        a pulse envelope's shoulders).
    relative_threshold:
        Peaks must also reach this fraction of the global variance maximum,
        so faint chassis-flex ripples near the radar never outrank the
        physiological clusters however low the thermal floor is.
    """
    variance = variance_profile(frames)
    floor = float(np.percentile(variance, floor_percentile))

    if strategy == "max_amplitude":
        mean_amp = np.mean(np.abs(frames), axis=0)
        return BinSelection(
            bin_index=int(np.argmax(mean_amp)), variance=variance, noise_floor=floor
        )
    if strategy == "max_variance":
        return BinSelection(
            bin_index=int(np.argmax(variance)), variance=variance, noise_floor=floor
        )
    if strategy != "nearest_peak":
        raise ValueError(
            f"unknown strategy {strategy!r}; expected nearest_peak, "
            "max_variance or max_amplitude"
        )

    peaks = local_maxima(variance, min_distance=peak_min_distance)
    cut = max(threshold_factor * max(floor, 1e-300), relative_threshold * float(variance.max()))
    candidates = [int(p) for p in peaks if variance[p] > cut]
    if not candidates:
        # Nothing clears the threshold (e.g. an empty seat): fall back to
        # the global variance maximum so the caller always gets a bin.
        return BinSelection(
            bin_index=int(np.argmax(variance)), variance=variance, noise_floor=floor
        )
    return BinSelection(
        bin_index=candidates[0],
        variance=variance,
        noise_floor=floor,
        candidate_bins=tuple(candidates),
    )

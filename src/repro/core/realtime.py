"""Real-time eye-blink detection (paper Sec. IV-E).

The streaming state machine:

- **Cold start** — "we accumulate 50 chirps with the default chirp period
  of 40 ms, which takes 2 s in total ... a one-time effort". The buffer
  feeds the first bin selection and the first arc fit.
- **Steady state** — every frame (40 ms cadence): preprocess, take the
  selected bin's complex sample, update the relative distance r(k) to the
  viewing position, run LEVD.
- **Adaptive update** — the viewing position refits continuously
  (lightweight Pratt fit); the bin selection refreshes every few seconds
  because "the optimal observe position changes during long-term detection
  due to slight body movement of the target".
- **Restart** — "BlinkRadar restarts the whole eye-blink detection process
  when a significant body movement happens": a frame-to-frame profile
  change many times its running median triggers a full reset (and a new
  2 s cold start, during which blinks are necessarily missed — the main
  contributor to the paper's ~4.9 % miss rate in Fig. 15(a)).

There is exactly one execution path, :meth:`RealTimeBlinkDetector.process_block`:
the restart-independent per-frame work (the fast-time cascade, the raw
frame-to-frame movement deltas) is computed for the whole block as fused
numpy kernels up front, and the stateful walk — restarts, bin selection,
arc tracking, LEVD — consumes those precomputed rows one frame at a time.
:meth:`process_frame` is the T=1 degenerate case of the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.binselect import BinSelection, select_eye_bin
from repro.core.levd import BlinkDetection, LevdConfig, LocalExtremeValueDetector
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.core.ringbuf import SlidingBlock
from repro.core.viewpos import ViewingPositionTracker
from repro.dsp.stats import SortedWindow

__all__ = ["RealTimeConfig", "FrameStatus", "RealTimeBlinkDetector"]


@dataclass(frozen=True)
class RealTimeConfig:
    """Parameters of the streaming detector (paper values as defaults).

    Attributes
    ----------
    cold_start_frames:
        Frames accumulated before the first output (paper: 50 = 2 s).
    viewpos_window / viewpos_update_interval:
        Arc-fit window and refit cadence (Sec. IV-E trade-off).
    viewpos_method:
        Circle-fit algorithm; ``"pratt"`` per the paper.
    bin_reselect_interval:
        Frames between adaptive bin re-selections.
    bin_reselect_window:
        Frames of history used for each re-selection. Must span at least
        one full breathing cycle (~7 s at 25 FPS): the eye bin's variance
        comes from respiration-coupled head sway and vanishes briefly at
        every respiratory pause.
    bin_change_tolerance:
        A reselected bin within this many bins of the current one is
        treated as the same reflector (no viewing-position rebuild).
    bin_stickiness:
        A re-selection only moves to a different reflector when the new
        bin's variance exceeds the current bin's by this factor, keeping
        the tracker from bouncing between comparable clusters.
    restart_factor:
        Restart when the frame-to-frame profile change exceeds this
        multiple of its running median (catches violent movements).
    restart_metric_window:
        Trailing frames over which that running median is taken.
    restart_radius_ratio / restart_persist_frames:
        Restart when r(k) deviates from the fitted arc radius by more than
        ``restart_radius_ratio`` (fractional) for ``restart_persist_frames``
        consecutive frames. A posture shift moves the body's static phasor
        off the old viewing position, parking r away from the arc on either
        side; blinks deviate for at most ~0.8 s and tangential motion not
        at all, so a deviation persisting longer than any blink is a
        geometry break.
    levd:
        LEVD (threshold, merge, refractory) configuration.
    preprocessor:
        Preprocessing configuration.
    bin_strategy:
        Bin-selection strategy (``"nearest_peak"`` = BlinkRadar; the
        alternatives exist for ablation).
    """

    cold_start_frames: int = 50
    viewpos_window: int = 150
    viewpos_min_samples: int = 50
    viewpos_update_interval: int = 25
    viewpos_method: str = "pratt"
    bin_reselect_interval: int = 125
    bin_reselect_window: int = 175
    bin_change_tolerance: int = 4
    bin_stickiness: float = 2.0
    restart_factor: float = 8.0
    restart_metric_window: int = 200
    restart_radius_ratio: float = 0.5
    restart_persist_frames: int = 30
    levd: LevdConfig = field(default_factory=LevdConfig)
    #: The detection path keeps the static vector: the arc centre *is* the
    #: static point, so the viewing position is well-conditioned. (Variance
    #: -based bin selection is invariant to statics, and background
    #: subtraction remains available for the range-map diagnostics of
    #: Fig. 8 — but subtracting it before arc fitting collapses the
    #: trajectory into a blob around the origin and destabilises r(k).)
    preprocessor: PreprocessorConfig = field(
        default_factory=lambda: PreprocessorConfig(subtract_background=False)
    )
    bin_strategy: str = "nearest_peak"

    def __post_init__(self) -> None:
        if self.cold_start_frames < self.viewpos_min_samples:
            raise ValueError(
                "cold_start_frames must be >= viewpos_min_samples so the first "
                "arc fit is available when the cold start ends"
            )
        if self.restart_factor <= 1:
            raise ValueError("restart_factor must be > 1")


@dataclass(frozen=True)
class FrameStatus:
    """Per-frame detector output.

    Attributes
    ----------
    frame_index:
        Global frame counter (never resets, also counts across restarts).
    relative_distance:
        r(k), or NaN during a cold start.
    selected_bin:
        Current eye bin (−1 during a cold start).
    restarted:
        True on the frame that triggered a restart.
    event:
        A completed blink detection, if one was emitted on this frame.
    """

    frame_index: int
    # r(k) is the paper's name for a dimensionless quantity (normalised
    # I/Q displacement), so it carries no unit suffix by design.
    relative_distance: float  # reprolint: disable=unit-suffix
    selected_bin: int
    restarted: bool
    event: BlinkDetection | None


class RealTimeBlinkDetector:
    """Streaming BlinkRadar detector: frames in, blink events out."""

    def __init__(self, frame_rate_hz: float, config: RealTimeConfig | None = None) -> None:
        if frame_rate_hz <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate_hz}")
        self.frame_rate_hz = frame_rate_hz
        self.config = config if config is not None else RealTimeConfig()
        self.preprocessor = Preprocessor(self.config.preprocessor)
        self.levd = LocalExtremeValueDetector(frame_rate_hz, self.config.levd)
        self.viewpos = ViewingPositionTracker(
            window=self.config.viewpos_window,
            update_interval=self.config.viewpos_update_interval,
            method=self.config.viewpos_method,
            min_samples=self.config.viewpos_min_samples,
        )
        self._frame_index = -1
        self._selected_bin: int | None = None
        self._last_selection: BinSelection | None = None
        # One ring serves every trailing-frame window: the cold-start
        # accumulator is its first `cold_start_frames` rows after a
        # (re)start, the re-selection window its last `bin_reselect_window`
        # rows, the viewing-position rebuild its last `viewpos_window`.
        self._rolling = SlidingBlock(
            max(
                self.config.viewpos_window,
                self.config.bin_reselect_window,
                self.config.cold_start_frames,
            )
        )
        self._cold_count = 0
        self._since_reselect = 0
        self._prev_raw: np.ndarray | None = None
        self._move_metric = SortedWindow(maxlen=self.config.restart_metric_window)
        self._off_arc_run = 0
        self.events: list[BlinkDetection] = []
        self.restart_frames: list[int] = []

    @property
    def selected_bin(self) -> int | None:
        """Currently selected eye bin (None during cold start)."""
        return self._selected_bin

    @property
    def last_selection(self) -> BinSelection | None:
        """Diagnostics of the most recent bin selection."""
        return self._last_selection

    def _restart(self) -> None:
        """Full pipeline reset; a new cold start begins."""
        self.preprocessor.reset()
        self.levd.reset()
        self.viewpos.reset()
        self._selected_bin = None
        self._cold_count = 0
        self._rolling.clear()
        self._since_reselect = 0
        self._off_arc_run = 0
        self.restart_frames.append(self._frame_index)

    def _movement_spike(self, delta: float | None) -> bool:
        """Detect a significant body movement from a raw frame-change delta.

        ``delta`` is the precomputed L1 profile change against the
        previous frame (None on the very first frame of the stream).
        """
        if delta is None:
            return False
        metric = self._move_metric
        spike = False
        if len(metric) >= 25:
            median = metric.median()
            if median > 0 and delta > self.config.restart_factor * median:
                spike = True
        # A spike is excluded from the running median so one posture shift
        # does not desensitise the detector to the next one.
        if not spike:
            metric.push(delta)
        return spike

    def _select_bin(self, window_frames: np.ndarray) -> None:
        selection = select_eye_bin(window_frames, strategy=self.config.bin_strategy)
        self._last_selection = selection
        previous = self._selected_bin
        if (
            previous is not None
            and abs(selection.bin_index - previous) <= self.config.bin_change_tolerance
        ):
            return  # same reflector; keep the established viewing position
        if previous is not None and 0 <= previous < len(selection.variance):
            if (
                selection.variance[selection.bin_index]
                < self.config.bin_stickiness * selection.variance[previous]
            ):
                return  # not convincingly better than the current bin
        self._selected_bin = selection.bin_index
        # Rebuild the viewing position from the rolled-up history of the
        # new bin so r(k) is immediately meaningful.
        self.viewpos.reset()
        for frame in window_frames[-self.config.viewpos_window :]:
            self.viewpos.push(complex(frame[self._selected_bin]))

    def process_frame(self, raw_frame: np.ndarray) -> FrameStatus:
        """Feed one raw radar frame; returns the per-frame status."""
        raw_frame = np.asarray(raw_frame)
        if raw_frame.ndim != 1:
            raise ValueError(f"expected one frame (1-D), got shape {raw_frame.shape}")
        return self.process_block(raw_frame[None, :])[0]

    def process_block(
        self, raw_block: np.ndarray, denoised: np.ndarray | None = None
    ) -> list[FrameStatus]:
        """Feed a (n_frames, n_bins) block; returns one status per frame.

        Bit-identical to feeding the frames one at a time — the stateful
        walk below is the only place detector state changes — but the two
        restart-independent per-frame kernels run fused over the block
        first: the fast-time cascade (stateless per frame, so mid-block
        restarts cannot invalidate it) and the raw movement deltas
        (neither the previous-frame pointer nor the metric window is
        cleared by a restart).

        ``denoised`` optionally injects precomputed cascade output for the
        block (the batched pipeline fuses that kernel across sessions).
        """
        raw_block = np.asarray(raw_block)
        if raw_block.ndim != 2:
            raise ValueError(f"expected (n_frames, n_bins), got shape {raw_block.shape}")
        n_frames = raw_block.shape[0]
        if n_frames == 0:
            return []
        if denoised is None:
            denoised = self.preprocessor.denoise_block(raw_block)

        deltas = np.empty(n_frames)
        if n_frames > 1:
            deltas[1:] = np.abs(raw_block[1:] - raw_block[:-1]).sum(axis=1)
        first_is_ever = self._prev_raw is None
        if not first_is_ever:
            deltas[0] = np.sum(np.abs(raw_block[0] - self._prev_raw))
        self._prev_raw = raw_block[n_frames - 1]

        statuses = []
        for t in range(n_frames):
            delta = None if t == 0 and first_is_ever else float(deltas[t])
            statuses.append(self._step(denoised[t], delta))
        return statuses

    def _step(self, denoised_row: np.ndarray, delta: float | None) -> FrameStatus:
        """Advance the stateful walk by one frame."""
        self._frame_index += 1

        restarted = self._movement_spike(delta)
        if restarted and self._selected_bin is not None:
            self._restart()

        processed = self.preprocessor.push_denoised(denoised_row)
        self._rolling.push(processed)

        if self._selected_bin is None:
            # Cold start: accumulate, then select and initialise.
            self._cold_count += 1
            if self._cold_count >= self.config.cold_start_frames:
                window = self._rolling.last(self._cold_count)
                self._cold_count = 0
                self._select_bin(window)
                # Seed LEVD's sigma with the cold-start r(k) history.
                seeds = [
                    float(abs(complex(frame[self._selected_bin]) - self.viewpos.center))
                    for frame in window[-self.config.viewpos_window :]
                ]
                self.levd.seed_sigma(np.array(seeds))
            return FrameStatus(
                frame_index=self._frame_index,
                relative_distance=float("nan"),
                selected_bin=-1 if self._selected_bin is None else self._selected_bin,
                restarted=restarted,
                event=None,
            )

        # Steady state.
        self._since_reselect += 1
        if (
            self._since_reselect >= self.config.bin_reselect_interval
            and len(self._rolling) >= self.config.bin_reselect_window
        ):
            self._since_reselect = 0
            self._select_bin(self._rolling.last(self.config.bin_reselect_window))

        sample = complex(processed[self._selected_bin])
        # Every sample enters the fit buffer: the tracker's dominant-ring
        # fit separates blink samples from the quiet arc internally, and
        # upstream gating keyed on the current fit or the LEVD state forms
        # feedback loops that poison the buffer in exactly the sessions
        # that need help (evaluated and rejected — see DESIGN.md Sec. 6).
        r = self.viewpos.push(sample)
        if r is not None and self.viewpos.fit.radius > 0:
            radius = self.viewpos.fit.radius
            if abs(r - radius) > self.config.restart_radius_ratio * radius:
                self._off_arc_run += 1
            else:
                self._off_arc_run = 0
            if self._off_arc_run >= self.config.restart_persist_frames:
                # Body moved: the whole trajectory sits far outside the
                # old arc. Restart the pipeline (new 2 s cold start), as
                # the paper does on significant body movement.
                self._restart()
                return FrameStatus(
                    frame_index=self._frame_index,
                    relative_distance=float("nan"),
                    selected_bin=-1,
                    restarted=True,
                    event=None,
                )
        event = None
        if r is not None:
            if self.viewpos.refitted:
                self.levd.mark_discontinuity()
            local = self.levd.push(r)
            if local is not None:
                # LEVD indexes from its own start; re-anchor to the global
                # frame counter.
                offset = self._frame_index - self.levd.index
                event = BlinkDetection(
                    frame_index=local.frame_index + offset,
                    time_s=(local.frame_index + offset) / self.frame_rate_hz,
                    prominence=local.prominence,
                )
                self.events.append(event)
        return FrameStatus(
            frame_index=self._frame_index,
            relative_distance=float("nan") if r is None else r,
            selected_bin=self._selected_bin,
            restarted=restarted,
            event=event,
        )

    def finish(self) -> BlinkDetection | None:
        """Flush a pending LEVD event at end of stream."""
        local = self.levd.finish()
        if local is None:
            return None
        offset = self._frame_index - self.levd.index
        event = BlinkDetection(
            frame_index=local.frame_index + offset,
            time_s=(local.frame_index + offset) / self.frame_rate_hz,
            prominence=local.prominence,
        )
        self.events.append(event)
        return event

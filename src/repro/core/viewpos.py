"""Optimal viewing position (paper Sec. IV-E).

Between blinks, the eye bin's I/Q trajectory is an arc: BCG and
respiration-coupled head motion rotate the dynamic vector at near-constant
amplitude. The centre of that arc is the *optimal viewing position* — the
point from which a blink (a radial reflectivity change) shows up as a pure
change of distance while head motion (tangential) shows up not at all.

The paper fits the arc with the Pratt method over an accumulation window
(50 chirps = 2 s cold start) and "continuously tracks the relative distance
from the viewing position to the newly collected signal samples";
:class:`ViewingPositionTracker` is that component, with the adaptive
refresh policy of Sec. IV-E ("the viewing position is updated as soon as
enough samples are accumulated").
"""

from __future__ import annotations

import numpy as np

from repro.core.ringbuf import SlidingBlock
from repro.dsp.circlefit import CircleFit, fit_circle_dominant

__all__ = ["ViewingPositionTracker"]

_METHODS = ("pratt", "kasa", "taubin")


class ViewingPositionTracker:
    """Track the arc centre of one bin's I/Q trajectory over slow time.

    Parameters
    ----------
    window:
        Number of trailing samples an arc fit may use once available. 150
        frames (6 s) spans a full breathing cycle, so the arc subtends its
        full angle and the centre's radial error — which would otherwise
        leak respiration into r(k) — stays small.
    update_interval:
        Refit cadence in samples. 1 refits on every frame; larger values
        trade accuracy for compute, the balance Sec. IV-E discusses.
    method:
        ``"pratt"`` (the paper's choice), ``"kasa"`` or ``"taubin"``.
    blend:
        Exponential blending factor for refits (avoids step jumps in r(k)).
    min_samples:
        The first fit happens as soon as this many samples exist — the
        paper's 50-chirp (2 s) cold start; the window then keeps growing
        to ``window`` for better-conditioned refits.
    """

    def __init__(
        self,
        window: int = 150,
        update_interval: int = 25,
        method: str = "pratt",
        blend: float = 0.5,
        min_samples: int = 50,
    ) -> None:
        if window < 3:
            raise ValueError(f"window must be >= 3 for a circle fit, got {window}")
        if not 3 <= min_samples <= window:
            raise ValueError(f"min_samples must be in [3, window], got {min_samples}")
        if update_interval < 1:
            raise ValueError(f"update_interval must be >= 1, got {update_interval}")
        if method not in _METHODS:
            raise ValueError(f"unknown fit method {method!r}; expected one of {sorted(_METHODS)}")
        if not 0.0 < blend <= 1.0:
            raise ValueError(f"blend must be in (0, 1], got {blend}")
        self.window = window
        self.min_samples = min_samples
        self.update_interval = update_interval
        self.method = method
        self.blend = blend
        # Dominant-ring fit: the samples live on two concentric arcs
        # (eyes open / closed) plus transitions, and a plain algebraic fit
        # returns a badly biased compromise circle once a drowsy driver
        # spends ~40 % of frames mid-blink. fit_circle_dominant multi-
        # starts candidate centres, scores them by ring concentration and
        # converges onto the majority (open-eye) ring, whose centre is the
        # static point both rings share.
        self._fit_fn = lambda pts: fit_circle_dominant(pts, method=method)
        self._buffer = SlidingBlock(window, row_shape=(), dtype=np.dtype(complex))
        self._fit: CircleFit | None = None
        self._since_fit = 0
        self._refitted = False

    @property
    def fit(self) -> CircleFit | None:
        """Most recent arc fit (None before the buffer first fills)."""
        return self._fit

    @property
    def center(self) -> complex | None:
        """Current viewing position (arc centre), if available."""
        return self._fit.center if self._fit is not None else None

    @property
    def ready(self) -> bool:
        """True once a viewing position exists."""
        return self._fit is not None

    @property
    def refitted(self) -> bool:
        """True when the most recent :meth:`push` updated the centre.

        The real-time detector uses this to tell LEVD that r(k) has a
        measurement discontinuity at this sample.
        """
        return self._refitted

    def reset(self) -> None:
        """Drop all state (detector restart)."""
        self._buffer.clear()
        self._fit = None
        self._since_fit = 0
        self._refitted = False

    def push(self, sample: complex, exclude_from_fit: bool = False) -> float | None:
        """Feed one complex sample; return the relative distance r(k).

        Returns None during the cold start (buffer not yet filled to
        ``min_samples``). The viewing position is (re)fitted whenever
        enough samples exist and ``update_interval`` samples have passed
        since the last fit.

        ``exclude_from_fit`` keeps the sample out of the fit buffer while
        still measuring its relative distance — the real-time detector
        flags radial outliers (blink samples) this way so that a drowsy
        driver's blink-heavy signal cannot bias the arc fit off the quiet
        arc ("arc fitting" is meaningful only over the blink-free motion).
        """
        if not exclude_from_fit:
            self._buffer.push(complex(sample))
        self._since_fit += 1
        self._refitted = False
        if len(self._buffer) >= self.min_samples and (
            self._fit is None or self._since_fit >= self.update_interval
        ):
            self._refitted = True
            new_fit = self._fit_fn(np.array(self._buffer.view()))
            if self._fit is None:
                self._fit = new_fit
            else:
                # Exponential blending: refits track slow drift without the
                # step jumps in r(k) that hard re-centring would inject
                # (each jump would read as a fake extremum pair to LEVD).
                center = (1.0 - self.blend) * self._fit.center + self.blend * new_fit.center
                radius = (1.0 - self.blend) * self._fit.radius + self.blend * new_fit.radius
                self._fit = CircleFit(center=center, radius=radius, rmse=new_fit.rmse)
            self._since_fit = 0
        if self._fit is None:
            return None
        return float(abs(complex(sample) - self._fit.center))

    def relative_distance(self, samples: np.ndarray) -> np.ndarray:
        """Batch r(k) for ``samples`` against the *current* centre."""
        if self._fit is None:
            raise RuntimeError("no viewing position yet; push samples first")
        return np.abs(np.asarray(samples) - self._fit.center)

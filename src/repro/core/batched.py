"""Vectorized batched pipeline kernels (multi-session execution).

The per-frame hot path of :class:`repro.core.realtime.RealTimeBlinkDetector`
splits into two kinds of work:

- **restart-independent kernels** — the fast-time cascading filter and the
  raw movement deltas. These depend only on the raw frames, never on
  detector state, so they vectorize perfectly: over a whole block, and —
  this module's contribution — over *many sessions at once*.
- **the stateful walk** — restarts, bin selection, arc tracking, LEVD.
  Inherently sequential per session, but cheap once the kernels above are
  hoisted out of it.

:class:`BatchedPipeline` fuses the cascade across S sessions: the frames of
every session's block are laid out as one ``(ΣTᵢ, n_bins)`` row matrix and
filtered with exactly two convolution launches (one per cascade stage),
then the per-session walks consume their slices. Because the fused row
kernel (:func:`repro.dsp.filters.fir_filter_rows`) is bit-for-bit equal to
filtering each row alone, batching S sessions — including the S=1
degenerate case — produces *exactly* the outputs of running each session's
detector by itself; the golden-trace suite asserts that equality.

Ragged blocks (sessions advancing by different frame counts, including
zero) are first-class: pass a list of per-session blocks.
"""

from __future__ import annotations

import numpy as np

from repro.core.levd import BlinkDetection
from repro.core.realtime import FrameStatus, RealTimeBlinkDetector, RealTimeConfig

__all__ = ["BatchedPipeline"]

#: Element budget for one fused row-matrix launch. Fusing *all* sessions
#: into a single (ΣTᵢ, n_bins) concatenation stops paying off once the
#: concatenated input plus the denoised output outgrow the last-level
#: cache: at S=256 the scratch reached hundreds of MB and fps-per-core
#: dropped ~45% versus S=64 (BENCH_pipeline.json), purely from memory
#: traffic — the walks consumed stone-cold slices. Grouping sessions so
#: each launch stays within this budget keeps the kernel→walk handoff
#: cache-warm; results are bit-identical because the row kernel treats
#: every row independently. 2^21 complex128 elements ≈ 32 MB in, 32 MB
#: out — measured best on the reference host (2^20 and 2^22 both lose
#: ~10%; the full concat at S=256 loses ~45%).
_GROUP_ELEMS = 1 << 21


class BatchedPipeline:
    """Run S blink-detection sessions with shared, fused pipeline kernels.

    Parameters
    ----------
    frame_rate_hz:
        Slow-time frame rate, shared by every session (sessions at
        different rates batch their stage-1 kernels just as well, but the
        facade keeps one rate for simplicity — split instances otherwise).
    n_sessions:
        Number of independent sessions (S). 1 is the degenerate case and
        is exactly the single-session detector.
    config:
        Detector configuration applied to every session.
    """

    def __init__(
        self,
        frame_rate_hz: float,
        n_sessions: int = 1,
        config: RealTimeConfig | None = None,
    ) -> None:
        if n_sessions < 1:
            raise ValueError(f"n_sessions must be >= 1, got {n_sessions}")
        self.frame_rate_hz = frame_rate_hz
        self.config = config if config is not None else RealTimeConfig()
        self.detectors = [
            RealTimeBlinkDetector(frame_rate_hz, self.config) for _ in range(n_sessions)
        ]

    @property
    def n_sessions(self) -> int:
        """Number of sessions driven by this pipeline."""
        return len(self.detectors)

    def process_block(
        self, blocks: np.ndarray | list[np.ndarray]
    ) -> list[list[FrameStatus]]:
        """Advance every session by its block of frames.

        ``blocks`` is either an ``(S, T, n_bins)`` array (every session
        advances by the same T frames) or a list of S ``(Tᵢ, n_bins)``
        blocks with independent lengths (``Tᵢ = 0`` allowed). Returns one
        status list per session, exactly what each session's
        ``detector.process_block`` would have returned alone.
        """
        blocks = self._normalize(blocks)
        # Stage 1, fused across sessions: one row matrix, two convolution
        # launches, regardless of S. Each session's preprocessor would
        # produce these same rows (the cascade is stateless per frame and
        # identical across equal configs); injecting them skips S separate
        # kernel launches.
        lengths = [b.shape[0] for b in blocks]
        nonempty = [b for b in blocks if b.shape[0]]
        outputs: list[list[FrameStatus]] = [[] for _ in blocks]
        if not nonempty:
            return outputs
        geometries = {(b.shape[1], b.dtype) for b in nonempty}
        if len(geometries) == 1:
            # Group sessions so each fused launch stays cache-sized (see
            # _GROUP_ELEMS): a group is concatenated, denoised with one
            # kernel launch, and its walks run while those rows are warm.
            n_bins = nonempty[0].shape[1]
            max_rows = max(1, _GROUP_ELEMS // max(1, n_bins))
            group: list[int] = []
            group_rows = 0

            def _run_group(indices: list[int]) -> None:
                if len(indices) == 1:
                    i = indices[0]
                    outputs[i] = self.detectors[i].process_block(blocks[i])
                    return
                rows = np.concatenate([blocks[i] for i in indices], axis=0)
                denoised_all = self.detectors[indices[0]].preprocessor.denoise_block(rows)
                offset = 0
                for i in indices:
                    denoised = denoised_all[offset : offset + lengths[i]]
                    offset += lengths[i]
                    outputs[i] = self.detectors[i].process_block(
                        blocks[i], denoised=denoised
                    )

            for i, block in enumerate(blocks):
                if not lengths[i]:
                    continue
                if group and group_rows + lengths[i] > max_rows:
                    _run_group(group)
                    group = []
                    group_rows = 0
                group.append(i)
                group_rows += lengths[i]
            if group:
                _run_group(group)
        else:
            # Mixed bin counts or dtypes cannot share one row matrix (the
            # concatenation would promote dtypes and change result types);
            # fall back to per-session kernels (still fused per block).
            for i, block in enumerate(blocks):
                if lengths[i]:
                    outputs[i] = self.detectors[i].process_block(block)
        return outputs

    def finish(self) -> list[BlinkDetection | None]:
        """Flush every session's pending LEVD event at end of stream."""
        return [det.finish() for det in self.detectors]

    @property
    def events(self) -> list[list[BlinkDetection]]:
        """Per-session events emitted so far."""
        return [list(det.events) for det in self.detectors]

    def _normalize(self, blocks: np.ndarray | list[np.ndarray]) -> list[np.ndarray]:
        if isinstance(blocks, np.ndarray):
            if blocks.ndim != 3:
                raise ValueError(
                    f"expected (n_sessions, n_frames, n_bins), got shape {blocks.shape}"
                )
            if blocks.shape[0] != len(self.detectors):
                raise ValueError(
                    f"got {blocks.shape[0]} blocks for {len(self.detectors)} sessions"
                )
            return [blocks[i] for i in range(blocks.shape[0])]
        if len(blocks) != len(self.detectors):
            raise ValueError(f"got {len(blocks)} blocks for {len(self.detectors)} sessions")
        out = []
        for block in blocks:
            block = np.asarray(block)
            if block.ndim != 2:
                raise ValueError(f"each block must be (n_frames, n_bins), got {block.shape}")
            out.append(block)
        return out

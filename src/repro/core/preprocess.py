"""Signal preprocessing (paper Sec. IV-B).

Two stages, exactly as the paper orders them:

1. **Noise reduction** — "a cascading filter comprised of a low-pass Finite
   Impulse Response (FIR) filter and a smoothing filter ... The order of
   the designed FIR filter is 26, and Hamming window is used. The smooth
   filter with a window size of 50 points" (Sec. IV-B-1). The cascade runs
   along *fast time* (the per-frame range profile; Fig. 7's axis is ns).
   Because the pulse envelope is wider than the smoothing window, this
   coherently combines the echo across neighbouring bins and suppresses
   thermal noise without losing the per-path baseband phase (which is
   constant across the envelope).
2. **Background subtraction** — remove the static reflectors (seats,
   steering wheel) whose "energy does not change with time" by tracking
   each bin's static component with a loopback filter and subtracting the
   previous estimate (Sec. IV-B-2, Fig. 8).

A light slow-time smoother (3 frames) is applied between the stages: at
25 FPS it only removes above-4 Hz hash, far faster than any blink edge.

There is exactly one implementation, the block path
(:meth:`Preprocessor.push_block`): the fast-time cascade runs as fused
row convolutions over the whole block and the causal slow-time smoother
as shifted row adds. The per-frame streaming call (:meth:`Preprocessor.push`)
and the offline call (:meth:`Preprocessor.apply`) are thin wrappers over
it, so streaming and offline behaviour are bit-for-bit identical by
construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import CascadingFilter, LoopbackFilter

__all__ = ["PreprocessorConfig", "Preprocessor"]


@dataclass(frozen=True)
class PreprocessorConfig:
    """Knobs of the preprocessing stage (defaults from the paper).

    Attributes
    ----------
    fir_order / fir_cutoff / smooth_window:
        The cascading fast-time filter: order-26 Hamming FIR plus a
        smoothing window. The paper says "window size of 50 points"; the
        physically meaningful width is *one range-resolution cell* (the
        smoother coherently combines the pulse envelope without smearing
        distinct reflectors together), which at this simulator's 6.4 mm
        bin spacing and 10.7 cm resolution is ~16 bins. A 50-bin window
        (32 cm) would flatten the variance profile and let bin selection
        land on an envelope shoulder, where motion leaks into the
        amplitude observable.
    slow_time_window:
        Light slow-time moving average (frames). 3 at 25 FPS keeps every
        blink edge.
    clutter_alpha:
        Loopback-filter memory for background subtraction. 0.995 at 25 FPS
        is a ~8 s time constant: static reflectors vanish, respiration/BCG
        disturbances (needed by bin selection) survive.
    subtract_background:
        Background subtraction can be disabled for ablation.
    """

    fir_order: int = 26
    fir_cutoff: float = 0.1
    smooth_window: int = 16
    slow_time_window: int = 3
    clutter_alpha: float = 0.995
    subtract_background: bool = True

    def __post_init__(self) -> None:
        if self.slow_time_window < 1:
            raise ValueError("slow_time_window must be >= 1")


class Preprocessor:
    """Stateful preprocessing front-end (fast-time cascade + clutter removal)."""

    def __init__(self, config: PreprocessorConfig | None = None) -> None:
        self.config = config if config is not None else PreprocessorConfig()
        self._cascade = CascadingFilter(
            fir_order=self.config.fir_order,
            cutoff=self.config.fir_cutoff,
            smooth_window=self.config.smooth_window,
        )
        self._loopback = LoopbackFilter(alpha=self.config.clutter_alpha)
        self._slow_buffer: deque[np.ndarray] = deque(maxlen=self.config.slow_time_window)

    def reset(self) -> None:
        """Forget all state (used when the detector restarts)."""
        self._loopback.reset()
        self._slow_buffer.clear()

    @property
    def background(self) -> np.ndarray | None:
        """Current static-clutter estimate (None before the first frame)."""
        return self._loopback.background

    def denoise_frame(self, frame: np.ndarray) -> np.ndarray:
        """Fast-time cascading filter only (stage 1, stateless)."""
        frame = np.asarray(frame)
        if frame.ndim != 1:
            raise ValueError(f"denoise_frame expects one frame, got shape {frame.shape}")
        return self._cascade.apply(frame, axis=-1)

    def denoise_block(self, frames: np.ndarray) -> np.ndarray:
        """Fast-time cascade over a (n_frames, n_bins) block (stateless).

        Each row is filtered independently; the whole block costs two
        fused convolutions regardless of how many frames it holds.

        Shape:
            frames: (N, R)
            return: (N, R)
        """
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise ValueError(f"denoise_block expects (n_frames, n_bins), got {frames.shape}")
        return self._cascade.apply(frames, axis=1)

    def push_denoised(self, denoised: np.ndarray) -> np.ndarray:
        """Finish :meth:`push` for one row already through the cascade.

        The streaming detector precomputes the fast-time cascade for a
        whole block (restarts never touch it — it is stateless per frame)
        and feeds the rows through here one at a time, so the stateful
        slow-time window can still be cut by mid-block restarts.
        """
        self._slow_buffer.append(denoised)
        buffer = self._slow_buffer
        # Sequential oldest-first accumulation: the exact evaluation order
        # of np.mean(np.stack(buffer), axis=0), without the stack.
        run: np.ndarray | None = None
        for row in buffer:
            run = row if run is None else run + row
        smoothed = run / float(len(buffer))
        if not self.config.subtract_background:
            return smoothed
        return self._loopback.push(smoothed)

    def push(self, frame: np.ndarray) -> np.ndarray:
        """Streaming path: preprocess one frame.

        Order: fast-time cascade → causal slow-time average over the last
        ``slow_time_window`` frames → background subtraction.
        """
        denoised = self.denoise_frame(frame)
        return self.push_denoised(denoised)

    def push_block(self, frames: np.ndarray) -> np.ndarray:
        """Preprocess a whole (n_frames, n_bins) block, statefully.

        Bit-identical to calling :meth:`push` frame by frame — the
        slow-time smoother warm-starts from the current buffer state and
        leaves it as a frame-by-frame run would — but the cascade and the
        smoother each run as a handful of whole-block numpy ops.
        """
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise ValueError(f"push_block expects (n_frames, n_bins), got {frames.shape}")
        denoised = self.denoise_block(frames)
        smoothed = self._smooth_block(denoised)
        if not self.config.subtract_background:
            return smoothed
        return self._loopback.apply(smoothed)

    def _smooth_block(self, denoised: np.ndarray) -> np.ndarray:
        """Causal slow-time moving average, warm-started from the buffer.

        Row ``t`` averages the trailing ``min(window, seen)`` denoised
        frames, oldest first — the same operand order, same divisor, same
        result bits as the per-frame deque accumulation in
        :meth:`push_denoised`.
        """
        window = self.config.slow_time_window
        prior = list(self._slow_buffer)
        ext = np.concatenate([np.stack(prior), denoised]) if prior else denoised
        n = ext.shape[0]
        out = np.empty_like(ext)
        # Warm-up rows (fewer than `window` frames seen): growing prefix.
        # When the buffer is already full these rows are sliced off below.
        run: np.ndarray | None = None
        for t in range(min(window - 1, n)):
            run = ext[t] if run is None else run + ext[t]
            out[t] = run / float(t + 1)
        if n >= window:
            acc = ext[: n - window + 1].copy()
            for j in range(1, window):
                acc += ext[j : n - window + 1 + j]
            out[window - 1 :] = acc / float(window)
        for row in denoised[-window:]:
            self._slow_buffer.append(row)
        return out[len(prior) :]

    def apply(self, frames: np.ndarray) -> np.ndarray:
        """Offline path: preprocess a whole (n_frames, n_bins) matrix.

        An alias of :meth:`push_block` — the offline path *is* the
        streaming path, bit for bit, including state carried across calls.
        """
        return self.push_block(frames)

"""Signal preprocessing (paper Sec. IV-B).

Two stages, exactly as the paper orders them:

1. **Noise reduction** — "a cascading filter comprised of a low-pass Finite
   Impulse Response (FIR) filter and a smoothing filter ... The order of
   the designed FIR filter is 26, and Hamming window is used. The smooth
   filter with a window size of 50 points" (Sec. IV-B-1). The cascade runs
   along *fast time* (the per-frame range profile; Fig. 7's axis is ns).
   Because the pulse envelope is wider than the smoothing window, this
   coherently combines the echo across neighbouring bins and suppresses
   thermal noise without losing the per-path baseband phase (which is
   constant across the envelope).
2. **Background subtraction** — remove the static reflectors (seats,
   steering wheel) whose "energy does not change with time" by tracking
   each bin's static component with a loopback filter and subtracting the
   previous estimate (Sec. IV-B-2, Fig. 8).

A light slow-time smoother (3 frames) is applied between the stages: at
25 FPS it only removes above-4 Hz hash, far faster than any blink edge.

Both a vectorised offline path (:meth:`Preprocessor.apply`) and a
frame-at-a-time streaming path (:meth:`Preprocessor.push`) are provided;
the streaming path uses causal smoothing and is what the real-time
detector runs on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import CascadingFilter, LoopbackFilter

__all__ = ["PreprocessorConfig", "Preprocessor"]


@dataclass(frozen=True)
class PreprocessorConfig:
    """Knobs of the preprocessing stage (defaults from the paper).

    Attributes
    ----------
    fir_order / fir_cutoff / smooth_window:
        The cascading fast-time filter: order-26 Hamming FIR plus a
        smoothing window. The paper says "window size of 50 points"; the
        physically meaningful width is *one range-resolution cell* (the
        smoother coherently combines the pulse envelope without smearing
        distinct reflectors together), which at this simulator's 6.4 mm
        bin spacing and 10.7 cm resolution is ~16 bins. A 50-bin window
        (32 cm) would flatten the variance profile and let bin selection
        land on an envelope shoulder, where motion leaks into the
        amplitude observable.
    slow_time_window:
        Light slow-time moving average (frames). 3 at 25 FPS keeps every
        blink edge.
    clutter_alpha:
        Loopback-filter memory for background subtraction. 0.995 at 25 FPS
        is a ~8 s time constant: static reflectors vanish, respiration/BCG
        disturbances (needed by bin selection) survive.
    subtract_background:
        Background subtraction can be disabled for ablation.
    """

    fir_order: int = 26
    fir_cutoff: float = 0.1
    smooth_window: int = 16
    slow_time_window: int = 3
    clutter_alpha: float = 0.995
    subtract_background: bool = True

    def __post_init__(self) -> None:
        if self.slow_time_window < 1:
            raise ValueError("slow_time_window must be >= 1")


class Preprocessor:
    """Stateful preprocessing front-end (fast-time cascade + clutter removal)."""

    def __init__(self, config: PreprocessorConfig | None = None) -> None:
        self.config = config if config is not None else PreprocessorConfig()
        self._cascade = CascadingFilter(
            fir_order=self.config.fir_order,
            cutoff=self.config.fir_cutoff,
            smooth_window=self.config.smooth_window,
        )
        self._loopback = LoopbackFilter(alpha=self.config.clutter_alpha)
        self._slow_buffer: deque[np.ndarray] = deque(maxlen=self.config.slow_time_window)

    def reset(self) -> None:
        """Forget all state (used when the detector restarts)."""
        self._loopback.reset()
        self._slow_buffer.clear()

    @property
    def background(self) -> np.ndarray | None:
        """Current static-clutter estimate (None before the first frame)."""
        return self._loopback.background

    def denoise_frame(self, frame: np.ndarray) -> np.ndarray:
        """Fast-time cascading filter only (stage 1, stateless)."""
        frame = np.asarray(frame)
        if frame.ndim != 1:
            raise ValueError(f"denoise_frame expects one frame, got shape {frame.shape}")
        return self._cascade.apply(frame, axis=-1)

    def push(self, frame: np.ndarray) -> np.ndarray:
        """Streaming path: preprocess one frame.

        Order: fast-time cascade → causal slow-time average over the last
        ``slow_time_window`` frames → background subtraction.
        """
        denoised = self.denoise_frame(frame)
        self._slow_buffer.append(denoised)
        smoothed = np.mean(np.stack(self._slow_buffer), axis=0)
        if not self.config.subtract_background:
            return smoothed
        return self._loopback.push(smoothed)

    def apply(self, frames: np.ndarray) -> np.ndarray:
        """Offline path: preprocess a whole (n_frames, n_bins) matrix.

        Bit-identical to calling :meth:`push` frame by frame on a fresh
        instance (causal slow-time smoothing, sequential loopback).
        """
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise ValueError(f"apply expects (n_frames, n_bins), got {frames.shape}")
        denoised = self._cascade.apply(frames, axis=1)
        # Causal slow-time moving average with a growing warm-up window.
        window = self.config.slow_time_window
        smoothed = np.empty_like(denoised)
        cumsum = np.cumsum(denoised, axis=0)
        for k in range(frames.shape[0]):
            lo = max(0, k - window + 1)
            total = cumsum[k] - (cumsum[lo - 1] if lo > 0 else 0)
            smoothed[k] = total / (k - lo + 1)
        if not self.config.subtract_background:
            return smoothed
        return self._loopback.apply(smoothed)

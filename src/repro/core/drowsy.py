"""Drowsy-driving detection (paper Sec. IV-F).

"We use a one-minute window to calculate the user's blink rate, and we
collect each user's blink rate while awake and drowsy" — a per-user,
two-class model over blink-rate windows. The paper keeps the model simple
on purpose ("although not a contribution of our work"); we implement it as
a two-class Gaussian likelihood decision trained on the user's calibration
windows, which reduces to a per-user threshold between the awake and
drowsy rate distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.levd import BlinkDetection

if TYPE_CHECKING:
    from repro.core.analytics import DualFeatureClassifier
    from repro.core.realtime import RealTimeConfig

__all__ = ["BlinkRateClassifier", "DrowsyDetector", "StreamingDrowsinessMonitor", "blink_rate_windows"]


def blink_rate_windows(
    event_times_s: np.ndarray,
    duration_s: float,
    window_s: float = 60.0,
    hop_s: float | None = None,
) -> np.ndarray:
    """Blink rates (per minute) over hopping windows of ``window_s``.

    Only full windows are scored; ``hop_s`` defaults to the window length
    (non-overlapping windows, as in the paper's 1-min evaluation).
    """
    if window_s <= 0 or duration_s <= 0:
        raise ValueError("window and duration must be positive")
    hop = window_s if hop_s is None else hop_s
    if hop <= 0:
        raise ValueError("hop must be positive")
    times = np.sort(np.asarray(event_times_s, dtype=float))
    starts = np.arange(0.0, duration_s - window_s + 1e-9, hop)
    rates = np.empty(len(starts))
    for i, start in enumerate(starts):
        count = int(np.sum((times >= start) & (times < start + window_s)))
        rates[i] = count * 60.0 / window_s
    return rates


@dataclass
class BlinkRateClassifier:
    """Per-user two-class Gaussian model over blink rates.

    Train with the user's calibration windows (the paper collects "two sets
    of data for each participant (the blinking data of awake or drowsy)
    ... used as the training set"), then classify new windows.
    """

    awake_mean: float = field(default=0.0, init=False)
    awake_std: float = field(default=1.0, init=False)
    drowsy_mean: float = field(default=0.0, init=False)
    drowsy_std: float = field(default=1.0, init=False)
    trained: bool = field(default=False, init=False)
    #: True when the calibration data had drowsy rate <= awake rate.
    calibration_inverted: bool = field(default=False, init=False)

    _STD_FLOOR = 0.5  # blinks/min; guards against degenerate calibration

    def fit(self, awake_rates: np.ndarray, drowsy_rates: np.ndarray) -> "BlinkRateClassifier":
        """Fit the two Gaussians from calibration blink-rate windows."""
        awake = np.asarray(awake_rates, dtype=float).ravel()
        drowsy = np.asarray(drowsy_rates, dtype=float).ravel()
        if awake.size < 1 or drowsy.size < 1:
            raise ValueError("need at least one calibration window per class")
        self.awake_mean = float(np.mean(awake))
        self.drowsy_mean = float(np.mean(drowsy))
        # A calibration where the detected drowsy rate does not exceed the
        # awake rate violates the physiological premise — usually a sign
        # the detector struggled on the calibration drives. The model is
        # still fitted (and will classify poorly, which is the honest
        # outcome); the flag lets the application warn the user.
        self.calibration_inverted = self.drowsy_mean <= self.awake_mean
        # With only a handful of calibration windows the sample stds can
        # collapse to ~0 and turn the likelihood rule into a nearest-mean
        # cliff; floor them at a fraction of the class separation.
        floor = max(self._STD_FLOOR, 0.2 * abs(self.drowsy_mean - self.awake_mean))
        self.awake_std = max(float(np.std(awake)), floor)
        self.drowsy_std = max(float(np.std(drowsy)), floor)
        self.trained = True
        return self

    @property
    def threshold(self) -> float:
        """Decision boundary between the two class means.

        The equal-likelihood point of two Gaussians, restricted to the
        interval between the means (the physiologically meaningful root);
        falls back to the std-weighted midpoint for equal variances.
        """
        self._require_trained()
        m1, s1 = self.awake_mean, self.awake_std
        m2, s2 = self.drowsy_mean, self.drowsy_std
        if abs(s1 - s2) < 1e-9:
            return (m1 + m2) / 2.0
        # Solve (x-m1)²/s1² − (x-m2)²/s2² = 2 ln(s2/s1).
        a = 1.0 / s1**2 - 1.0 / s2**2
        b = -2.0 * (m1 / s1**2 - m2 / s2**2)
        c = m1**2 / s1**2 - m2**2 / s2**2 - 2.0 * np.log(s2 / s1)
        disc = b**2 - 4 * a * c
        if disc < 0:
            return (m1 * s2 + m2 * s1) / (s1 + s2)
        roots = [(-b + s * np.sqrt(disc)) / (2 * a) for s in (+1.0, -1.0)]
        inside = [r for r in roots if min(m1, m2) <= r <= max(m1, m2)]
        return float(inside[0]) if inside else (m1 * s2 + m2 * s1) / (s1 + s2)

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("classifier not trained; call fit() first")

    def classify(self, rate_per_min: float) -> str:
        """Classify one window's blink rate: ``"awake"`` or ``"drowsy"``."""
        self._require_trained()
        z_awake = (rate_per_min - self.awake_mean) / self.awake_std
        z_drowsy = (rate_per_min - self.drowsy_mean) / self.drowsy_std
        log_l_awake = -0.5 * z_awake**2 - np.log(self.awake_std)
        log_l_drowsy = -0.5 * z_drowsy**2 - np.log(self.drowsy_std)
        return "drowsy" if log_l_drowsy > log_l_awake else "awake"

    def classify_windows(self, rates: np.ndarray) -> list[str]:
        """Classify a batch of window rates."""
        return [self.classify(float(r)) for r in np.asarray(rates, dtype=float).ravel()]


@dataclass
class DrowsyDetector:
    """End-of-pipeline drowsiness decision over detected blink events.

    Wraps a trained :class:`BlinkRateClassifier` with the windowing of
    Sec. IV-F (1-minute windows by default; Fig. 16(d) sweeps this).
    """

    classifier: BlinkRateClassifier
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window must be positive")

    def rates(self, events: list[BlinkDetection], duration_s: float) -> np.ndarray:
        """Blink rates of the detected events over hopping windows."""
        times = np.array([e.time_s for e in events])
        return blink_rate_windows(times, duration_s, window_s=self.window_s)

    def detect(self, events: list[BlinkDetection], duration_s: float) -> list[str]:
        """Per-window awake/drowsy verdicts for a detected event stream."""
        return self.classifier.classify_windows(self.rates(events, duration_s))


class StreamingDrowsinessMonitor:
    """Real-time drowsiness verdicts over a live frame stream.

    Wraps a :class:`repro.core.realtime.RealTimeBlinkDetector` and a
    trained classifier (either flavour from
    :meth:`repro.core.pipeline.BlinkRadar.train_drowsiness`); every
    ``window_s`` of stream time it aggregates the window's detections and
    emits a verdict. This is the deployable monitoring loop of the paper's
    Sec. IV-F, as opposed to the offline batch evaluation.
    """

    def __init__(
        self,
        frame_rate_hz: float,
        classifier: DualFeatureClassifier | BlinkRateClassifier,
        window_s: float = 60.0,
        config: RealTimeConfig | None = None,
    ) -> None:
        from repro.core.realtime import RealTimeBlinkDetector

        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.detector = RealTimeBlinkDetector(frame_rate_hz, config)
        self.classifier = classifier
        self.window_s = window_s
        self.frame_rate_hz = frame_rate_hz
        self._r_history: list[float] = []
        self.verdicts: list[tuple[float, str]] = []
        self._window_frames = int(round(window_s * frame_rate_hz))
        self._frames_seen = 0

    def push(self, frame: np.ndarray) -> str | None:
        """Feed one frame; returns a verdict when a window completes."""
        import numpy as np

        from repro.core.analytics import (
            DualFeatureClassifier,
            estimate_blink_durations,
            window_metrics,
        )

        status = self.detector.process_frame(frame)
        self._r_history.append(status.relative_distance)
        self._frames_seen += 1
        if self._frames_seen % self._window_frames != 0:
            return None

        window_start = (self._frames_seen - self._window_frames) / self.frame_rate_hz
        window_events = [
            e for e in self.detector.events
            if window_start <= e.time_s < window_start + self.window_s
        ]
        rate = len(window_events) * 60.0 / self.window_s
        if isinstance(self.classifier, DualFeatureClassifier):
            r = np.array(self._r_history)
            durations = estimate_blink_durations(r, window_events, self.frame_rate_hz)
            metrics = window_metrics(
                window_events, durations, window_start, self.window_s
            )
            verdict = self.classifier.classify(rate, metrics.mean_duration_s)
        else:
            verdict = self.classifier.classify(rate)
        self.verdicts.append((window_start + self.window_s, verdict))
        return verdict

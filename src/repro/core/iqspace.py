"""I/Q-domain signal representation (paper Sec. IV-C).

The complex baseband sample of one range bin is a vector sum
``H_c = H_s + H_d`` of a static component (direct path + static clutter)
and a dynamic component (the moving reflectors). Small-scale motion keeps
|H_d| approximately constant and rotates its phase, tracing an arc in the
I/Q plane; reflectivity changes (the blink) move the sample radially.

This module provides the observables built on that decomposition:

- :func:`phase_series` / :func:`amplitude_series` — the 1-D projections
  the paper contrasts with the full 2-D treatment;
- :func:`dynamic_component` — H_d after removing a static estimate;
- :func:`displacement_from_phase` — inverting Eq. 9 (Δd = −c Δφ / 4π f₀);
- :func:`trajectory_variance` — the 2-D variance statistic that the bin
  selector maximises (Sec. IV-D).
"""

from __future__ import annotations

import numpy as np

from repro.rf.constants import SPEED_OF_LIGHT

__all__ = [
    "phase_series",
    "amplitude_series",
    "dynamic_component",
    "displacement_from_phase",
    "trajectory_variance",
]


def amplitude_series(samples: np.ndarray) -> np.ndarray:
    """|H(k)| of a complex slow-time series."""
    return np.abs(np.asarray(samples))


def phase_series(samples: np.ndarray, unwrap: bool = True) -> np.ndarray:
    """arg H(k) of a complex slow-time series, unwrapped by default."""
    phase = np.angle(np.asarray(samples))
    return np.unwrap(phase) if unwrap else phase


def dynamic_component(samples: np.ndarray, static: complex | None = None) -> np.ndarray:
    """H_d(k) = H_c(k) − H_s.

    ``static`` defaults to the series mean — a good H_s estimate when the
    dynamic vector's phase sweeps symmetrically. The viewing-position
    tracker supplies a better H_s (the fitted arc centre).
    """
    samples = np.asarray(samples)
    if static is None:
        static = complex(np.mean(samples))
    return samples - static


def displacement_from_phase(
    phase_rad: np.ndarray, carrier_hz: float
) -> np.ndarray:
    """Radial displacement from unwrapped phase: Δd = −c Δφ / (4π f₀).

    Inverse of Eq. 9; returns displacement relative to the first sample.
    """
    if carrier_hz <= 0:
        raise ValueError(f"carrier must be positive, got {carrier_hz}")
    phase = np.asarray(phase_rad, dtype=float)
    return -SPEED_OF_LIGHT * (phase - phase[0]) / (4.0 * np.pi * carrier_hz)


def trajectory_variance(samples: np.ndarray, axis: int = 0) -> np.ndarray:
    """Total 2-D variance of an I/Q trajectory: Var[I] + Var[Q].

    This is the statistic of Sec. IV-D: "calculate the variance of the 2D
    signal variation for each frequency bin". It is large wherever *any*
    motion (rotation or radial) stirs the phasor — unlike the 1-D amplitude
    variance, which is blind to arc-like rotation around the static vector.
    """
    samples = np.asarray(samples)
    return np.var(samples.real, axis=axis) + np.var(samples.imag, axis=axis)

"""Local extreme value detection (paper Sec. IV-E).

"The basic idea of the LEVD method is to find alternative local maxima and
minima and compare the difference between two nearby local maxima and
minima with a predefined threshold ... five times the standard deviation of
the signal amplitude without blinking. A blink is detected if the local
maximum and minimum difference is more significant than a threshold."

Implementation notes (documented deviations in DESIGN.md Sec. 5):

- The blink-free σ is estimated with a median-absolute-deviation estimator
  over a trailing window: blinks are sparse outliers, so the MAD tracks the
  quiet-signal σ without labelled quiet segments.
- A blink bump contributes *two* above-threshold extremum pairs (rise and
  fall). Pairs whose apexes fall within a merge window are fused into one
  event, timestamped at the most deviant extremum.

The trailing windows (detrend median, σ quantile, baseline median) are
kept in :class:`repro.dsp.stats.SortedWindow` instances, so every push is
an O(window) ``memmove`` and every order statistic reads straight off the
sorted list — bit-for-bit the values ``np.median``/``np.quantile`` gave
the seed implementation, without a fresh sort per frame.

Both an offline function (:func:`detect_blinks`) and a streaming class
(:class:`LocalExtremeValueDetector`) are provided; the streaming class is
what the real-time detector embeds, and the offline function is defined to
produce the same events as streaming the samples one by one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dsp.stats import SortedWindow

__all__ = ["BlinkDetection", "LevdConfig", "LocalExtremeValueDetector", "detect_blinks"]


#: Cache of Φ⁻¹((1+q)/2) per quantile q. scipy is imported lazily on the
#: first call (keeping module import light), but only once — the seed
#: re-imported it inside every σ recompute, which showed up as a
#: constant-overhead stripe across the hot-path profile. The divisor is
#: resolved at *detector construction* rather than on the first σ
#: evaluation: the `scipy.stats` import costs seconds on a cold
#: interpreter, and deferring it to mid-stream turned the first σ
#: recompute into a multi-second latency spike (the sessions=1 p50
#: anomaly in BENCH_fleet.json). Construction is session bring-up, where
#: a one-time cost belongs.
_PPF_DIVISORS: dict[float, float] = {}


def _gaussian_quantile_divisor(q: float) -> float:
    """Φ⁻¹((1+q)/2): scales the q-quantile of |x| into a Gaussian σ."""
    divisor = _PPF_DIVISORS.get(q)
    if divisor is None:
        from scipy.stats import norm

        divisor = float(norm.ppf((1.0 + q) / 2.0))
        _PPF_DIVISORS[q] = divisor
    return divisor


@dataclass(frozen=True)
class BlinkDetection:
    """One detected blink.

    Attributes
    ----------
    frame_index:
        Slow-time index of the blink apex.
    time_s:
        Apex time (frame_index / frame rate).
    prominence:
        Extremum-pair difference that triggered the detection, in the
        units of the relative-distance signal.
    """

    frame_index: int
    time_s: float
    prominence: float


@dataclass(frozen=True)
class LevdConfig:
    """LEVD parameters (defaults from the paper where it gives them).

    Attributes
    ----------
    threshold_sigmas:
        Detection threshold in units of the blink-free σ (paper: 5).
    sigma_window_s:
        Trailing window for the σ estimate. σ is a quantile estimate over
        *locally detrended* r(k): detrending (a short running median)
        keeps slow viewing-position drift out of σ, and a low quantile of
        |detrended| (scaled to be a consistent Gaussian σ estimate)
        implements the paper's "without blinking": a drowsy driver's
        blinks plus their detrending transients can occupy almost half the
        samples, so the estimator must read the *clean* half of the
        distribution — the median of |detrended| divided by Φ⁻¹(0.75)
        does exactly that, while residual motion noise (BCG leakage,
        vibration) still raises the threshold in rough conditions.
    detrend_window_s:
        Length of the causal running-median baseline used for detrending.
        Must be comfortably longer than the longest blink (drowsy blinks
        reach ~0.8 s): if the median window is blink-sized, the baseline
        chases the bump and the contamination spreads over twice the blink
        duration, overwhelming the quantile estimator at drowsy blink
        rates.
    max_pair_gap_s:
        Maximum time between the "two nearby local maxima and minima" the
        paper compares; extrema further apart belong to slow drift, not a
        blink bump.
    apex_min_fraction:
        The pair's apex must additionally deviate from the running
        baseline by this fraction of the threshold. A blink's apex carries
        the whole bump, but a pair of opposite-sign noise extrema can
        clear the pair threshold while each sits only ~2.5σ from baseline
        — this cut removes those without touching genuine bumps.
    merge_window_s:
        Extremum pairs within this window fuse into one blink event — a
        bump's rise and its fall. The trade-off is asymmetric: a window
        longer than the shortest inter-blink interval merges *distinct*
        blinks (lost recall — the paper's accuracy metric), while a window
        shorter than the longest blink double-counts its close and reopen
        edges (lost precision only). Drowsy drivers blink as little as
        ~0.5 s apart, so the window sits just below that.
    refractory_s:
        Minimum spacing between emitted events (eyelids cannot re-blink
        mid-blink).
    min_sigma:
        Absolute floor on the σ estimate, guarding against a degenerate
        all-identical window.
    """

    threshold_sigmas: float = 5.0
    sigma_window_s: float = 10.0
    detrend_window_s: float = 1.6
    sigma_quantile: float = 0.62
    max_pair_gap_s: float = 1.0
    apex_min_fraction: float = 0.7
    merge_window_s: float = 0.55
    refractory_s: float = 0.25
    min_sigma: float = 1e-12

    def __post_init__(self) -> None:
        if self.threshold_sigmas <= 0:
            raise ValueError("threshold_sigmas must be positive")
        if self.sigma_window_s <= 0 or self.merge_window_s < 0 or self.refractory_s < 0:
            raise ValueError("windows must be non-negative (sigma window positive)")
        if self.detrend_window_s <= 0:
            raise ValueError("detrend_window_s must be positive")
        if not 0.0 < self.sigma_quantile < 1.0:
            raise ValueError("sigma_quantile must be in (0, 1)")
        if not 0.0 <= self.apex_min_fraction <= 1.0:
            raise ValueError("apex_min_fraction must be in [0, 1]")


class LocalExtremeValueDetector:
    """Streaming LEVD over the relative-distance signal r(k)."""

    def __init__(self, frame_rate_hz: float, config: LevdConfig | None = None) -> None:
        if frame_rate_hz <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate_hz}")
        self.frame_rate_hz = frame_rate_hz
        self.config = config if config is not None else LevdConfig()
        window_frames = max(8, int(round(self.config.sigma_window_s * frame_rate_hz)))
        # σ buffer holds |detrended| directly: σ only ever reads the
        # quantile of the absolute values, so the absolute value is taken
        # once at insertion instead of over the whole window per frame.
        self._sigma_buffer = SortedWindow(maxlen=window_frames)
        self._baseline_buffer = SortedWindow(maxlen=window_frames)
        self._detrend_buffer = SortedWindow(
            maxlen=max(3, int(round(self.config.detrend_window_s * frame_rate_hz)))
        )
        self._sigma_cache: float | None = None
        self._excluded_run = 0
        self._history: deque[tuple[int, float]] = deque(maxlen=3)
        self._last_extremum: tuple[int, float, str] | None = None
        self._pending: BlinkDetection | None = None
        self._last_emit_index: int | None = None
        self._discontinuities: deque[int] = deque(maxlen=8)
        self._index = -1
        # Frame-count constants used on every sample.
        self._merge_frames = self._frames(self.config.merge_window_s)
        self._refractory_frames = self._frames(self.config.refractory_s)
        self._max_gap_frames = self._frames(self.config.max_pair_gap_s)
        # Pay the scipy import (seconds, once per interpreter) here at
        # bring-up, never inside the streaming hot path.
        self._sigma_divisor = _gaussian_quantile_divisor(self.config.sigma_quantile)

    def reset(self) -> None:
        """Drop all state (detector restart)."""
        self._sigma_buffer.clear()
        self._baseline_buffer.clear()
        self._detrend_buffer.clear()
        self._sigma_cache = None
        self._excluded_run = 0
        self._history.clear()
        self._last_extremum = None
        self._pending = None
        self._last_emit_index = None
        self._discontinuities.clear()
        self._index = -1

    @property
    def index(self) -> int:
        """Index of the last pushed sample (−1 before the first)."""
        return self._index

    def mark_discontinuity(self) -> None:
        """Declare a measurement discontinuity at the next sample.

        Called by the real-time detector when the viewing position refits:
        the r(k) step induced by moving the centre is an artefact of the
        measurement, not of the eye, so extremum pairs spanning it are
        discarded rather than scored against the threshold.
        """
        self._discontinuities.append(self._index + 1)

    @property
    def baseline(self) -> float | None:
        """Median of the trailing r(k) window (None until samples exist)."""
        if not len(self._baseline_buffer):
            return None
        return self._baseline_buffer.median()

    def is_outlier(self, value: float, sigmas: float = 4.0) -> bool:
        """True when ``value`` deviates from the recent baseline by > sigmas·σ.

        Used by the real-time detector to keep blink samples out of the
        arc fit; always False until σ and a baseline are established.
        """
        sigma = self.sigma
        baseline = self.baseline
        if sigma <= 0 or baseline is None:
            return False
        return abs(value - baseline) > sigmas * sigma

    def _observe(self, value: float) -> None:
        """Update the σ and baseline state with one r(k) sample.

        Samples far above the current σ (blink bumps) are kept out of the
        σ buffer — the paper's σ is explicitly that of the signal
        "without blinking" — but always enter the detrend and baseline
        buffers, whose medians are robust to them.
        """
        self._detrend_buffer.push(value)
        detrended = value - self._detrend_buffer.median()
        sigma = self.sigma
        exclude = sigma > 0 and abs(detrended) > 6.0 * sigma
        # Escape hatch: if the environment genuinely got noisier (road
        # change), refusing every sample would freeze σ at its old value;
        # a long unbroken run of exclusions forces adaptation instead.
        if exclude:
            self._excluded_run += 1
            if self._excluded_run > self._sigma_buffer.maxlen // 4:
                exclude = False
        if not exclude:
            self._excluded_run = 0
            self._sigma_buffer.push(abs(detrended))
            self._sigma_cache = None
        self._baseline_buffer.push(value)

    def seed_sigma(self, values: np.ndarray) -> None:
        """Pre-fill the σ window (e.g. with cold-start r(k) history)."""
        for v in np.asarray(values, dtype=float).ravel():
            self._observe(float(v))

    @property
    def sigma(self) -> float:
        """Blink-free σ: quantile of |locally detrended r(k)|.

        The q-th quantile of |x| divided by Φ⁻¹((1+q)/2) is a consistent σ
        estimate for Gaussian x that ignores the top (1−q) of samples —
        where the blink bumps live — which is the practical reading of the
        paper's "standard deviation of the signal amplitude without
        blinking".
        """
        if len(self._sigma_buffer) < 8:
            return 0.0
        if self._sigma_cache is None:
            q = self.config.sigma_quantile
            self._sigma_cache = max(
                self._sigma_buffer.quantile(q) / self._sigma_divisor,
                self.config.min_sigma,
            )
        return self._sigma_cache

    @property
    def threshold(self) -> float:
        """Current detection threshold (5σ with paper defaults)."""
        return self.config.threshold_sigmas * self.sigma

    def _frames(self, seconds: float) -> int:
        return int(round(seconds * self.frame_rate_hz))

    def _classify_midpoint(self) -> tuple[int, float, str] | None:
        """Extremum test on the middle of the 3-sample history."""
        (i0, v0), (i1, v1), (i2, v2) = self._history
        if v1 >= v0 and v1 > v2 or v1 > v0 and v1 >= v2:
            return (i1, v1, "max")
        if v1 <= v0 and v1 < v2 or v1 < v0 and v1 <= v2:
            return (i1, v1, "min")
        return None

    def _flush_pending(self, now_index: int, force: bool = False) -> BlinkDetection | None:
        """Emit the pending event once the merge window has elapsed."""
        if self._pending is None:
            return None
        if not force and now_index - self._pending.frame_index < self._merge_frames:
            return None
        event = self._pending
        self._pending = None
        if self._last_emit_index is not None and (
            event.frame_index - self._last_emit_index < self._refractory_frames
        ):
            return None
        self._last_emit_index = event.frame_index
        return event

    def _consider_pair(
        self, prev: tuple[int, float, str], cur: tuple[int, float, str]
    ) -> None:
        """Check an alternating extremum pair against the threshold."""
        threshold = self.threshold
        if threshold <= 0:
            return
        if cur[0] - prev[0] > self._max_gap_frames:
            return  # not "nearby": slow drift, not a blink bump
        if any(prev[0] - 1 <= d <= cur[0] + 1 for d in self._discontinuities):
            return  # pair straddles a viewing-position update artefact
        diff = abs(cur[1] - prev[1])
        if diff <= threshold:
            return
        # Apex of the bump: the extremum farther from the recent baseline.
        baseline = self._baseline_buffer.median() if len(self._baseline_buffer) else 0.0
        apex = max((prev, cur), key=lambda e: abs(e[1] - baseline))
        if abs(apex[1] - baseline) < self.config.apex_min_fraction * threshold:
            return
        candidate = BlinkDetection(
            frame_index=apex[0],
            time_s=apex[0] / self.frame_rate_hz,
            prominence=float(diff),
        )
        if self._pending is None:
            self._pending = candidate
        elif candidate.frame_index - self._pending.frame_index <= self._merge_frames:
            # Same bump: keep the more prominent description.
            if candidate.prominence > self._pending.prominence:
                self._pending = BlinkDetection(
                    frame_index=self._pending.frame_index,
                    time_s=self._pending.time_s,
                    prominence=candidate.prominence,
                )
        else:
            # Different bump: the pending one will flush on its own.
            self._pending = candidate

    def push(self, value: float) -> BlinkDetection | None:
        """Feed one r(k) sample; return a blink event when one completes."""
        self._index += 1
        value = float(value)
        self._observe(value)
        self._history.append((self._index, value))

        emitted = self._flush_pending(self._index)
        if len(self._history) == 3:
            extremum = self._classify_midpoint()
            if extremum is not None:
                if self._last_extremum is not None and self._last_extremum[2] != extremum[2]:
                    self._consider_pair(self._last_extremum, extremum)
                    self._last_extremum = extremum
                elif self._last_extremum is None:
                    self._last_extremum = extremum
                else:
                    # Same kind twice: keep the more extreme one.
                    if (extremum[2] == "max" and extremum[1] > self._last_extremum[1]) or (
                        extremum[2] == "min" and extremum[1] < self._last_extremum[1]
                    ):
                        self._last_extremum = extremum
        return emitted

    def finish(self) -> BlinkDetection | None:
        """Flush any pending event at end of stream."""
        return self._flush_pending(self._index, force=True)


def detect_blinks(
    r: np.ndarray, frame_rate_hz: float, config: LevdConfig | None = None
) -> list[BlinkDetection]:
    """Offline LEVD: run the streaming detector over a full r(k) series."""
    detector = LocalExtremeValueDetector(frame_rate_hz, config)
    events: list[BlinkDetection] = []
    for value in np.asarray(r, dtype=float):
        event = detector.push(value)
        if event is not None:
            events.append(event)
    tail = detector.finish()
    if tail is not None:
        events.append(tail)
    return events

"""Command-line interface: ``python -m repro <command>``.

Five commands cover the everyday workflows:

- ``simulate``  — render a scenario to a labelled ``.npz`` trace.
- ``detect``    — run the BlinkRadar pipeline over a saved trace and score
  it against the embedded ground truth.
- ``vitals``    — respiration + heart rate from a saved trace.
- ``sweep``     — one of the paper's parameter sweeps, printed as a table.
- ``fleet``     — run many concurrent detector sessions (optionally with
  injected SPI faults) and print health + metrics.
- ``store``     — record, replay, inspect, and verify chunked ``.rst``
  recordings (the ``repro.store`` trace container).
- ``gateway``   — the streaming network ingest service: serve frames
  over TCP into the fleet, load-test it with replayed traces, scrape
  its Prometheus metrics.
- ``lint``      — run reprolint, the repo's AST-based invariant checker
  (determinism, units discipline, lock discipline, API hygiene).

Examples::

    python -m repro simulate --road bumpy --state drowsy --seed 7 -o drive.npz
    python -m repro detect drive.npz
    python -m repro vitals drive.npz
    python -m repro sweep distance --seeds 1 2 3
    python -m repro fleet --vehicles 8 --faults 2 --duration 30
    python -m repro store record --road bumpy -o drive.rst
    python -m repro store verify drive.rst
    python -m repro gateway serve --port 9400 --record-dir rec/
    python -m repro gateway load drive.rst --port 9400 --vehicles 16
    python -m repro lint src --format json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import BlinkRadar, RadarTrace, Scenario, simulate
from repro.datasets import EYE_SIZE_LEVELS
from repro.eval.metrics import score_blink_detection
from repro.eval.report import format_series, format_table
from repro.eval.sweeps import (
    azimuth_sweep,
    distance_sweep,
    elevation_sweep,
    eye_size_sweep,
    glasses_sweep,
    road_group_sweep,
)
from repro.gateway.cli import add_gateway_arguments, run_gateway
from repro.lint.cli import add_lint_arguments, run_lint_safely
from repro.store.cli import add_store_arguments, run_store
from repro.physio import ParticipantProfile
from repro.rf.geometry import SensorPose
from repro.vehicle.road import ROAD_GROUPS, ROAD_TYPES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlinkRadar reproduction: simulate, detect, sweep.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a driving session to .npz")
    sim.add_argument("--road", default="smooth_highway", choices=sorted(ROAD_TYPES))
    sim.add_argument("--state", default="awake", choices=["awake", "drowsy"])
    sim.add_argument("--duration", type=float, default=60.0, help="seconds")
    sim.add_argument("--distance", type=float, default=0.4, help="radar-to-eye metres")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--participant", default="CLI")
    sim.add_argument("-o", "--output", required=True, help="output .npz path")

    det = sub.add_parser("detect", help="detect blinks in a saved trace")
    det.add_argument("trace", help="input .npz path")

    vit = sub.add_parser("vitals", help="respiration + heart rate from a trace")
    vit.add_argument("trace", help="input .npz path")

    swp = sub.add_parser("sweep", help="run one of the paper's sweeps")
    swp.add_argument(
        "which",
        choices=["distance", "elevation", "azimuth", "glasses", "roads", "eyesize"],
    )
    swp.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    swp.add_argument("--duration", type=float, default=60.0)
    swp.add_argument("--csv", help="also write the series to this .csv/.json path")

    flt = sub.add_parser("fleet", help="concurrent multi-vehicle detection service")
    flt.add_argument("--vehicles", type=int, default=4, help="number of sessions")
    flt.add_argument("--duration", type=float, default=30.0, help="seconds per vehicle")
    flt.add_argument("--road", default="smooth_highway", choices=sorted(ROAD_TYPES))
    flt.add_argument("--state", default="awake", choices=["awake", "drowsy"])
    flt.add_argument("--seed", type=int, default=0, help="base seed (vehicle k uses seed+k)")
    flt.add_argument(
        "--faults", type=int, default=0,
        help="inject an SPI fault burst on this many vehicles",
    )
    flt.add_argument(
        "--fault-at", type=float, default=None,
        help="seconds into the stream to fault (default: 40%% of duration)",
    )
    flt.add_argument("--workers", type=int, default=4, help="detector worker threads")
    flt.add_argument("--queue-depth", type=int, default=4096, help="per-session queue bound")
    flt.add_argument(
        "--sharded", action="store_true",
        help="run detectors in shard worker processes (repro.shard) instead of threads",
    )
    flt.add_argument("--json", help="also write the metrics snapshot to this path")

    sto = sub.add_parser("store", help="record/replay/verify chunked .rst recordings")
    add_store_arguments(sto)

    gtw = sub.add_parser("gateway", help="streaming network ingest service + load harness")
    add_gateway_arguments(gtw)

    lnt = sub.add_parser("lint", help="run reprolint, the AST invariant checker")
    add_lint_arguments(lnt)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = Scenario(
        participant=ParticipantProfile(args.participant),
        road=args.road,
        state=args.state,
        duration_s=args.duration,
        pose=SensorPose(distance_m=args.distance),
    )
    trace = simulate(scenario, seed=args.seed)
    trace.save(args.output)
    print(
        f"wrote {args.output}: {trace.n_frames} frames x {trace.n_bins} bins, "
        f"{len(trace.blink_events)} blinks, road={args.road}, state={args.state}"
    )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    trace = RadarTrace.load(args.trace)
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz)
    result = radar.detect(trace.frames)
    score = score_blink_detection(trace.blink_times_s, result.event_times_s)
    rows = [
        ["true blinks", len(trace.blink_events)],
        ["detected", len(result.events)],
        ["accuracy (paper metric)", f"{score.accuracy:.3f}"],
        ["precision", f"{score.precision:.3f}"],
        ["F1", f"{score.f1:.3f}"],
        ["detected rate (blinks/min)", f"{result.blink_rate_per_min():.1f}"],
        ["restarts", len(result.restart_times_s)],
    ]
    print(format_table(f"BlinkRadar on {args.trace}", ["quantity", "value"], rows))
    return 0


def _cmd_vitals(args: argparse.Namespace) -> int:
    from repro.core.vitals import VitalSignsMonitor

    trace = RadarTrace.load(args.trace)
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz)
    blinks = np.array([e.frame_index for e in radar.detect(trace.frames).events])
    vs = VitalSignsMonitor(trace.frame_rate_hz).measure(trace.frames, blink_frames=blinks)
    rows = [
        ["respiration (bpm)", f"{vs.respiration_bpm:.1f}"],
        ["heart rate (bpm)", f"{vs.heart_rate_bpm:.1f}"],
        ["torso bin / head bin", f"{vs.torso_bin} / {vs.head_bin}"],
    ]
    print(format_table(f"Vital signs from {args.trace}", ["quantity", "value"], rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = Scenario(
        participant=ParticipantProfile("CLI"),
        duration_s=args.duration,
        allow_posture_shifts=False,
    )
    if args.which == "distance":
        series = distance_sweep(base, args.seeds)
        title = "Accuracy vs distance (Fig. 15(b))"
    elif args.which == "elevation":
        series = elevation_sweep(base, args.seeds)
        title = "Accuracy vs elevation (Fig. 15(c))"
    elif args.which == "azimuth":
        series = azimuth_sweep(base, args.seeds)
        title = "Accuracy vs azimuth (Fig. 15(d))"
    elif args.which == "glasses":
        series = glasses_sweep(base, args.seeds)
        title = "Accuracy vs eyewear (Fig. 16(a))"
    elif args.which == "roads":
        series = road_group_sweep(base, args.seeds, ROAD_GROUPS)
        title = "Accuracy vs road group (Fig. 16(b))"
    else:
        series = eye_size_sweep(base, args.seeds, EYE_SIZE_LEVELS)
        title = "Accuracy vs eye size (Fig. 16(c))"
    print(format_series(title, series, unit="accuracy"))
    if args.csv:
        from repro.eval.export import export_series

        path = export_series(args.csv, series, x_label=args.which, y_label="accuracy")
        print(f"series written to {path}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetService, VehicleSpec

    if args.vehicles < 1:
        raise SystemExit("fleet: need at least one vehicle")
    if not 0 <= args.faults <= args.vehicles:
        raise SystemExit(f"fleet: --faults must be in 0..{args.vehicles}")
    fault_at = args.fault_at if args.fault_at is not None else 0.4 * args.duration
    service = FleetService(
        workers=args.workers,
        queue_depth=args.queue_depth,
        backend="sharded" if args.sharded else "threaded",
    )
    for k in range(args.vehicles):
        service.add_vehicle(
            VehicleSpec(
                f"v{k:02d}",
                road=args.road,
                state=args.state,
                duration_s=args.duration,
                seed=args.seed + k,
                fault_at_s=fault_at if k < args.faults else None,
            )
        )
    service.run()

    rows = [
        [
            sid,
            h["state"],
            h["frames_processed"],
            h["blinks"],
            h["restarts"],
            h["dropped_fifo"],
            h["dropped_queue"],
        ]
        for sid, h in service.health().items()
    ]
    print(
        format_table(
            f"Fleet: {args.vehicles} vehicles x {args.duration:.0f} s "
            f"({args.faults} faulted)",
            ["session", "state", "frames", "blinks", "restarts", "fifo drops", "q drops"],
            rows,
        )
    )
    snap = service.metrics_snapshot()
    latency = snap["histograms"].get("fleet.latency_s", {"count": 0})
    summary = [
        ["frames processed", snap["counters"].get("fleet.frames_processed", 0)],
        ["blinks", snap["counters"].get("fleet.blinks", 0)],
        ["restarts", snap["counters"].get("fleet.restarts", 0)],
        ["throughput (frames/s)", f"{snap['gauges'].get('fleet.throughput_fps', 0.0):.0f}"],
    ]
    if latency["count"]:
        summary += [
            ["latency p50 (ms)", f"{latency['p50'] * 1e3:.2f}"],
            ["latency p95 (ms)", f"{latency['p95'] * 1e3:.2f}"],
            ["latency p99 (ms)", f"{latency['p99'] * 1e3:.2f}"],
        ]
    print(format_table("Fleet metrics", ["quantity", "value"], summary))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
        print(f"metrics snapshot written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "detect": _cmd_detect,
        "vitals": _cmd_vitals,
        "sweep": _cmd_sweep,
        "fleet": _cmd_fleet,
        "store": run_store,
        "gateway": run_gateway,
        "lint": run_lint_safely,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

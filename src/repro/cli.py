"""Command-line interface: ``python -m repro <command>``.

Four commands cover the everyday workflows:

- ``simulate``  — render a scenario to a labelled ``.npz`` trace.
- ``detect``    — run the BlinkRadar pipeline over a saved trace and score
  it against the embedded ground truth.
- ``vitals``    — respiration + heart rate from a saved trace.
- ``sweep``     — one of the paper's parameter sweeps, printed as a table.

Examples::

    python -m repro simulate --road bumpy --state drowsy --seed 7 -o drive.npz
    python -m repro detect drive.npz
    python -m repro vitals drive.npz
    python -m repro sweep distance --seeds 1 2 3
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import BlinkRadar, RadarTrace, Scenario, simulate
from repro.datasets import EYE_SIZE_LEVELS
from repro.eval.metrics import score_blink_detection
from repro.eval.report import format_series, format_table
from repro.eval.sweeps import (
    azimuth_sweep,
    distance_sweep,
    elevation_sweep,
    eye_size_sweep,
    glasses_sweep,
    road_group_sweep,
)
from repro.physio import ParticipantProfile
from repro.rf.geometry import SensorPose
from repro.vehicle.road import ROAD_GROUPS, ROAD_TYPES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlinkRadar reproduction: simulate, detect, sweep.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a driving session to .npz")
    sim.add_argument("--road", default="smooth_highway", choices=sorted(ROAD_TYPES))
    sim.add_argument("--state", default="awake", choices=["awake", "drowsy"])
    sim.add_argument("--duration", type=float, default=60.0, help="seconds")
    sim.add_argument("--distance", type=float, default=0.4, help="radar-to-eye metres")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--participant", default="CLI")
    sim.add_argument("-o", "--output", required=True, help="output .npz path")

    det = sub.add_parser("detect", help="detect blinks in a saved trace")
    det.add_argument("trace", help="input .npz path")

    vit = sub.add_parser("vitals", help="respiration + heart rate from a trace")
    vit.add_argument("trace", help="input .npz path")

    swp = sub.add_parser("sweep", help="run one of the paper's sweeps")
    swp.add_argument(
        "which",
        choices=["distance", "elevation", "azimuth", "glasses", "roads", "eyesize"],
    )
    swp.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    swp.add_argument("--duration", type=float, default=60.0)
    swp.add_argument("--csv", help="also write the series to this .csv/.json path")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = Scenario(
        participant=ParticipantProfile(args.participant),
        road=args.road,
        state=args.state,
        duration_s=args.duration,
        pose=SensorPose(distance_m=args.distance),
    )
    trace = simulate(scenario, seed=args.seed)
    trace.save(args.output)
    print(
        f"wrote {args.output}: {trace.n_frames} frames x {trace.n_bins} bins, "
        f"{len(trace.blink_events)} blinks, road={args.road}, state={args.state}"
    )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    trace = RadarTrace.load(args.trace)
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz)
    result = radar.detect(trace.frames)
    score = score_blink_detection(trace.blink_times_s, result.event_times_s)
    rows = [
        ["true blinks", len(trace.blink_events)],
        ["detected", len(result.events)],
        ["accuracy (paper metric)", f"{score.accuracy:.3f}"],
        ["precision", f"{score.precision:.3f}"],
        ["F1", f"{score.f1:.3f}"],
        ["detected rate (blinks/min)", f"{result.blink_rate_per_min():.1f}"],
        ["restarts", len(result.restart_times_s)],
    ]
    print(format_table(f"BlinkRadar on {args.trace}", ["quantity", "value"], rows))
    return 0


def _cmd_vitals(args: argparse.Namespace) -> int:
    from repro.core.vitals import VitalSignsMonitor

    trace = RadarTrace.load(args.trace)
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz)
    blinks = np.array([e.frame_index for e in radar.detect(trace.frames).events])
    vs = VitalSignsMonitor(trace.frame_rate_hz).measure(trace.frames, blink_frames=blinks)
    rows = [
        ["respiration (bpm)", f"{vs.respiration_bpm:.1f}"],
        ["heart rate (bpm)", f"{vs.heart_rate_bpm:.1f}"],
        ["torso bin / head bin", f"{vs.torso_bin} / {vs.head_bin}"],
    ]
    print(format_table(f"Vital signs from {args.trace}", ["quantity", "value"], rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = Scenario(
        participant=ParticipantProfile("CLI"),
        duration_s=args.duration,
        allow_posture_shifts=False,
    )
    if args.which == "distance":
        series = distance_sweep(base, args.seeds)
        title = "Accuracy vs distance (Fig. 15(b))"
    elif args.which == "elevation":
        series = elevation_sweep(base, args.seeds)
        title = "Accuracy vs elevation (Fig. 15(c))"
    elif args.which == "azimuth":
        series = azimuth_sweep(base, args.seeds)
        title = "Accuracy vs azimuth (Fig. 15(d))"
    elif args.which == "glasses":
        series = glasses_sweep(base, args.seeds)
        title = "Accuracy vs eyewear (Fig. 16(a))"
    elif args.which == "roads":
        series = road_group_sweep(base, args.seeds, ROAD_GROUPS)
        title = "Accuracy vs road group (Fig. 16(b))"
    else:
        series = eye_size_sweep(base, args.seeds, EYE_SIZE_LEVELS)
        title = "Accuracy vs eye size (Fig. 16(c))"
    print(format_series(title, series, unit="accuracy"))
    if args.csv:
        from repro.eval.export import export_series

        path = export_series(args.csv, series, x_label=args.which, y_label="accuracy")
        print(f"series written to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "detect": _cmd_detect,
        "vitals": _cmd_vitals,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Register map of the emulated IR-UWB transceiver.

Modelled after X4-class impulse-radio SoCs: an 8-bit address space of 8-bit
registers controlling the RF front-end and a frame FIFO exposed through a
data port. Only the registers the BlinkRadar stack needs are implemented;
the map is easy to extend.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Register", "REGISTERS", "RegisterFile"]


@dataclass(frozen=True)
class Register:
    """One 8-bit register.

    Attributes
    ----------
    name / address:
        Identifier and 8-bit address.
    reset_value:
        Value after power-on or soft reset.
    writable:
        Host-writable; read-only registers reject writes with an error.
    """

    name: str
    address: int
    reset_value: int = 0
    writable: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 0xFF:
            raise ValueError(f"address {self.address:#x} outside 8-bit space")
        if not 0 <= self.reset_value <= 0xFF:
            raise ValueError(f"reset value {self.reset_value:#x} outside 8-bit range")


#: The chip's registers. CHIP_ID reads a fixed signature; FRAME_RATE_DIV
#: divides the 100 Hz base clock (4 → 25 FPS, the paper's 40 ms period);
#: TX_POWER is a 0–255 code scaling the pulse amplitude; DAC_STEP selects
#: the fast-time bin decimation; TRX_CTRL bit0 starts/stops the sampler;
#: STATUS bit0 = frame ready, bit1 = FIFO overflow; FIFO_COUNT_L/H expose
#: the byte count and FIFO_DATA pops bytes; FRAME_COUNT_L/H is a free-
#: running 16-bit counter of frames *produced* by the sampler (it keeps
#: counting when the FIFO overflows, which is what lets the host anchor
#: timestamps to device time even across dropped frames).
_REGISTER_LIST = [
    Register("CHIP_ID", 0x00, reset_value=0xA4, writable=False),
    Register("VERSION", 0x01, reset_value=0x12, writable=False),
    Register("TRX_CTRL", 0x10, reset_value=0x00),
    Register("FRAME_RATE_DIV", 0x11, reset_value=4),
    Register("TX_POWER", 0x12, reset_value=0xFF),
    Register("DAC_STEP", 0x13, reset_value=1),
    Register("STATUS", 0x20, reset_value=0x00, writable=False),
    Register("FIFO_COUNT_L", 0x21, reset_value=0x00, writable=False),
    Register("FIFO_COUNT_H", 0x22, reset_value=0x00, writable=False),
    Register("FIFO_DATA", 0x23, reset_value=0x00, writable=False),
    Register("FRAME_COUNT_L", 0x24, reset_value=0x00, writable=False),
    Register("FRAME_COUNT_H", 0x25, reset_value=0x00, writable=False),
    Register("SOFT_RESET", 0x30, reset_value=0x00),
]

REGISTERS: dict[str, Register] = {r.name: r for r in _REGISTER_LIST}
_BY_ADDRESS: dict[int, Register] = {r.address: r for r in _REGISTER_LIST}


class RegisterFile:
    """Mutable register state with access checking."""

    def __init__(self) -> None:
        self._values: dict[int, int] = {}
        self.reset()

    def reset(self) -> None:
        """Restore every register to its reset value."""
        self._values = {r.address: r.reset_value for r in REGISTERS.values()}

    @staticmethod
    def lookup(address: int) -> Register:
        """Register at ``address``; raises KeyError for unmapped addresses."""
        try:
            return _BY_ADDRESS[address]
        except KeyError:
            raise KeyError(f"no register at address {address:#04x}") from None

    def read(self, address: int) -> int:
        """Read a register by address."""
        self.lookup(address)
        return self._values[address]

    def write(self, address: int, value: int, force: bool = False) -> None:
        """Write a register by address.

        ``force`` lets the device itself update read-only registers
        (STATUS, FIFO counts); host writes must leave it False.
        """
        register = self.lookup(address)
        if not register.writable and not force:
            raise PermissionError(f"register {register.name} is read-only")
        if not 0 <= value <= 0xFF:
            raise ValueError(f"value {value} outside 8-bit range")
        self._values[address] = value

    def read_name(self, name: str) -> int:
        """Read a register by name."""
        return self.read(REGISTERS[name].address)

    def write_name(self, name: str, value: int, force: bool = False) -> None:
        """Write a register by name."""
        self.write(REGISTERS[name].address, value, force=force)

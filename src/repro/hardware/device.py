"""The emulated IR-UWB transceiver chip.

:class:`UwbRadarDevice` is the SPI slave: a register file, a byte FIFO and
a frame engine. Frames come from the RF simulator (a precomputed complex
frame matrix, or any callable producing frames); the device quantises them
to int16 I/Q pairs — like the real chip's ADC — and streams them through
the FIFO under the control of the TRX_CTRL/FRAME_RATE_DIV registers.

Time is advanced explicitly with :meth:`tick` (one tick = one frame
period), keeping the emulation deterministic and test-friendly; the
:class:`~repro.hardware.driver.FrameStream` pairs ticks with reads to
emulate the live loop.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator

import numpy as np

from repro.hardware.registers import RegisterFile, REGISTERS
from repro.hardware.spi import ACK, NAK, crc8

__all__ = ["UwbRadarDevice"]

_CMD_WRITE = 0x80
_CMD_BURST = 0x40

#: Full-scale amplitude of the int16 quantiser. Must clear the strongest
#: return in the frame — the direct TX→RX leakage at ~2e-3 of the pulse
#: amplitude — while the LSB (full_scale/32767 ≈ 1.2e-7) stays below the
#: thermal noise floor so quantisation never limits sensing.
DEFAULT_FULL_SCALE = 4.0e-3

#: FIFO capacity in bytes (8 frames of 234 bins — matches a small on-chip
#: SRAM; overruns set the STATUS overflow bit and drop the oldest frame).
DEFAULT_FIFO_BYTES = 8 * 234 * 4


class UwbRadarDevice:
    """Register-programmable emulated transceiver (SPI slave)."""

    def __init__(
        self,
        frame_source: np.ndarray | Callable[[int], np.ndarray] | None = None,
        full_scale: float = DEFAULT_FULL_SCALE,
        fifo_capacity_bytes: int = DEFAULT_FIFO_BYTES,
    ) -> None:
        if full_scale <= 0:
            raise ValueError(f"full scale must be positive, got {full_scale}")
        if fifo_capacity_bytes < 4:
            raise ValueError("FIFO must hold at least one sample")
        self.registers = RegisterFile()
        self.full_scale = full_scale
        self.fifo_capacity_bytes = fifo_capacity_bytes
        self._fifo: deque[int] = deque()
        self._frame_counter = 0
        self._source: Callable[[int], np.ndarray] | None = None
        self._n_bins: int | None = None
        if frame_source is not None:
            self.attach_source(frame_source)

    # ------------------------------------------------------------- frame feed
    def attach_source(self, source: np.ndarray | Callable[[int], np.ndarray]) -> None:
        """Attach the frame source: a (n_frames, n_bins) matrix or callable.

        A callable receives the frame index and returns one complex frame;
        it may raise :class:`IndexError`/:class:`StopIteration` to signal
        exhaustion (the device then simply stops producing frames).
        """
        if callable(source):
            self._source = source
            self._n_bins = None
        else:
            matrix = np.asarray(source)
            if matrix.ndim != 2:
                raise ValueError(f"frame matrix must be 2-D, got shape {matrix.shape}")

            def indexed(k: int, _m=matrix) -> np.ndarray:
                return _m[k]

            self._source = indexed
            self._n_bins = int(matrix.shape[1])

    @property
    def n_bins(self) -> int | None:
        """Bins per frame, once known (after attach or the first tick)."""
        return self._n_bins

    @property
    def frames_produced(self) -> int:
        """Frames the sampler has produced since the last reset (unwrapped)."""
        return self._frame_counter

    @property
    def running(self) -> bool:
        """True when TRX_CTRL bit 0 is set."""
        return bool(self.registers.read_name("TRX_CTRL") & 0x01)

    @property
    def frame_period_s(self) -> float:
        """FRAME_RATE_DIV / 100 Hz base clock (div 4 → 40 ms)."""
        div = max(1, self.registers.read_name("FRAME_RATE_DIV"))
        return div / 100.0

    def encode_frame(self, frame: np.ndarray) -> bytes:
        """Quantise one complex frame to interleaved little-endian int16 I/Q."""
        frame = np.asarray(frame)
        gain = self.registers.read_name("TX_POWER") / 255.0
        scaled = frame * gain / self.full_scale
        interleaved = np.empty(2 * len(frame), dtype="<i2")
        interleaved[0::2] = np.clip(np.round(scaled.real * 32767), -32768, 32767)
        interleaved[1::2] = np.clip(np.round(scaled.imag * 32767), -32768, 32767)
        return interleaved.tobytes()

    def decode_frame(self, payload: bytes) -> np.ndarray:
        """Inverse of :meth:`encode_frame` (used by driver and tests)."""
        interleaved = np.frombuffer(payload, dtype="<i2").astype(float) / 32767.0
        gain = self.registers.read_name("TX_POWER") / 255.0
        if gain == 0:
            raise ValueError("TX_POWER is zero; frames carry no signal to decode")
        return (interleaved[0::2] + 1j * interleaved[1::2]) * self.full_scale / gain

    def tick(self) -> bool:
        """Advance one frame period; produce a frame when running.

        Returns True if a frame was pushed into the FIFO.
        """
        if not self.running or self._source is None:
            return False
        try:
            frame = self._source(self._frame_counter)
        except (IndexError, StopIteration):
            return False
        self._frame_counter += 1
        self._sync_frame_count()
        if self._n_bins is None:
            self._n_bins = int(len(frame))
        payload = self.encode_frame(frame)
        frame_bytes = len(payload)
        if len(self._fifo) + frame_bytes > self.fifo_capacity_bytes:
            # Overflow: drop the oldest frame, flag it.
            for _ in range(min(frame_bytes, len(self._fifo))):
                self._fifo.popleft()
            self._set_status(overflow=True)
        self._fifo.extend(payload)
        self._set_status(frame_ready=True)
        self._sync_count()
        return True

    # ----------------------------------------------------------- device state
    def _set_status(self, frame_ready: bool | None = None, overflow: bool | None = None) -> None:
        status = self.registers.read_name("STATUS")
        if frame_ready is not None:
            status = (status | 0x01) if frame_ready else (status & ~0x01)
        if overflow is not None:
            status = (status | 0x02) if overflow else (status & ~0x02)
        self.registers.write_name("STATUS", status & 0xFF, force=True)

    def _sync_frame_count(self) -> None:
        produced = self._frame_counter & 0xFFFF
        self.registers.write_name("FRAME_COUNT_L", produced & 0xFF, force=True)
        self.registers.write_name("FRAME_COUNT_H", (produced >> 8) & 0xFF, force=True)

    def _sync_count(self) -> None:
        count = len(self._fifo)
        self.registers.write_name("FIFO_COUNT_L", count & 0xFF, force=True)
        self.registers.write_name("FIFO_COUNT_H", (count >> 8) & 0xFF, force=True)
        if count == 0:
            self._set_status(frame_ready=False)

    def _soft_reset(self) -> None:
        self.registers.reset()
        self._fifo.clear()
        self._frame_counter = 0
        self._sync_count()

    # -------------------------------------------------------------- SPI slave
    def spi_transaction(self, mosi: bytes) -> bytes:
        """Answer one chip-select-framed transaction (see repro.hardware.spi)."""
        if len(mosi) < 2 or crc8(mosi[:-1]) != mosi[-1]:
            return bytes([NAK])
        body = mosi[:-1]
        command = body[0]
        if command & _CMD_WRITE:
            if len(body) != 2:
                return bytes([NAK])
            address, value = command & 0x3F, body[1]
            try:
                self.registers.write(address, value)
            except (KeyError, PermissionError, ValueError):
                return bytes([NAK])
            if address == REGISTERS["SOFT_RESET"].address and value & 0x01:
                self._soft_reset()
            return bytes([ACK])
        if command & _CMD_BURST:
            if len(body) != 3:
                return bytes([NAK])
            n = body[1] | (body[2] << 8)
            if n > len(self._fifo):
                return bytes([NAK])
            out = bytes(self._fifo.popleft() for _ in range(n))
            self._sync_count()
            return bytes([ACK]) + out
        # Plain register read. The leading ACK keeps a data byte of 0xEE
        # from masquerading as a NAK (see repro.hardware.spi).
        if len(body) != 1:
            return bytes([NAK])
        try:
            return bytes([ACK, self.registers.read(command & 0x3F)])
        except KeyError:
            return bytes([NAK])

    # --------------------------------------------------------------- plumbing
    def fifo_frames(self) -> Iterator[np.ndarray]:
        """Drain the FIFO frame by frame (device-side test helper)."""
        if self._n_bins is None:
            return
        frame_bytes = self._n_bins * 4
        while len(self._fifo) >= frame_bytes:
            payload = bytes(self._fifo.popleft() for _ in range(frame_bytes))
            self._sync_count()
            yield self.decode_frame(payload)

"""Byte-level SPI emulation with command framing.

The wire protocol (one chip-select assertion per transaction):

- register write:  ``0x80|addr, value, crc``           → ``ack(0x5A)``
- register read:   ``0x00|addr, crc``                  → ``ack, value``
- burst FIFO read: ``0x40|n_lo, n_hi, crc``            → ``ack, n bytes``

The final command byte is a CRC-8 (polynomial 0x07) over the preceding
bytes; the slave answers ``0xEE`` to a bad CRC and the master raises
:class:`SpiError`. Successful read replies lead with the ACK byte so a
data byte that happens to equal ``0xEE`` can never be mistaken for a
NAK — without the leading ACK, any register whose *value* is ``0xEE``
(e.g. a free-running frame counter passing 238) would be unreadable.
The framing is deliberately simple but real enough to exercise
driver-side error handling and to carry the full frame stream.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["crc8", "SpiSlave", "SpiBus", "SpiError", "ACK", "NAK"]

ACK = 0x5A
NAK = 0xEE

_CMD_WRITE = 0x80
_CMD_BURST = 0x40


class SpiError(RuntimeError):
    """Raised by the master on protocol errors (bad CRC, NAK, short reply)."""


def crc8(data: bytes, poly: int = 0x07, init: int = 0x00) -> int:
    """CRC-8 (ATM HEC polynomial x⁸+x²+x+1 by default)."""
    crc = init
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = ((crc << 1) ^ poly) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


class SpiSlave(Protocol):
    """Anything that can answer one chip-select-framed SPI transaction."""

    def spi_transaction(self, mosi: bytes) -> bytes:
        """Process master-out bytes, return master-in bytes."""


class SpiBus:
    """Master side of the emulated SPI link."""

    def __init__(self, slave: SpiSlave) -> None:
        self._slave = slave

    def _transact(self, payload: bytes) -> bytes:
        framed = payload + bytes([crc8(payload)])
        return self._slave.spi_transaction(framed)

    def write_register(self, address: int, value: int) -> None:
        """Write one register; raises :class:`SpiError` on NAK."""
        if not 0 <= address <= 0x3F:
            raise ValueError(f"address {address:#x} outside the 6-bit command space")
        if not 0 <= value <= 0xFF:
            raise ValueError(f"value {value} outside 8-bit range")
        reply = self._transact(bytes([_CMD_WRITE | address, value]))
        if len(reply) != 1 or reply[0] != ACK:
            raise SpiError(
                f"register write to {address:#04x} rejected "
                f"(reply {reply.hex() if reply else '<empty>'})"
            )

    def read_register(self, address: int) -> int:
        """Read one register."""
        if not 0 <= address <= 0x3F:
            raise ValueError(f"address {address:#x} outside the 6-bit command space")
        reply = self._transact(bytes([address]))
        if len(reply) == 1 and reply[0] == NAK:
            raise SpiError(f"register read from {address:#04x} NAKed")
        if len(reply) != 2 or reply[0] != ACK:
            raise SpiError(
                f"register read from {address:#04x} returned malformed reply "
                f"{reply.hex() if reply else '<empty>'}"
            )
        return reply[1]

    def burst_read(self, n_bytes: int) -> bytes:
        """Read ``n_bytes`` from the device FIFO in one transaction."""
        if not 0 < n_bytes <= 0xFFFF:
            raise ValueError(f"burst length {n_bytes} outside 1..65535")
        reply = self._transact(bytes([_CMD_BURST | 0x00, n_bytes & 0xFF, (n_bytes >> 8) & 0xFF]))
        if len(reply) == 1 and reply[0] == NAK:
            raise SpiError("burst read NAKed")
        if len(reply) != n_bytes + 1 or reply[0] != ACK:
            raise SpiError(f"burst read returned {len(reply)} of {n_bytes}+ack bytes")
        return reply[1:]

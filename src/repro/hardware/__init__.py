"""Emulated device stack: IR-UWB transceiver ↔ SPI ↔ host.

The paper's platform is a system-on-chip impulse radio "connected to a
Raspberry Pi via Serial Peripheral Interface (SPI)" (Sec. V). This package
emulates that stack end to end so the rest of the repository can exercise
realistic device I/O:

- :mod:`repro.hardware.registers` — the transceiver's register map.
- :mod:`repro.hardware.spi` — byte-level SPI bus with command framing and
  an error-detecting checksum.
- :mod:`repro.hardware.device` — :class:`~repro.hardware.device.UwbRadarDevice`,
  a register-programmable emulated chip with a frame FIFO, fed by the RF
  simulator.
- :mod:`repro.hardware.driver` — :class:`~repro.hardware.driver.XepDriver`,
  the host-side driver that configures the chip over SPI and streams
  frames, plus :class:`~repro.hardware.driver.FrameStream` for real-time
  iteration.
"""

from repro.hardware.device import UwbRadarDevice
from repro.hardware.driver import FrameStream, XepDriver
from repro.hardware.registers import Register, RegisterFile, REGISTERS
from repro.hardware.spi import SpiBus, SpiError

__all__ = [
    "UwbRadarDevice",
    "FrameStream",
    "XepDriver",
    "Register",
    "RegisterFile",
    "REGISTERS",
    "SpiBus",
    "SpiError",
]

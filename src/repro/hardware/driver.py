"""Host-side driver for the emulated transceiver.

:class:`XepDriver` is what runs on the paper's Raspberry Pi: it owns an
SPI bus, probes and configures the chip, and turns FIFO bytes back into
complex frames. :class:`FrameStream` pairs device ticks with driver reads
to emulate the live acquisition loop feeding the detector.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.hardware.device import UwbRadarDevice
from repro.hardware.registers import REGISTERS
from repro.hardware.spi import SpiBus, SpiError

__all__ = ["XepDriver", "FrameStream"]

_EXPECTED_CHIP_ID = 0xA4


class XepDriver:
    """Configure and read the radar over SPI."""

    def __init__(self, bus: SpiBus, n_bins: int) -> None:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.bus = bus
        self.n_bins = n_bins
        self._frame_bytes = n_bins * 4

    # --------------------------------------------------------------- plumbing
    def _addr(self, name: str) -> int:
        return REGISTERS[name].address

    def probe(self) -> int:
        """Verify the chip answers with the expected ID; returns version."""
        chip_id = self.bus.read_register(self._addr("CHIP_ID"))
        if chip_id != _EXPECTED_CHIP_ID:
            raise SpiError(f"unexpected chip id {chip_id:#04x}")
        return self.bus.read_register(self._addr("VERSION"))

    def soft_reset(self) -> None:
        """Reset the chip to its power-on state."""
        self.bus.write_register(self._addr("SOFT_RESET"), 0x01)

    def configure(self, frame_rate_div: int = 4, tx_power: int = 0xFF) -> None:
        """Program frame rate and TX power (div 4 = 25 FPS, the paper's)."""
        if not 1 <= frame_rate_div <= 0xFF:
            raise ValueError(f"frame_rate_div must be 1..255, got {frame_rate_div}")
        if not 1 <= tx_power <= 0xFF:
            raise ValueError(f"tx_power must be 1..255, got {tx_power}")
        self.bus.write_register(self._addr("FRAME_RATE_DIV"), frame_rate_div)
        self.bus.write_register(self._addr("TX_POWER"), tx_power)

    def start(self) -> None:
        """Start the sampler (TRX_CTRL bit 0)."""
        self.bus.write_register(self._addr("TRX_CTRL"), 0x01)

    def stop(self) -> None:
        """Stop the sampler."""
        self.bus.write_register(self._addr("TRX_CTRL"), 0x00)

    # ------------------------------------------------------------------ reads
    def status(self) -> tuple[bool, bool]:
        """(frame_ready, fifo_overflow)."""
        status = self.bus.read_register(self._addr("STATUS"))
        return bool(status & 0x01), bool(status & 0x02)

    def fifo_count(self) -> int:
        """Bytes currently in the device FIFO."""
        low = self.bus.read_register(self._addr("FIFO_COUNT_L"))
        high = self.bus.read_register(self._addr("FIFO_COUNT_H"))
        return low | (high << 8)

    def frame_count(self) -> int:
        """Device frame counter: frames *produced* since reset, mod 2**16.

        Unlike the FIFO count, this keeps advancing when frames are lost
        to FIFO overflow, so the host can anchor timestamps to device
        time and detect drops.
        """
        low = self.bus.read_register(self._addr("FRAME_COUNT_L"))
        high = self.bus.read_register(self._addr("FRAME_COUNT_H"))
        return low | (high << 8)

    def read_frame(self, device: UwbRadarDevice) -> np.ndarray | None:
        """Pop one frame from the FIFO, or None when none is complete.

        Decoding needs the device's quantiser parameters; in a real system
        those are datasheet constants, here we ask the device object.
        """
        if self.fifo_count() < self._frame_bytes:
            return None
        payload = self.bus.burst_read(self._frame_bytes)
        return device.decode_frame(payload)


class FrameStream:
    """Live acquisition loop: tick the device, read each frame.

    Iterating yields ``(timestamp_s, frame)`` pairs until the device's
    frame source is exhausted or ``n_frames`` have been delivered.

    Timestamps are anchored to the device's FRAME_COUNT register — the
    production index of the frame just read — not to the number of frames
    the host happened to receive. When the FIFO overflows and frames are
    lost, the timeline therefore keeps its true 1:1 mapping to device
    time instead of silently compressing, and the loss is surfaced
    through :attr:`dropped`.
    """

    def __init__(self, driver: XepDriver, device: UwbRadarDevice, n_frames: int | None = None):
        if n_frames is not None and n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        self.driver = driver
        self.device = device
        self.n_frames = n_frames
        #: Frames delivered to the host so far.
        self.delivered = 0
        #: Frames the device produced but the host never received (FIFO
        #: overflow drops).
        self.dropped = 0
        self._produced_unwrapped = 0
        self._last_raw_count = 0
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        """True once the device's frame source ran dry and the FIFO drained."""
        return self._exhausted

    def _produced_total(self) -> int:
        """Unwrap the 16-bit FRAME_COUNT register into a running total."""
        raw = self.driver.frame_count()
        if raw < self._last_raw_count:
            self._produced_unwrapped += 0x10000
        self._last_raw_count = raw
        return self._produced_unwrapped + raw

    def poll(self) -> tuple[float, np.ndarray] | None:
        """Advance one frame period and try to read one frame.

        Returns ``(timestamp_s, frame)`` when a frame came back, or None
        when no frame was available this period (check :attr:`exhausted`
        to distinguish a dry source from transient FIFO lag). SPI faults
        propagate as :class:`~repro.hardware.spi.SpiError` — callers that
        own a recovery path (e.g. ``repro.fleet``) catch them here.
        """
        if self._exhausted or (self.n_frames is not None and self.delivered >= self.n_frames):
            return None
        produced = self.device.tick()
        frame = self.driver.read_frame(self.device)
        if frame is None:
            if not produced:
                self._exhausted = True
            return None
        # The frame we just popped was produced `remaining` frames before
        # the newest one, so its production index — and with it the
        # device-time timestamp — is exact even across overflow drops.
        remaining = self.driver.fifo_count() // (self.driver.n_bins * 4)
        production_index = self._produced_total() - remaining - 1
        self.dropped = production_index - self.delivered
        timestamp = production_index * self.device.frame_period_s
        self.delivered += 1
        return timestamp, frame

    def __iter__(self) -> Iterator[tuple[float, np.ndarray]]:
        while self.n_frames is None or self.delivered < self.n_frames:
            item = self.poll()
            if item is None:
                if self._exhausted:
                    return
                continue
            yield item

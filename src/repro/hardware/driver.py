"""Host-side driver for the emulated transceiver.

:class:`XepDriver` is what runs on the paper's Raspberry Pi: it owns an
SPI bus, probes and configures the chip, and turns FIFO bytes back into
complex frames. :class:`FrameStream` pairs device ticks with driver reads
to emulate the live acquisition loop feeding the detector.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.hardware.device import UwbRadarDevice
from repro.hardware.registers import REGISTERS
from repro.hardware.spi import SpiBus, SpiError

__all__ = ["XepDriver", "FrameStream"]

_EXPECTED_CHIP_ID = 0xA4


class XepDriver:
    """Configure and read the radar over SPI."""

    def __init__(self, bus: SpiBus, n_bins: int) -> None:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.bus = bus
        self.n_bins = n_bins
        self._frame_bytes = n_bins * 4

    # --------------------------------------------------------------- plumbing
    def _addr(self, name: str) -> int:
        return REGISTERS[name].address

    def probe(self) -> int:
        """Verify the chip answers with the expected ID; returns version."""
        chip_id = self.bus.read_register(self._addr("CHIP_ID"))
        if chip_id != _EXPECTED_CHIP_ID:
            raise SpiError(f"unexpected chip id {chip_id:#04x}")
        return self.bus.read_register(self._addr("VERSION"))

    def soft_reset(self) -> None:
        """Reset the chip to its power-on state."""
        self.bus.write_register(self._addr("SOFT_RESET"), 0x01)

    def configure(self, frame_rate_div: int = 4, tx_power: int = 0xFF) -> None:
        """Program frame rate and TX power (div 4 = 25 FPS, the paper's)."""
        if not 1 <= frame_rate_div <= 0xFF:
            raise ValueError(f"frame_rate_div must be 1..255, got {frame_rate_div}")
        if not 1 <= tx_power <= 0xFF:
            raise ValueError(f"tx_power must be 1..255, got {tx_power}")
        self.bus.write_register(self._addr("FRAME_RATE_DIV"), frame_rate_div)
        self.bus.write_register(self._addr("TX_POWER"), tx_power)

    def start(self) -> None:
        """Start the sampler (TRX_CTRL bit 0)."""
        self.bus.write_register(self._addr("TRX_CTRL"), 0x01)

    def stop(self) -> None:
        """Stop the sampler."""
        self.bus.write_register(self._addr("TRX_CTRL"), 0x00)

    # ------------------------------------------------------------------ reads
    def status(self) -> tuple[bool, bool]:
        """(frame_ready, fifo_overflow)."""
        status = self.bus.read_register(self._addr("STATUS"))
        return bool(status & 0x01), bool(status & 0x02)

    def fifo_count(self) -> int:
        """Bytes currently in the device FIFO."""
        low = self.bus.read_register(self._addr("FIFO_COUNT_L"))
        high = self.bus.read_register(self._addr("FIFO_COUNT_H"))
        return low | (high << 8)

    def read_frame(self, device: UwbRadarDevice) -> np.ndarray | None:
        """Pop one frame from the FIFO, or None when none is complete.

        Decoding needs the device's quantiser parameters; in a real system
        those are datasheet constants, here we ask the device object.
        """
        if self.fifo_count() < self._frame_bytes:
            return None
        payload = self.bus.burst_read(self._frame_bytes)
        return device.decode_frame(payload)


class FrameStream:
    """Live acquisition loop: tick the device, read each frame.

    Iterating yields ``(timestamp_s, frame)`` pairs until the device's
    frame source is exhausted or ``n_frames`` have been delivered.
    """

    def __init__(self, driver: XepDriver, device: UwbRadarDevice, n_frames: int | None = None):
        if n_frames is not None and n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        self.driver = driver
        self.device = device
        self.n_frames = n_frames

    def __iter__(self) -> Iterator[tuple[float, np.ndarray]]:
        delivered = 0
        while self.n_frames is None or delivered < self.n_frames:
            produced = self.device.tick()
            frame = self.driver.read_frame(self.device)
            if frame is None:
                if not produced:
                    return  # source exhausted and FIFO drained
                continue
            timestamp = delivered * self.device.frame_period_s
            delivered += 1
            yield timestamp, frame

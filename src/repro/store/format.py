"""The ``.rst`` (radar store) container format, version 1.

A recording is an append-only sequence of checksummed blocks, so a
recorder can stream frames to disk while the session is still running
and a crash never corrupts what was already written — at worst the file
is missing its index and is recovered by a sequential block scan.

Byte layout (all integers little-endian)::

    File    = Header  Block*  IndexBlock  Trailer
    Header  = magic "RSTR" | version u16 | dtype u8 | flags u8
            | n_bins u32 | chunk_frames u32 | frame_rate_hz f64
            | reserved 36B | header_crc u32                      (64 B)
    Block   = kind u8 | reserved u8 u16 | n_frames u32
            | payload_len u64 | payload_crc u32 | header_crc u32 (24 B)
            | payload | zero padding to an 8-byte boundary
    Trailer = index_offset u64 | trailer_crc u32 | reserved u32
            | end magic "RSTREND\\n"                             (24 B)

Block kinds:

- ``CHUNK`` — ``n_frames`` float64 slow-time stamps followed by the
  ``(n_frames, n_bins)`` complex frame matrix, C-contiguous. Frames are
  8-byte aligned in the file, so a reader can hand out zero-copy mmap
  views.
- ``META`` — UTF-8 JSON object of free-form scenario metadata.
- ``LABELS`` — UTF-8 JSON ground truth (blink events, driver state,
  eye bin, posture-shift times).
- ``INDEX`` — UTF-8 JSON written at finalize: offsets and sizes of
  every prior block, the total frame count, and the SHA-256 content
  hash of all chunk payloads (the identity the catalog dedups by).

Every block carries two CRC-32 checksums: one over the 20-byte header
prefix (so a corrupted length field fails fast instead of driving a
bogus multi-gigabyte read) and one over the payload. The header carries
its own CRC as well. ``verify`` in :mod:`repro.store.reader` recomputes
all of them.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "END_MAGIC",
    "HEADER_SIZE",
    "BLOCK_HEADER_SIZE",
    "TRAILER_SIZE",
    "KIND_CHUNK",
    "KIND_META",
    "KIND_LABELS",
    "KIND_INDEX",
    "DTYPE_CODES",
    "CODE_DTYPES",
    "StoreError",
    "StoreFormatError",
    "StoreIntegrityError",
    "Header",
    "BlockHeader",
    "pack_header",
    "unpack_header",
    "pack_block_header",
    "unpack_block_header",
    "pack_trailer",
    "unpack_trailer",
    "padded_length",
    "encode_json_payload",
    "decode_json_payload",
    "crc32",
]

FORMAT_VERSION = 1
MAGIC = b"RSTR"
END_MAGIC = b"RSTREND\n"

HEADER_SIZE = 64
BLOCK_HEADER_SIZE = 24
TRAILER_SIZE = 24

KIND_CHUNK = 1
KIND_META = 2
KIND_LABELS = 3
KIND_INDEX = 4

#: On-disk dtype codes for the frame matrix.
DTYPE_CODES: dict[str, int] = {"complex64": 1, "complex128": 2}
CODE_DTYPES: dict[int, np.dtype] = {
    1: np.dtype("<c8"),
    2: np.dtype("<c16"),
}

_HEADER_STRUCT = struct.Struct("<4sHBBIId36s")
_BLOCK_STRUCT = struct.Struct("<BBHIQ")
_TRAILER_STRUCT = struct.Struct("<QII8s")


class StoreError(Exception):
    """Base class for all trace-store failures."""


class StoreFormatError(StoreError):
    """The bytes do not parse as a (finalized) store file."""


class StoreIntegrityError(StoreError):
    """The bytes parse, but a checksum or cross-check failed."""


def crc32(data: bytes | memoryview) -> int:
    """CRC-32 over ``data`` (zlib polynomial, zero seed)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def padded_length(payload_len: int) -> int:
    """Payload length rounded up to the 8-byte block alignment."""
    return (payload_len + 7) & ~7


@dataclass(frozen=True)
class Header:
    """Decoded file header."""

    version: int
    dtype: np.dtype
    n_bins: int
    chunk_frames: int
    frame_rate_hz: float

    @property
    def frame_nbytes(self) -> int:
        """Bytes per frame row in a chunk payload."""
        return self.n_bins * self.dtype.itemsize


@dataclass(frozen=True)
class BlockHeader:
    """Decoded block header."""

    kind: int
    n_frames: int
    payload_len: int
    payload_crc: int


def pack_header(
    dtype: np.dtype, n_bins: int, chunk_frames: int, frame_rate_hz: float
) -> bytes:
    """Encode the 64-byte file header (CRC appended)."""
    code = DTYPE_CODES.get(dtype.name)
    if code is None:
        raise StoreFormatError(
            f"unsupported frame dtype {dtype.name!r}; "
            f"expected one of {sorted(DTYPE_CODES)}"
        )
    body = _HEADER_STRUCT.pack(
        MAGIC, FORMAT_VERSION, code, 0, n_bins, chunk_frames, frame_rate_hz, b""
    )
    return body + struct.pack("<I", crc32(body))


def unpack_header(raw: bytes) -> Header:
    """Decode and validate a 64-byte file header."""
    if len(raw) < HEADER_SIZE:
        raise StoreFormatError(f"file too short for a store header ({len(raw)} bytes)")
    body, (crc,) = raw[: HEADER_SIZE - 4], struct.unpack("<I", raw[HEADER_SIZE - 4 : HEADER_SIZE])
    magic, version, code, _flags, n_bins, chunk_frames, frame_rate_hz, _pad = (
        _HEADER_STRUCT.unpack(body)
    )
    if magic != MAGIC:
        raise StoreFormatError(f"bad magic {magic!r}; not a radar store file")
    if crc32(body) != crc:
        raise StoreIntegrityError("file header checksum mismatch")
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"unsupported store format version {version} (reader speaks {FORMAT_VERSION})"
        )
    dtype = CODE_DTYPES.get(code)
    if dtype is None:
        raise StoreFormatError(f"unknown frame dtype code {code}")
    if n_bins < 1:
        raise StoreFormatError(f"header declares n_bins={n_bins}")
    if not frame_rate_hz > 0:
        raise StoreFormatError(f"header declares frame_rate_hz={frame_rate_hz}")
    return Header(
        version=version,
        dtype=dtype,
        n_bins=n_bins,
        chunk_frames=chunk_frames,
        frame_rate_hz=frame_rate_hz,
    )


def pack_block_header(kind: int, n_frames: int, payload: bytes | memoryview) -> bytes:
    """Encode a 24-byte block header for ``payload``."""
    prefix = _BLOCK_STRUCT.pack(kind, 0, 0, n_frames, len(payload))
    checks = struct.pack("<II", crc32(payload), crc32(prefix))
    return prefix + checks


def unpack_block_header(raw: bytes) -> BlockHeader:
    """Decode and validate a 24-byte block header (header CRC only)."""
    if len(raw) < BLOCK_HEADER_SIZE:
        raise StoreFormatError(f"truncated block header ({len(raw)} bytes)")
    prefix = raw[: _BLOCK_STRUCT.size]
    payload_crc, header_crc = struct.unpack(
        "<II", raw[_BLOCK_STRUCT.size : BLOCK_HEADER_SIZE]
    )
    if crc32(prefix) != header_crc:
        raise StoreIntegrityError("block header checksum mismatch")
    kind, _r1, _r2, n_frames, payload_len = _BLOCK_STRUCT.unpack(prefix)
    if kind not in (KIND_CHUNK, KIND_META, KIND_LABELS, KIND_INDEX):
        raise StoreFormatError(f"unknown block kind {kind}")
    return BlockHeader(
        kind=kind, n_frames=n_frames, payload_len=payload_len, payload_crc=payload_crc
    )


def pack_trailer(index_offset: int) -> bytes:
    """Encode the 24-byte end-of-file trailer."""
    return _TRAILER_STRUCT.pack(
        index_offset, crc32(struct.pack("<Q", index_offset)), 0, END_MAGIC
    )


def unpack_trailer(raw: bytes) -> int:
    """Decode the trailer; returns the index block's file offset."""
    if len(raw) < TRAILER_SIZE:
        raise StoreFormatError("file too short for a store trailer")
    index_offset, crc, _reserved, end_magic = _TRAILER_STRUCT.unpack(raw[-TRAILER_SIZE:])
    if end_magic != END_MAGIC:
        raise StoreFormatError(
            "missing end-of-file marker: recording was never finalized "
            "(open with recover=True to scan the blocks that were written)"
        )
    if crc32(struct.pack("<Q", index_offset)) != crc:
        raise StoreIntegrityError("trailer checksum mismatch")
    return index_offset


def encode_json_payload(obj: dict[str, Any]) -> bytes:
    """Canonical JSON encoding used for META/LABELS/INDEX payloads."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_json_payload(payload: bytes | memoryview, what: str) -> dict[str, Any]:
    """Inverse of :func:`encode_json_payload` with a typed failure."""
    try:
        obj = json.loads(bytes(payload).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreFormatError(f"{what} block does not decode as JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise StoreFormatError(f"{what} block must hold a JSON object")
    return obj

"""Tee live frames to disk while downstream consumers keep running.

:class:`Recorder` wraps a :class:`~repro.store.writer.TraceWriter` and
splits any ``(timestamp_s, frame)`` stream — a
:class:`~repro.hardware.driver.FrameStream`, simulator output, a replay
— into two consumers: the file on disk and whatever iterates the teed
stream. Frames pass through unchanged and unbuffered, so the detector
downstream sees exactly what it would have seen without the recorder.
"""

from __future__ import annotations

from pathlib import Path
from types import TracebackType
from typing import Any, Iterable, Iterator

import numpy as np

from repro.store.writer import DEFAULT_CHUNK_FRAMES, TraceWriter

__all__ = ["Recorder"]


class Recorder:
    """Record a frame stream to a ``.rst`` file as it flows past.

    Parameters mirror :class:`~repro.store.writer.TraceWriter`; the
    recorder owns the writer and must be closed (it is a context
    manager, and like the writer it finalizes only on clean exit so an
    aborted session leaves a crash-shaped, recoverable file).
    """

    def __init__(
        self,
        path: str | Path,
        n_bins: int,
        frame_rate_hz: float,
        dtype: np.dtype | type | str = np.complex64,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self._writer = TraceWriter(
            path,
            n_bins=n_bins,
            frame_rate_hz=frame_rate_hz,
            dtype=dtype,
            chunk_frames=chunk_frames,
            metadata=metadata,
        )

    @property
    def path(self) -> Path:
        """Destination file."""
        return self._writer.path

    @property
    def n_frames(self) -> int:
        """Frames recorded so far."""
        return self._writer.n_frames

    def content_hash(self) -> str:
        """Hex SHA-256 over all flushed chunk payloads so far."""
        return self._writer.content_hash()

    # ---------------------------------------------------------------- record
    def append(self, frame: np.ndarray, timestamp_s: float | None = None) -> None:
        """Record one frame pushed by the caller (the gateway's ingest tee).

        The pull-based :meth:`tee`/:meth:`drain` wrap this; push-based
        producers — an asyncio connection handler decoding frames off a
        socket — call it directly, one frame per wire message, before
        the frame is handed downstream.
        """
        self._writer.append(frame, timestamp_s)

    def tee(
        self, stream: Iterable[tuple[float, np.ndarray]]
    ) -> Iterator[tuple[float, np.ndarray]]:
        """Yield ``stream`` unchanged, appending each frame to disk.

        The write happens *before* the yield: every frame the consumer
        has seen is already in the writer's buffer, so a consumer crash
        can never lose frames it processed.
        """
        for timestamp_s, frame in stream:
            self._writer.append(frame, timestamp_s)
            yield timestamp_s, frame

    def drain(self, stream: Iterable[tuple[float, np.ndarray]]) -> int:
        """Record ``stream`` to exhaustion with no consumer; frame count."""
        count = 0
        for timestamp_s, frame in stream:
            self._writer.append(frame, timestamp_s)
            count += 1
        return count

    def set_labels(
        self,
        blink_events: list[tuple[float, float]] | None = None,
        state: str = "awake",
        eye_bin: int | None = None,
        posture_shift_times_s: list[float] | None = None,
    ) -> None:
        """Attach ground-truth labels (written when the file finalizes)."""
        self._writer.set_labels(
            blink_events=blink_events,
            state=state,
            eye_bin=eye_bin,
            posture_shift_times_s=posture_shift_times_s,
        )

    # ------------------------------------------------------------- lifecycle
    def close(self, finalize: bool = True) -> None:
        """Finalize (or abandon, with ``finalize=False``) the recording."""
        self._writer.close(finalize=finalize)

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close(finalize=exc_type is None)

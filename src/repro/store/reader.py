"""Memory-mapped reader for ``.rst`` recordings.

:class:`TraceReader` opens a finalized recording through its footer
index, maps the file, and hands out zero-copy numpy views of the frame
chunks. Every chunk's CRC is checked once, on first access, so corrupt
bytes raise :class:`~repro.store.format.StoreIntegrityError` instead of
flowing silently into the detector; :meth:`TraceReader.verify` checks
the whole file (every checksum, the index cross-references, and the
content hash) without waiting for reads to trip over the damage.

Unfinalized recordings — a crashed recorder, a power cut — are opened
with ``recover=True``, which rebuilds the index by scanning blocks
sequentially until the bytes run out.
"""

from __future__ import annotations

import hashlib
import mmap
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import Any, Iterator

import numpy as np

from repro.store.format import (
    BLOCK_HEADER_SIZE,
    HEADER_SIZE,
    KIND_CHUNK,
    KIND_INDEX,
    KIND_LABELS,
    KIND_META,
    TRAILER_SIZE,
    Header,
    StoreError,
    StoreFormatError,
    StoreIntegrityError,
    crc32,
    decode_json_payload,
    padded_length,
    unpack_block_header,
    unpack_header,
    unpack_trailer,
)

__all__ = ["TraceReader", "VerifyReport", "read_trace"]


@dataclass(frozen=True)
class _Chunk:
    """Index entry for one frame chunk."""

    offset: int  # file offset of the block header
    n_frames: int
    payload_len: int
    start: int  # cumulative frame index of the chunk's first frame


@dataclass
class VerifyReport:
    """Outcome of a full-file integrity check."""

    path: str
    n_chunks: int = 0
    n_frames: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no check failed."""
        return not self.errors


class TraceReader:
    """Read a chunked recording with zero-copy mmap access.

    Parameters
    ----------
    path:
        A finalized ``.rst`` file (or an unfinalized one with
        ``recover=True``).
    recover:
        Rebuild the index by scanning blocks sequentially instead of
        trusting the footer — for recordings that were never finalized.
        Labels/metadata blocks found during the scan are honoured.
    """

    def __init__(self, path: str | Path, recover: bool = False) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        self._closed = False
        try:
            self._map: mmap.mmap = mmap.mmap(
                self._fh.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as exc:
            self._fh.close()
            self._closed = True
            raise StoreFormatError(f"cannot map {self.path}: {exc}") from exc
        try:
            self.header: Header = unpack_header(self._map[:HEADER_SIZE])
            self._chunks: list[_Chunk] = []
            self._meta_block: tuple[int, int] | None = None
            self._labels_block: tuple[int, int] | None = None
            self._index: dict[str, Any] | None = None
            self._recovered = False
            if recover:
                self._scan_blocks()
                self._recovered = True
            else:
                self._load_index()
            self._verified_chunks: set[int] = set()
            self._metadata: dict[str, Any] | None = None
            self._labels: dict[str, Any] | None = None
        except BaseException:
            self.close()
            raise

    # ---------------------------------------------------------------- indexing
    def _block_at(self, offset: int) -> tuple[int, int, int, int]:
        """Parse the block header at ``offset``.

        Returns ``(kind, n_frames, payload_len, payload_offset)``; the
        header CRC is checked here, the payload CRC is not.
        """
        raw = self._map[offset : offset + BLOCK_HEADER_SIZE]
        block = unpack_block_header(raw)
        payload_offset = offset + BLOCK_HEADER_SIZE
        if payload_offset + block.payload_len > len(self._map):
            raise StoreFormatError(
                f"block at offset {offset} claims {block.payload_len} payload bytes "
                "past end of file"
            )
        return block.kind, block.n_frames, block.payload_len, payload_offset

    def _register_block(
        self, kind: int, n_frames: int, payload_len: int, offset: int, start: int
    ) -> int:
        if kind == KIND_CHUNK:
            expected = n_frames * (8 + self.header.frame_nbytes)
            if payload_len != expected:
                raise StoreFormatError(
                    f"chunk at offset {offset} holds {payload_len} bytes, "
                    f"expected {expected} for {n_frames} frames"
                )
            self._chunks.append(
                _Chunk(offset=offset, n_frames=n_frames, payload_len=payload_len, start=start)
            )
            return n_frames
        if kind == KIND_META:
            self._meta_block = (offset, payload_len)
        elif kind == KIND_LABELS:
            self._labels_block = (offset, payload_len)
        return 0

    def _load_index(self) -> None:
        index_offset = unpack_trailer(self._map[-TRAILER_SIZE:])
        kind, _n, payload_len, payload_offset = self._block_at(index_offset)
        if kind != KIND_INDEX:
            raise StoreFormatError("trailer does not point at an index block")
        payload = self._checked_payload(index_offset, payload_offset, payload_len)
        self._index = decode_json_payload(payload, "index")
        start = 0
        for entry in self._index.get("blocks", []):
            b_kind, b_offset, b_len, b_frames = (int(v) for v in entry)
            start += self._register_block(b_kind, b_frames, b_len, b_offset, start)
        declared = int(self._index.get("n_frames", -1))
        if declared != start:
            raise StoreIntegrityError(
                f"index declares {declared} frames but chunks hold {start}"
            )

    def _scan_blocks(self) -> None:
        offset = HEADER_SIZE
        start = 0
        size = len(self._map)
        while offset + BLOCK_HEADER_SIZE <= size:
            try:
                kind, n_frames, payload_len, payload_offset = self._block_at(offset)
            except StoreError:
                break  # torn tail: keep everything before it
            if kind == KIND_INDEX:
                break
            end = payload_offset + padded_length(payload_len)
            if end > size:
                break
            start += self._register_block(kind, n_frames, payload_len, offset, start)
            offset = end

    def _checked_payload(
        self, block_offset: int, payload_offset: int, payload_len: int
    ) -> memoryview:
        block = unpack_block_header(
            self._map[block_offset : block_offset + BLOCK_HEADER_SIZE]
        )
        payload = memoryview(self._map)[payload_offset : payload_offset + payload_len]
        if crc32(payload) != block.payload_crc:
            raise StoreIntegrityError(
                f"payload checksum mismatch in block at offset {block_offset} "
                f"of {self.path}"
            )
        return payload

    # ---------------------------------------------------------------- geometry
    @property
    def n_frames(self) -> int:
        """Total frames across all chunks."""
        if not self._chunks:
            return 0
        last = self._chunks[-1]
        return last.start + last.n_frames

    @property
    def n_bins(self) -> int:
        """Fast-time bins per frame."""
        return self.header.n_bins

    @property
    def frame_rate_hz(self) -> float:
        """Nominal slow-time frame rate from the header."""
        return self.header.frame_rate_hz

    @property
    def n_chunks(self) -> int:
        """Number of frame chunks."""
        return len(self._chunks)

    @property
    def recovered(self) -> bool:
        """True when the index was rebuilt by a sequential scan."""
        return self._recovered

    @property
    def duration_s(self) -> float:
        """Recording length implied by frame count and rate."""
        return self.n_frames / self.frame_rate_hz

    def content_hash(self) -> str:
        """Chunking-invariant data identity (recomputed on recover).

        Same construction as the writer:
        ``sha256(sha256(timestamps) || sha256(frames))``.
        """
        if self._index is not None and "content_hash" in self._index:
            return str(self._index["content_hash"])
        return self._recompute_content_hash()

    def _recompute_content_hash(self) -> str:
        times_hash = hashlib.sha256()
        frames_hash = hashlib.sha256()
        for chunk in self._chunks:
            payload = self._chunk_payload(chunk)
            split = chunk.n_frames * 8
            times_hash.update(payload[:split])
            frames_hash.update(payload[split:])
        combined = hashlib.sha256()
        combined.update(times_hash.digest())
        combined.update(frames_hash.digest())
        return combined.hexdigest()

    # -------------------------------------------------------------- chunk data
    def _chunk_payload(self, chunk: _Chunk) -> memoryview:
        return memoryview(self._map)[
            chunk.offset + BLOCK_HEADER_SIZE : chunk.offset
            + BLOCK_HEADER_SIZE
            + chunk.payload_len
        ]

    def _chunk_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(timestamps, frames) views of chunk ``i``, CRC-checked once."""
        chunk = self._chunks[i]
        if i not in self._verified_chunks:
            self._checked_payload(
                chunk.offset, chunk.offset + BLOCK_HEADER_SIZE, chunk.payload_len
            )
            self._verified_chunks.add(i)
        payload = self._chunk_payload(chunk)
        times = np.frombuffer(payload, dtype="<f8", count=chunk.n_frames)
        frames = np.frombuffer(
            payload,
            dtype=self.header.dtype,
            count=chunk.n_frames * self.header.n_bins,
            offset=chunk.n_frames * 8,
        ).reshape(chunk.n_frames, self.header.n_bins)
        return times, frames

    def chunk_frames(self, i: int) -> np.ndarray:
        """Zero-copy frame view of chunk ``i``."""
        return self._chunk_arrays(i)[1]

    def _chunk_range(self, start: int, stop: int) -> Iterator[tuple[int, int, int]]:
        """Yield ``(chunk index, local start, local stop)`` covering the span."""
        for i, chunk in enumerate(self._chunks):
            lo = max(start, chunk.start)
            hi = min(stop, chunk.start + chunk.n_frames)
            if lo < hi:
                yield i, lo - chunk.start, hi - chunk.start

    def read(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Frames ``[start:stop)`` — a zero-copy view when the span lies in
        one chunk, otherwise a fresh concatenated array."""
        start, stop = self._clamp(start, stop)
        parts = [
            self._chunk_arrays(i)[1][lo:hi] for i, lo, hi in self._chunk_range(start, stop)
        ]
        if len(parts) == 1:
            return parts[0]
        if not parts:
            return np.empty((0, self.n_bins), dtype=self.header.dtype)
        return np.concatenate(parts, axis=0)

    def timestamps(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Slow-time stamps ``[start:stop)`` (same span rules as :meth:`read`)."""
        start, stop = self._clamp(start, stop)
        parts = [
            self._chunk_arrays(i)[0][lo:hi] for i, lo, hi in self._chunk_range(start, stop)
        ]
        if len(parts) == 1:
            return parts[0]
        if not parts:
            return np.empty(0, dtype=float)
        return np.concatenate(parts)

    def _clamp(self, start: int, stop: int | None) -> tuple[int, int]:
        n = self.n_frames
        if start < 0 or (stop is not None and stop < start):
            raise ValueError(f"bad frame range [{start}, {stop})")
        return min(start, n), n if stop is None else min(stop, n)

    @property
    def frames(self) -> np.ndarray:
        """The full frame matrix (zero-copy for single-chunk files)."""
        return self.read()

    def iter_frames(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[tuple[float, np.ndarray]]:
        """Yield ``(timestamp_s, frame)`` pairs across the span."""
        start, stop = self._clamp(start, stop)
        for i, lo, hi in self._chunk_range(start, stop):
            times, frames = self._chunk_arrays(i)
            for k in range(lo, hi):
                yield float(times[k]), frames[k]

    # ------------------------------------------------------------ labels, meta
    @property
    def metadata(self) -> dict[str, Any]:
        """Free-form scenario metadata (decoded lazily, cached)."""
        if self._metadata is None:
            if self._meta_block is None:
                self._metadata = {}
            else:
                offset, length = self._meta_block
                payload = self._checked_payload(offset, offset + BLOCK_HEADER_SIZE, length)
                self._metadata = decode_json_payload(payload, "metadata")
        return self._metadata

    @property
    def labels(self) -> dict[str, Any] | None:
        """Ground-truth labels, or None when the recording has none.

        Decoded lazily on first access — listing or streaming a
        recording never pays for JSON parsing of the label block.
        """
        if self._labels is None and self._labels_block is not None:
            offset, length = self._labels_block
            payload = self._checked_payload(offset, offset + BLOCK_HEADER_SIZE, length)
            self._labels = decode_json_payload(payload, "labels")
        return self._labels

    # ------------------------------------------------------------------ verify
    def verify(self) -> VerifyReport:
        """Recheck every checksum and cross-reference in the file."""
        report = VerifyReport(path=str(self.path))
        try:
            unpack_header(self._map[:HEADER_SIZE])
        except StoreError as exc:
            report.errors.append(f"header: {exc}")
        times_hash = hashlib.sha256()
        frames_hash = hashlib.sha256()
        expected_start = 0
        for i, chunk in enumerate(self._chunks):
            # Frame counts and starts come from the block header, whose
            # own CRC already passed — trust them even when the payload
            # is damaged, so one corrupt byte convicts one chunk instead
            # of cascading into bogus start/count errors downstream.
            report.n_chunks += 1
            report.n_frames += chunk.n_frames
            if chunk.start != expected_start:
                report.errors.append(
                    f"chunk {i}: starts at frame {chunk.start}, expected {expected_start}"
                )
            expected_start = chunk.start + chunk.n_frames
            try:
                payload = self._checked_payload(
                    chunk.offset, chunk.offset + BLOCK_HEADER_SIZE, chunk.payload_len
                )
            except StoreError as exc:
                report.errors.append(f"chunk {i}: {exc}")
                continue
            split = chunk.n_frames * 8
            times_hash.update(payload[:split])
            frames_hash.update(payload[split:])
        for name, block in (("metadata", self._meta_block), ("labels", self._labels_block)):
            if block is None:
                continue
            offset, length = block
            try:
                payload = self._checked_payload(offset, offset + BLOCK_HEADER_SIZE, length)
                decode_json_payload(payload, name)
            except StoreError as exc:
                report.errors.append(f"{name}: {exc}")
        if self._index is not None:
            declared = int(self._index.get("n_frames", -1))
            if declared != report.n_frames:
                report.errors.append(
                    f"index: declares {declared} frames, chunks hold {report.n_frames}"
                )
            combined = hashlib.sha256()
            combined.update(times_hash.digest())
            combined.update(frames_hash.digest())
            recorded_hash = self._index.get("content_hash")
            if recorded_hash is not None and recorded_hash != combined.hexdigest():
                report.errors.append("index: content hash mismatch")
        return report

    # --------------------------------------------------------------- convert
    def to_trace(self) -> Any:
        """Materialize the recording as a :class:`~repro.sim.trace.RadarTrace`.

        Imported lazily so the store stays usable without the simulator
        package (and to avoid an import cycle: ``sim.trace`` dispatches
        its own save/load through this package).
        """
        from repro.physio.blink import BlinkEvent
        from repro.sim.trace import RadarTrace

        labels = self.labels if self.labels is not None else {}
        eye_bin = labels.get("eye_bin")
        return RadarTrace(
            frames=np.array(self.read()),
            timestamps_s=np.array(self.timestamps()),
            frame_rate_hz=self.frame_rate_hz,
            blink_events=[
                BlinkEvent(start_s=float(s), duration_s=float(d))
                for s, d in labels.get("blink_events", [])
            ],
            state=str(labels.get("state", "awake")),
            eye_bin=None if eye_bin is None else int(eye_bin),
            posture_shift_times_s=[
                float(t) for t in labels.get("posture_shift_times_s", [])
            ],
            metadata=dict(self.metadata),
        )

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the mapping and file handle."""
        if self._closed:
            return
        self._closed = True
        if hasattr(self, "_map"):
            try:
                self._map.close()
            except BufferError:
                # Zero-copy views into the map are still alive; the OS
                # releases the mapping when the last view is collected.
                pass
        self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def read_trace(path: str | Path, recover: bool = False) -> Any:
    """Load a ``.rst`` file as a :class:`~repro.sim.trace.RadarTrace`."""
    with TraceReader(path, recover=recover) as reader:
        return reader.to_trace()

"""Replay recorded sessions into every consumer the repo has.

:class:`ReplaySource` adapts a recording to all three frame-source
protocols in use:

- ``source(k) -> frame`` with ``IndexError`` past the end — the
  callable protocol of
  :meth:`repro.hardware.device.UwbRadarDevice.attach_source`, so a
  recording can drive the emulated transceiver and the full driver
  stack.
- ``iter(source)`` yielding ``(timestamp_s, frame)`` — the
  :class:`~repro.hardware.driver.FrameStream` shape consumed by
  recorders and streaming examples, with optional wall-clock pacing.
- ``np.asarray(source)`` / ``source.frames`` — the frame-matrix shape
  consumed by :class:`repro.fleet.session.DetectorSession` and
  :class:`repro.core.pipeline.BlinkRadar` directly.

Because the reader hands out bit-exact stored frames, a detector fed
through any of these paths produces byte-identical output to the live
session that was recorded (``complex128`` recordings) or to the
device-quantised live path (``complex64``).
"""

from __future__ import annotations

import time
from pathlib import Path
from types import TracebackType
from typing import Any, Iterator

import numpy as np

from repro.store.reader import TraceReader

__all__ = ["ReplaySource"]


class ReplaySource:
    """Drive downstream consumers from a ``.rst`` recording.

    Parameters
    ----------
    source:
        Path to a recording, or an already-open
        :class:`~repro.store.reader.TraceReader` (not closed by this
        object in that case).
    start_frame:
        Mid-file seek: frame index where replay begins. Indexing,
        iteration, and ``__array__`` all see the file from this frame
        on.
    pace:
        When true, :meth:`__iter__` sleeps between frames to match the
        recorded timestamp spacing (divided by ``speed``) instead of
        yielding as fast as the consumer pulls.
    speed:
        Pacing multiplier: 2.0 replays at twice the recorded rate.
        Ignored unless ``pace`` is set.
    """

    def __init__(
        self,
        source: str | Path | TraceReader,
        start_frame: int = 0,
        pace: bool = False,
        speed: float = 1.0,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        if isinstance(source, TraceReader):
            self._reader = source
            self._owns_reader = False
        else:
            self._reader = TraceReader(source)
            self._owns_reader = True
        if not 0 <= start_frame <= self._reader.n_frames:
            raise ValueError(
                f"start_frame {start_frame} outside recording of "
                f"{self._reader.n_frames} frames"
            )
        self.start_frame = start_frame
        self.pace = pace
        self.speed = speed
        self._closed = False

    # ---------------------------------------------------------------- shape
    @property
    def reader(self) -> TraceReader:
        """The underlying reader."""
        return self._reader

    @property
    def n_frames(self) -> int:
        """Frames visible from the current seek position."""
        return self._reader.n_frames - self.start_frame

    @property
    def n_bins(self) -> int:
        """Fast-time bins per frame."""
        return self._reader.n_bins

    @property
    def frame_rate_hz(self) -> float:
        """Nominal frame rate from the recording header."""
        return self._reader.frame_rate_hz

    def __len__(self) -> int:
        return self.n_frames

    def seek(self, frame_index: int) -> None:
        """Move the replay origin to an absolute frame index."""
        if not 0 <= frame_index <= self._reader.n_frames:
            raise ValueError(
                f"frame_index {frame_index} outside recording of "
                f"{self._reader.n_frames} frames"
            )
        self.start_frame = frame_index

    def seek_time(self, time_s: float) -> None:
        """Move the replay origin to the first frame at or after ``time_s``."""
        stamps = self._reader.timestamps()
        self.seek(int(np.searchsorted(stamps, time_s, side="left")))

    # ------------------------------------------------------------- protocols
    def __call__(self, k: int) -> np.ndarray:
        """Frame-source protocol: frame ``k`` of the replay window.

        Raises IndexError past the end, which the device treats as a dry
        source — exactly how a live session ends.
        """
        if k < 0 or k >= self.n_frames:
            raise IndexError(k)
        index = self.start_frame + k
        return self._reader.read(index, index + 1)[0]

    def __iter__(self) -> Iterator[tuple[float, np.ndarray]]:
        """Stream ``(timestamp_s, frame)`` pairs, optionally paced."""
        origin_monotonic_s = time.monotonic()
        origin_stamp_s: float | None = None
        for stamp_s, frame in self._reader.iter_frames(self.start_frame):
            if self.pace:
                if origin_stamp_s is None:
                    origin_stamp_s = stamp_s
                due_s = origin_monotonic_s + (stamp_s - origin_stamp_s) / self.speed
                lag_s = due_s - time.monotonic()
                if lag_s > 0:
                    time.sleep(lag_s)
            yield stamp_s, frame

    def __array__(self, dtype: Any = None, copy: Any = None) -> np.ndarray:
        """The replay window as a frame matrix (``np.asarray(source)``)."""
        frames = self._reader.read(self.start_frame)
        if dtype is not None:
            return np.asarray(frames, dtype=dtype)
        return np.asarray(frames)

    @property
    def frames(self) -> np.ndarray:
        """The replay window as a frame matrix."""
        return self._reader.read(self.start_frame)

    def timestamps(self) -> np.ndarray:
        """Slow-time stamps of the replay window."""
        return self._reader.timestamps(self.start_frame)

    def to_trace(self) -> Any:
        """The whole recording as a :class:`~repro.sim.trace.RadarTrace`."""
        return self._reader.to_trace()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the reader (only when this object opened it)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_reader:
            self._reader.close()

    def __enter__(self) -> "ReplaySource":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

"""Append-only streaming writer for ``.rst`` recordings.

:class:`TraceWriter` is the producer side of the store: frames are
appended one at a time (or in batches) and flushed to disk in
fixed-size checksummed chunks, so a recording in progress is always a
valid prefix of the final file. :meth:`TraceWriter.close` finalizes the
recording — remaining frames, labels, metadata, the index block and the
trailer are written and fsynced. A crash before ``close`` leaves a
recoverable, index-less file (see ``recover=True`` on the reader).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from types import TracebackType
from typing import IO, Any

import numpy as np

from repro.store.format import (
    FORMAT_VERSION,
    KIND_CHUNK,
    KIND_INDEX,
    KIND_LABELS,
    KIND_META,
    StoreError,
    encode_json_payload,
    pack_block_header,
    pack_header,
    pack_trailer,
    padded_length,
)

__all__ = ["TraceWriter", "write_trace", "DEFAULT_CHUNK_FRAMES"]

#: Frames buffered per chunk by default: 256 frames ≈ 10 s at the
#: paper's 25 FPS, and a 234-bin complex64 chunk lands near 0.5 MiB —
#: large enough to amortize block overhead, small enough that partial
#: reads stay partial.
DEFAULT_CHUNK_FRAMES = 256


class TraceWriter:
    """Stream complex baseband frames into a chunked ``.rst`` file.

    Parameters
    ----------
    path:
        Output file (conventionally ``*.rst``). Created/truncated.
    n_bins:
        Fast-time bins per frame; every appended frame must match.
    frame_rate_hz:
        Nominal slow-time frame rate, recorded in the header and used
        to synthesize timestamps when none are supplied.
    dtype:
        On-disk frame dtype: ``complex64`` (default — the device ADC's
        information content) or ``complex128`` (bit-exact for simulator
        output).
    chunk_frames:
        Frames buffered per chunk block.
    metadata:
        Free-form scenario descriptors, written at finalize.
    """

    def __init__(
        self,
        path: str | Path,
        n_bins: int,
        frame_rate_hz: float,
        dtype: np.dtype | type | str = np.complex64,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if frame_rate_hz <= 0:
            raise ValueError(f"frame_rate_hz must be positive, got {frame_rate_hz}")
        if chunk_frames < 1:
            raise ValueError(f"chunk_frames must be >= 1, got {chunk_frames}")
        self.path = Path(path)
        self.n_bins = n_bins
        self.frame_rate_hz = frame_rate_hz
        self.dtype = np.dtype(dtype)
        self.chunk_frames = chunk_frames
        self.metadata: dict[str, Any] = dict(metadata) if metadata is not None else {}
        self._labels: dict[str, Any] | None = None
        self._buffer_frames: list[np.ndarray] = []
        self._buffer_times: list[float] = []
        self._blocks: list[tuple[int, int, int, int]] = []  # kind, offset, len, frames
        # Two running digests — one over all timestamp bytes, one over
        # all frame bytes — combined at the end. Hashing the streams
        # separately (rather than chunk payloads) makes the content hash
        # independent of how the writer happened to chunk the data, so
        # catalog dedup matches recordings by *data*, not chunk layout.
        self._times_hash = hashlib.sha256()
        self._frames_hash = hashlib.sha256()
        self._n_frames = 0
        self._offset = 0
        self._closed = False
        self._finalized = False
        header = pack_header(self.dtype, n_bins, chunk_frames, frame_rate_hz)
        self._fh: IO[bytes] = open(self.path, "wb")
        try:
            self._fh.write(header)
            self._offset = len(header)
        except BaseException:
            self._fh.close()
            raise

    # ------------------------------------------------------------------ append
    @property
    def n_frames(self) -> int:
        """Frames appended so far (buffered + flushed)."""
        return self._n_frames

    @property
    def finalized(self) -> bool:
        """True once :meth:`close` has written the index and trailer."""
        return self._finalized

    def append(self, frame: np.ndarray, timestamp_s: float | None = None) -> None:
        """Append one frame; ``timestamp_s`` defaults to ``k / rate``."""
        frame = np.asarray(frame)
        if frame.shape != (self.n_bins,):
            raise ValueError(
                f"frame shape {frame.shape} does not match n_bins={self.n_bins}"
            )
        self._require_open()
        if timestamp_s is None:
            timestamp_s = self._n_frames / self.frame_rate_hz
        self._buffer_frames.append(frame.astype(self.dtype, copy=False))
        self._buffer_times.append(float(timestamp_s))
        self._n_frames += 1
        if len(self._buffer_frames) >= self.chunk_frames:
            self._flush_chunk()

    def append_batch(
        self, frames: np.ndarray, timestamps_s: np.ndarray | None = None
    ) -> None:
        """Append a ``(n, n_bins)`` frame matrix (vectorized fast path)."""
        frames = np.asarray(frames)
        if frames.ndim != 2 or frames.shape[1] != self.n_bins:
            raise ValueError(
                f"frame batch shape {frames.shape} does not match n_bins={self.n_bins}"
            )
        if timestamps_s is None:
            stamps = (self._n_frames + np.arange(len(frames))) / self.frame_rate_hz
        else:
            stamps = np.asarray(timestamps_s, dtype=float)
            if stamps.shape != (len(frames),):
                raise ValueError(
                    f"{stamps.shape} timestamps for {len(frames)} frames"
                )
        self._require_open()
        for frame, stamp in zip(frames, stamps):
            self._buffer_frames.append(frame.astype(self.dtype, copy=False))
            self._buffer_times.append(float(stamp))
            self._n_frames += 1
            if len(self._buffer_frames) >= self.chunk_frames:
                self._flush_chunk()

    def set_labels(
        self,
        blink_events: list[tuple[float, float]] | None = None,
        state: str = "awake",
        eye_bin: int | None = None,
        posture_shift_times_s: list[float] | None = None,
    ) -> None:
        """Attach ground-truth labels, written as a LABELS block at close."""
        self._require_open()
        events = blink_events if blink_events is not None else []
        shifts = posture_shift_times_s if posture_shift_times_s is not None else []
        self._labels = {
            "blink_events": [[float(s), float(d)] for s, d in events],
            "state": str(state),
            "eye_bin": None if eye_bin is None else int(eye_bin),
            "posture_shift_times_s": [float(t) for t in shifts],
        }

    # ------------------------------------------------------------------- flush
    def _require_open(self) -> None:
        if self._closed:
            raise StoreError(f"writer for {self.path} is closed")

    def _write_block(self, kind: int, n_frames: int, payload: bytes) -> None:
        header = pack_block_header(kind, n_frames, payload)
        pad = padded_length(len(payload)) - len(payload)
        self._blocks.append((kind, self._offset, len(payload), n_frames))
        self._fh.write(header)
        self._fh.write(payload)
        if pad:
            self._fh.write(b"\x00" * pad)
        self._offset += len(header) + len(payload) + pad

    def _flush_chunk(self) -> None:
        if not self._buffer_frames:
            return
        times = np.asarray(self._buffer_times, dtype="<f8")
        matrix = np.ascontiguousarray(
            np.stack(self._buffer_frames), dtype=self.dtype
        )
        times_bytes = times.tobytes()
        frame_bytes = matrix.tobytes()
        self._times_hash.update(times_bytes)
        self._frames_hash.update(frame_bytes)
        self._write_block(KIND_CHUNK, len(times), times_bytes + frame_bytes)
        self._buffer_frames.clear()
        self._buffer_times.clear()

    def flush(self) -> None:
        """Flush buffered frames as a (possibly short) chunk block."""
        self._require_open()
        self._flush_chunk()
        self._fh.flush()

    # ---------------------------------------------------------------- finalize
    def content_hash(self) -> str:
        """Chunking-invariant identity of the flushed data so far.

        ``sha256(sha256(timestamps) || sha256(frames))`` over the raw
        little-endian byte streams, in append order.
        """
        combined = hashlib.sha256()
        combined.update(self._times_hash.digest())
        combined.update(self._frames_hash.digest())
        return combined.hexdigest()

    def close(self, finalize: bool = True) -> None:
        """Flush, write META/LABELS/INDEX blocks and the trailer, fsync.

        ``finalize=False`` abandons the recording mid-stream — buffered
        frames are flushed but no index or trailer is written, leaving
        exactly what a crash would leave (the reader's ``recover=True``
        path; used by tests and by recorders told to abort).
        """
        if self._closed:
            return
        try:
            self._flush_chunk()
            if finalize:
                self._write_block(
                    KIND_META, 0, encode_json_payload(self.metadata)
                )
                if self._labels is not None:
                    self._write_block(
                        KIND_LABELS, 0, encode_json_payload(self._labels)
                    )
                index_offset = self._offset
                index = {
                    "format_version": FORMAT_VERSION,
                    "n_frames": self._n_frames,
                    "content_hash": self.content_hash(),
                    "blocks": [list(entry) for entry in self._blocks],
                }
                self._write_block(KIND_INDEX, 0, encode_json_payload(index))
                self._fh.write(pack_trailer(index_offset))
                self._finalized = True
            self._fh.flush()
            os.fsync(self._fh.fileno())
        finally:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        # Finalize on clean exit; on an exception, preserve the crash
        # shape (flushed chunks, no index) rather than pretending the
        # recording completed.
        self.close(finalize=exc_type is None)


def write_trace(
    path: str | Path,
    trace: Any,
    dtype: np.dtype | type | str | None = None,
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
) -> str:
    """Write a :class:`~repro.sim.trace.RadarTrace` as a ``.rst`` file.

    ``trace`` is duck-typed (frames, timestamps, labels, metadata) so
    this module never imports the simulator package. By default the
    on-disk dtype matches the trace's own frame dtype, keeping the
    round trip bit-exact; returns the file's content hash.
    """
    frames = np.asarray(trace.frames)
    if dtype is None:
        dtype = np.dtype("<c8") if frames.dtype == np.complex64 else np.dtype("<c16")
    with TraceWriter(
        path,
        n_bins=int(frames.shape[1]),
        frame_rate_hz=float(trace.frame_rate_hz),
        dtype=dtype,
        chunk_frames=chunk_frames,
        metadata=dict(trace.metadata),
    ) as writer:
        writer.append_batch(frames, np.asarray(trace.timestamps_s, dtype=float))
        writer.set_labels(
            blink_events=[(e.start_s, e.duration_s) for e in trace.blink_events],
            state=trace.state,
            eye_bin=trace.eye_bin,
            posture_shift_times_s=list(trace.posture_shift_times_s),
        )
    # After close every chunk is flushed, so the hash covers all frames.
    return writer.content_hash()

"""Directory-level catalog of ``.rst`` recordings.

A :class:`Catalog` manages a directory of recordings plus one
``manifest.json`` describing them: per-entry scenario metadata, frame
geometry, and the SHA-256 content hash each file's index declares.
The manifest is rewritten atomically (temp file + ``os.replace``) so a
crash mid-update never leaves a torn manifest, and entries are deduped
by content hash — importing the same frames twice registers one file.

:meth:`Catalog.get_or_simulate` is the expensive-capture cache used by
the evaluation battery: simulation results are keyed by a digest of
``(scenario, seed)`` and replayed from disk on every later request.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.store.format import StoreError, StoreFormatError
from repro.store.reader import TraceReader, VerifyReport
from repro.store.writer import DEFAULT_CHUNK_FRAMES, write_trace

__all__ = ["Catalog", "CatalogEntry", "MANIFEST_NAME", "scenario_key"]

MANIFEST_NAME = "manifest.json"

#: Manifest schema version, bumped independently of the file format.
MANIFEST_VERSION = 1


def scenario_key(scenario: Any, seed: int) -> str:
    """Deterministic cache key for one scenario realisation.

    Dataclass ``repr`` covers every field recursively, so any parameter
    change produces a new key; the digest keeps manifest keys short and
    filename-safe.
    """
    text = f"{scenario!r}|seed={seed}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class CatalogEntry:
    """One manifest row: a named recording and its descriptors."""

    def __init__(
        self,
        name: str,
        filename: str,
        content_hash: str,
        n_frames: int,
        n_bins: int,
        frame_rate_hz: float,
        metadata: dict[str, Any],
        key: str | None = None,
    ) -> None:
        self.name = name
        self.filename = filename
        self.content_hash = content_hash
        self.n_frames = n_frames
        self.n_bins = n_bins
        self.frame_rate_hz = frame_rate_hz
        self.metadata = metadata
        self.key = key

    def to_dict(self) -> dict[str, Any]:
        """Manifest JSON representation."""
        row: dict[str, Any] = {
            "filename": self.filename,
            "content_hash": self.content_hash,
            "n_frames": self.n_frames,
            "n_bins": self.n_bins,
            "frame_rate_hz": self.frame_rate_hz,
            "metadata": self.metadata,
        }
        if self.key is not None:
            row["key"] = self.key
        return row

    @classmethod
    def from_dict(cls, name: str, row: dict[str, Any]) -> "CatalogEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=name,
            filename=str(row["filename"]),
            content_hash=str(row["content_hash"]),
            n_frames=int(row["n_frames"]),
            n_bins=int(row["n_bins"]),
            frame_rate_hz=float(row["frame_rate_hz"]),
            metadata=dict(row.get("metadata", {})),
            key=None if row.get("key") is None else str(row["key"]),
        )


class Catalog:
    """A directory of recordings with an atomic JSON manifest."""

    def __init__(self, root: str | Path, create: bool = True) -> None:
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise StoreError(f"catalog directory {self.root} does not exist")
        self._entries: dict[str, CatalogEntry] = {}
        self._load_manifest()

    # --------------------------------------------------------------- manifest
    @property
    def manifest_path(self) -> Path:
        """Location of the catalog's manifest file."""
        return self.root / MANIFEST_NAME

    def _load_manifest(self) -> None:
        if not self.manifest_path.exists():
            return
        try:
            raw = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreFormatError(
                f"catalog manifest {self.manifest_path} is unreadable: {exc}"
            ) from exc
        if not isinstance(raw, dict) or "entries" not in raw:
            raise StoreFormatError(
                f"catalog manifest {self.manifest_path} has no entries table"
            )
        for name, row in raw["entries"].items():
            self._entries[str(name)] = CatalogEntry.from_dict(str(name), row)

    def _write_manifest(self) -> None:
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "entries": {
                name: entry.to_dict() for name, entry in sorted(self._entries.items())
            },
        }
        # The temp name must be unique per writer: two threads (or
        # processes) rewriting the manifest concurrently would otherwise
        # replace each other's temp file out from under the os.replace.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".manifest.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, self.manifest_path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(sorted(self._entries.values(), key=lambda e: e.name))

    def names(self) -> list[str]:
        """Entry names, sorted."""
        return sorted(self._entries)

    def entry(self, name: str) -> CatalogEntry:
        """The manifest row for ``name``."""
        if name not in self._entries:
            raise KeyError(f"catalog has no entry named {name!r}")
        return self._entries[name]

    def path(self, name: str) -> Path:
        """Absolute path of the recording behind ``name``."""
        return self.root / self.entry(name).filename

    def open(self, name: str) -> TraceReader:
        """Open the named recording (caller closes)."""
        return TraceReader(self.path(name))

    def find_by_hash(self, content_hash: str) -> CatalogEntry | None:
        """The entry whose file holds exactly these frames, if any."""
        for item in self._entries.values():
            if item.content_hash == content_hash:
                return item
        return None

    def find_by_key(self, key: str) -> CatalogEntry | None:
        """The entry cached under a :func:`scenario_key`, if any."""
        for item in self._entries.values():
            if item.key == key:
                return item
        return None

    # --------------------------------------------------------------- mutation
    def add(self, path: str | Path, name: str | None = None) -> CatalogEntry:
        """Register an existing ``.rst`` file (copied names stay outside).

        The file must already live inside the catalog directory. If a
        registered entry holds identical frames (same content hash), it
        is returned unchanged instead of adding a duplicate row.
        """
        path = Path(path)
        if path.parent.resolve() != self.root.resolve():
            raise StoreError(
                f"{path} is outside the catalog directory {self.root}; "
                "record into the catalog or move the file first"
            )
        with TraceReader(path) as reader:
            digest = reader.content_hash()
            existing = self.find_by_hash(digest)
            if existing is not None:
                return existing
            entry_name = path.stem if name is None else name
            if entry_name in self._entries:
                raise StoreError(f"catalog already has an entry named {entry_name!r}")
            item = CatalogEntry(
                name=entry_name,
                filename=path.name,
                content_hash=digest,
                n_frames=reader.n_frames,
                n_bins=reader.n_bins,
                frame_rate_hz=reader.frame_rate_hz,
                metadata=dict(reader.metadata),
            )
        self._entries[entry_name] = item
        self._write_manifest()
        return item

    def import_trace(
        self,
        trace: Any,
        name: str,
        key: str | None = None,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
    ) -> CatalogEntry:
        """Write a trace into the catalog and register it.

        Dedup: when an existing entry already holds identical frames the
        new file is discarded and the existing entry returned.
        """
        if name in self._entries:
            raise StoreError(f"catalog already has an entry named {name!r}")
        filename = f"{name}.rst"
        target = self.root / filename
        tmp = self.root / f".{name}.rst.tmp"
        digest = write_trace(tmp, trace, chunk_frames=chunk_frames)
        existing = self.find_by_hash(digest)
        if existing is not None:
            tmp.unlink()
            if key is not None and existing.key is None:
                # Adopt the cache key so later lookups hit this entry.
                existing.key = key
                self._write_manifest()
            return existing
        os.replace(tmp, target)
        item = CatalogEntry(
            name=name,
            filename=filename,
            content_hash=digest,
            n_frames=int(trace.n_frames),
            n_bins=int(trace.n_bins),
            frame_rate_hz=float(trace.frame_rate_hz),
            metadata=dict(trace.metadata),
            key=key,
        )
        self._entries[name] = item
        self._write_manifest()
        return item

    def remove(self, name: str, delete_file: bool = False) -> None:
        """Drop an entry from the manifest (optionally its file too)."""
        item = self.entry(name)
        del self._entries[name]
        self._write_manifest()
        if delete_file:
            target = self.root / item.filename
            if target.exists():
                target.unlink()

    # ------------------------------------------------------------------ cache
    def get_or_simulate(
        self,
        scenario: Any,
        seed: int,
        simulate_fn: Callable[..., Any] | None = None,
    ) -> Any:
        """Replay a cached realisation, simulating (and caching) on miss.

        The cache key digests ``repr((scenario, seed))``, so any change
        to the scenario invalidates the cached capture. ``simulate_fn``
        defaults to :func:`repro.sim.simulator.simulate` and is only
        called on a miss.
        """
        key = scenario_key(scenario, seed)
        hit = self.find_by_key(key)
        if hit is not None:
            with self.open(hit.name) as reader:
                return reader.to_trace()
        if simulate_fn is None:
            from repro.sim.simulator import simulate

            simulate_fn = simulate
        trace = simulate_fn(scenario, seed=seed)
        self.import_trace(trace, name=f"capture-{key}", key=key)
        return trace

    # ----------------------------------------------------------------- verify
    def verify(self) -> list[VerifyReport]:
        """Run a full integrity check over every registered recording."""
        reports: list[VerifyReport] = []
        for item in self:
            target = self.root / item.filename
            if not target.exists():
                report = VerifyReport(path=str(target))
                report.errors.append("file missing from catalog directory")
                reports.append(report)
                continue
            with TraceReader(target) as reader:
                report = reader.verify()
                if reader.content_hash() != item.content_hash:
                    report.errors.append(
                        "manifest: content hash does not match the file index"
                    )
            reports.append(report)
        return reports

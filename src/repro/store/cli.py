"""``python -m repro store`` — record, inspect, verify, and replay.

Subcommands::

    repro store record  --road bumpy --state drowsy -o drive.rst
    repro store record  --from-trace drive.npz -o drive.rst
    repro store replay  drive.rst
    repro store info    drive.rst
    repro store verify  drive.rst traces/
    repro store ls      traces/

``record`` streams a simulated session through a
:class:`~repro.store.record.Recorder` (the same tee the hardware path
uses); ``replay`` feeds the recording back through the detector and
scores it against the embedded ground truth; ``verify`` recomputes
every checksum and exits non-zero on damage.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.store.catalog import MANIFEST_NAME, Catalog
from repro.store.reader import TraceReader, VerifyReport
from repro.store.record import Recorder
from repro.store.replay import ReplaySource

__all__ = ["add_store_arguments", "run_store"]


def add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the store subcommands on ``parser``."""
    sub = parser.add_subparsers(dest="store_command", required=True)

    from repro.vehicle import ROAD_TYPES

    rec = sub.add_parser("record", help="record a session into a .rst file")
    rec.add_argument("--road", default="smooth_highway", choices=sorted(ROAD_TYPES))
    rec.add_argument("--state", default="awake", choices=["awake", "drowsy"])
    rec.add_argument("--duration", type=float, default=60.0, help="seconds")
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--participant", default="CLI")
    rec.add_argument(
        "--from-trace",
        default=None,
        metavar="PATH",
        help="convert an existing trace file instead of simulating",
    )
    rec.add_argument(
        "--chunk-frames", type=int, default=None, help="frames per chunk block"
    )
    rec.add_argument("-o", "--output", required=True, help="output .rst path")

    rep = sub.add_parser("replay", help="replay a recording through the detector")
    rep.add_argument("recording", help="input .rst path")
    rep.add_argument(
        "--start-frame", type=int, default=0, help="seek before replaying"
    )

    inf = sub.add_parser("info", help="describe a recording")
    inf.add_argument("recording", help="input .rst path")
    inf.add_argument(
        "--recover",
        action="store_true",
        help="scan an unfinalized recording instead of reading its index",
    )

    ver = sub.add_parser("verify", help="recompute every checksum")
    ver.add_argument(
        "paths", nargs="+", help=".rst files and/or catalog directories"
    )

    lst = sub.add_parser("ls", help="list a catalog directory")
    lst.add_argument("directory", help=f"directory holding {MANIFEST_NAME}")


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.sim.trace import RadarTrace
    from repro.store.writer import DEFAULT_CHUNK_FRAMES

    if args.from_trace is not None:
        trace = RadarTrace.load(args.from_trace)
    else:
        from repro.physio import ParticipantProfile
        from repro.sim.scenario import Scenario
        from repro.sim.simulator import simulate

        scenario = Scenario(
            participant=ParticipantProfile(args.participant),
            road=args.road,
            state=args.state,
            duration_s=args.duration,
        )
        trace = simulate(scenario, seed=args.seed)

    chunk_frames = (
        DEFAULT_CHUNK_FRAMES if args.chunk_frames is None else args.chunk_frames
    )
    metadata = dict(trace.metadata)
    metadata.setdefault("seed", args.seed)
    with Recorder(
        args.output,
        n_bins=trace.n_bins,
        frame_rate_hz=trace.frame_rate_hz,
        dtype=trace.frames.dtype,
        chunk_frames=chunk_frames,
        metadata=metadata,
    ) as recorder:
        recorded = recorder.drain(zip(trace.timestamps_s, trace.frames))
        recorder.set_labels(
            blink_events=[(e.start_s, e.duration_s) for e in trace.blink_events],
            state=trace.state,
            eye_bin=trace.eye_bin,
            posture_shift_times_s=list(trace.posture_shift_times_s),
        )
    # Read after close: only then does the hash cover the final chunk.
    digest = recorder.content_hash()
    print(
        f"recorded {args.output}: {recorded} frames x {trace.n_bins} bins, "
        f"{len(trace.blink_events)} blinks, sha256={digest[:16]}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.eval.report import format_table
    from repro.eval.runner import replay_session

    with ReplaySource(args.recording, start_frame=args.start_frame) as source:
        result = replay_session(source)
    rows = [
        ["true blinks", len(result.trace.blink_events)],
        ["detected", len(result.detection.events)],
        ["accuracy (paper metric)", f"{result.score.accuracy:.3f}"],
        ["precision", f"{result.score.precision:.3f}"],
        ["F1", f"{result.score.f1:.3f}"],
        ["restarts", len(result.detection.restart_times_s)],
    ]
    print(format_table(f"Replay of {args.recording}", ["quantity", "value"], rows))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.eval.report import format_table

    with TraceReader(args.recording, recover=args.recover) as reader:
        labels = reader.labels
        rows = [
            ["format version", reader.header.version],
            ["dtype", reader.header.dtype.name],
            ["frames x bins", f"{reader.n_frames} x {reader.n_bins}"],
            ["chunks", reader.n_chunks],
            ["frame rate (hz)", f"{reader.frame_rate_hz:.1f}"],
            ["duration (s)", f"{reader.duration_s:.1f}"],
            ["content sha256", reader.content_hash()[:16]],
            ["index", "recovered by scan" if reader.recovered else "footer"],
        ]
        if labels is not None:
            rows.append(["blinks (labelled)", len(labels.get("blink_events", []))])
            rows.append(["state", labels.get("state", "?")])
        for key in sorted(reader.metadata):
            rows.append([f"meta.{key}", reader.metadata[key]])
    print(format_table(f"Store file {args.recording}", ["field", "value"], rows))
    return 0


def _verify_one(path: Path) -> list[VerifyReport]:
    if path.is_dir():
        return Catalog(path, create=False).verify()
    with TraceReader(path) as reader:
        return [reader.verify()]


def _cmd_verify(args: argparse.Namespace) -> int:
    failures = 0
    for raw in args.paths:
        for report in _verify_one(Path(raw)):
            if report.ok:
                print(
                    f"ok       {report.path}: {report.n_frames} frames "
                    f"in {report.n_chunks} chunks"
                )
            else:
                failures += 1
                print(f"CORRUPT  {report.path}:")
                for error in report.errors:
                    print(f"         - {error}")
    return 1 if failures else 0


def _cmd_ls(args: argparse.Namespace) -> int:
    from repro.eval.report import format_table

    catalog = Catalog(args.directory, create=False)
    rows = [
        [
            entry.name,
            f"{entry.n_frames} x {entry.n_bins}",
            f"{entry.frame_rate_hz:.0f}",
            entry.content_hash[:12],
            "cached" if entry.key is not None else "",
        ]
        for entry in catalog
    ]
    print(
        format_table(
            f"Catalog {args.directory} ({len(catalog)} entries)",
            ["name", "frames x bins", "hz", "sha256", "role"],
            rows,
        )
    )
    return 0


def run_store(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``repro store`` invocation."""
    handlers = {
        "record": _cmd_record,
        "replay": _cmd_replay,
        "info": _cmd_info,
        "verify": _cmd_verify,
        "ls": _cmd_ls,
    }
    return handlers[args.store_command](args)

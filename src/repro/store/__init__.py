"""``repro.store`` — chunked on-disk container for radar recordings.

A dependency-free (numpy-only) trace store: append-only checksummed
chunks while a session is live (:mod:`~repro.store.writer`,
:mod:`~repro.store.record`), zero-copy mmap reads and full-file
verification afterwards (:mod:`~repro.store.reader`), a directory-level
manifest with content-hash dedup (:mod:`~repro.store.catalog`), and
replay adapters that drive the device stack, the fleet service, and the
evaluation harness from disk (:mod:`~repro.store.replay`). The byte
format is specified in :mod:`~repro.store.format` and
``docs/store.md``.
"""

from repro.store.catalog import Catalog, CatalogEntry, scenario_key
from repro.store.format import (
    FORMAT_VERSION,
    StoreError,
    StoreFormatError,
    StoreIntegrityError,
)
from repro.store.reader import TraceReader, VerifyReport, read_trace
from repro.store.record import Recorder
from repro.store.replay import ReplaySource
from repro.store.writer import DEFAULT_CHUNK_FRAMES, TraceWriter, write_trace

__all__ = [
    "FORMAT_VERSION",
    "DEFAULT_CHUNK_FRAMES",
    "StoreError",
    "StoreFormatError",
    "StoreIntegrityError",
    "TraceWriter",
    "TraceReader",
    "VerifyReport",
    "Recorder",
    "ReplaySource",
    "Catalog",
    "CatalogEntry",
    "scenario_key",
    "write_trace",
    "read_trace",
]

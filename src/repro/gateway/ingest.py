"""Network-fed detector sessions.

:class:`IngestSession` is a :class:`~repro.fleet.session.DetectorSession`
whose frames arrive over a socket instead of from a locally emulated
chip. The supervised lifecycle, the detector, the metrics, and the
worker-side :meth:`~repro.fleet.session.DetectorSession.process_batch`
path are all inherited unchanged — the vehicle's radar and SPI wire
simply live on the *other* end of the connection, so the produce side
here is inert and the gateway feeds the scheduler through
:meth:`~repro.fleet.scheduler.FleetScheduler.submit` with items built by
:meth:`IngestSession.make_item`.

Because the frames reach the detector bit-for-bit (the wire format
carries the driver's complex rows verbatim, CRC-protected), an ingest
session produces byte-identical detection output to a local replay of
the same recording — the property the gateway's end-to-end equality
test pins down.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.fleet.events import FleetEvent
from repro.fleet.metrics import MetricsRegistry
from repro.fleet.session import DetectorSession, FrameItem, SessionConfig

__all__ = ["IngestSession"]


class IngestSession(DetectorSession):
    """A supervised detector session whose frames arrive over the network.

    Parameters
    ----------
    session_id:
        Stable identifier, from the connection's HELLO.
    n_bins:
        Fast-time bins per frame, from the HELLO geometry.
    frame_rate_hz:
        The *declared* slow-time frame rate. The detector is built with
        exactly this rate (not the nearest register quantisation), so
        blink apex timestamps match a local replay of the same trace.
    config / metrics / sink:
        As for :class:`~repro.fleet.session.DetectorSession`.
    """

    def __init__(
        self,
        session_id: str,
        n_bins: int,
        frame_rate_hz: float,
        config: SessionConfig | None = None,
        metrics: MetricsRegistry | None = None,
        sink: Callable[[FleetEvent], None] | None = None,
    ) -> None:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if not frame_rate_hz > 0:
            raise ValueError(f"frame_rate_hz must be positive, got {frame_rate_hz}")
        # The emulated chip behind the inherited machinery needs *a*
        # world; one silent frame is enough — serve mode never pumps,
        # so the placeholder is never sampled.
        placeholder = np.zeros((1, n_bins), dtype=np.complex64)
        div = min(255, max(1, round(100.0 / frame_rate_hz)))
        base = config if config is not None else SessionConfig()
        super().__init__(
            session_id,
            placeholder,
            config=replace(base, frame_rate_div=div),
            metrics=metrics,
            sink=sink,
        )
        # The declared rate wins over the register-quantised one: blink
        # apex arithmetic divides by this, and it must match the far
        # side's recording exactly.
        self.frame_rate_hz = float(frame_rate_hz)
        self._period_s = 1.0 / self.frame_rate_hz

    def produce(self) -> FrameItem | None:
        """Ingest sessions have no local frame source; the pump gets None.

        Pending lifecycle requests (:meth:`request_restart` /
        :meth:`request_stop`) still go through the inherited machinery —
        a manual restart must bump the generation so queued frames from
        before it are flushed as stale, exactly as for a pumped session.
        """
        if self._restart_requested or self._stop_requested:
            return super().produce()
        return None

    def make_item(self, timestamp_s: float, frame: np.ndarray) -> FrameItem:
        """Build a scheduler queue item for one wire frame.

        Stamps the item with the current detector generation — the same
        tagging :meth:`~repro.fleet.session.DetectorSession.produce`
        performs — so frames queued before a restart are flushed as
        stale instead of being fed to the reborn detector.
        """
        return (self.generation, timestamp_s, frame)

"""Asyncio vehicle-side client for the gateway wire protocol.

:class:`GatewayClient` is one simulated vehicle: it connects, declares
itself with HELLO, streams FRAME messages, and consumes the server's
completion-watermark ACKs. Because an ack's ``seq`` field means "every
frame with a lower sequence number has fully left the server's
pipeline" (detected or shed), the client measures genuine end-to-end
latency — socket out to detector done — purely from its own clock, with
no trust in server-side timing.

The client is also the protocol's reference consumer: the load
generator (:mod:`~repro.gateway.loadgen`), the smoke-test harness and
the example all drive the server through it.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any

import numpy as np

from repro.gateway.protocol import (
    Ack,
    Bye,
    Drain,
    Frame,
    Hello,
    ProtocolError,
    WireDecoder,
    encode_frame_payload,
    encode_message,
)

__all__ = ["GatewayClient"]

_READ_BYTES = 1 << 16


class GatewayClient:
    """One vehicle's connection to a :class:`~repro.gateway.server.GatewayServer`.

    Use :meth:`connect` to build one; then the message-per-method API:
    :meth:`hello` → :meth:`send_frame` (many) → :meth:`drain` /
    :meth:`bye` → :meth:`close`. All methods must be called from the
    event loop that created the client.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = WireDecoder()
        self.session_index = 0
        #: (seq, perf-counter send stamp) for frames not yet covered by
        #: a completion ack, in send order.
        self._inflight: deque[tuple[int, float]] = deque()
        #: End-to-end latency samples (seconds), one per completion-ack
        #: watermark advance; the newest covered frame is the sample.
        self.latency_samples_s: list[float] = []
        #: Receipt watermark from the latest ack (highest seq received).
        self.acked_received = -1
        #: Completion count from the latest ack.
        self.acked_completed = 0
        #: Server-reported processed count from the latest ack.
        self.server_processed = 0
        self._hello_reply: asyncio.Future[Ack] | None = None
        self._drain_reply: asyncio.Future[Drain] | None = None
        self._bye_reply: asyncio.Future[Bye] | None = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        """Open a TCP connection to the gateway."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # --------------------------------------------------------------- messages
    async def hello(
        self,
        session_id: str,
        n_bins: int,
        frame_rate_hz: float,
        dtype: str = "c64",
    ) -> int:
        """Declare the vehicle; returns the server-assigned session index."""
        if self._hello_reply is not None:
            raise RuntimeError("hello already sent")
        self._hello_reply = asyncio.get_running_loop().create_future()
        self._dtype = dtype
        self._writer.write(
            encode_message(
                Hello(
                    session_id=session_id,
                    n_bins=n_bins,
                    frame_rate_hz=frame_rate_hz,
                    dtype=dtype,
                )
            )
        )
        await self._writer.drain()
        reply = await self._hello_reply
        self.session_index = reply.session
        return reply.session

    async def send_frame(self, seq: int, timestamp_s: float, frame: np.ndarray) -> None:
        """Stream one frame; ``timestamp_s`` is the device-time stamp."""
        payload = encode_frame_payload(frame, self._dtype)
        self._inflight.append((seq, time.perf_counter()))
        self._writer.write(
            encode_message(
                Frame(
                    session=self.session_index,
                    seq=seq,
                    timestamp_s=timestamp_s,
                    payload=payload,
                )
            )
        )
        await self._writer.drain()

    async def drain(self) -> dict[str, Any]:
        """Barrier: resolve when every sent frame left the server pipeline.

        Returns the server's ingest statistics (received / processed /
        dropped_queue / crc_failures / blinks / latency summary).
        """
        self._drain_reply = asyncio.get_running_loop().create_future()
        self._writer.write(encode_message(Drain(session=self.session_index)))
        await self._writer.drain()
        reply = await self._drain_reply
        self._drain_reply = None
        return dict(reply.stats or {})

    async def bye(self) -> None:
        """Orderly goodbye: server drains, finalizes the recording, replies."""
        self._bye_reply = asyncio.get_running_loop().create_future()
        self._writer.write(encode_message(Bye(session=self.session_index)))
        await self._writer.drain()
        await self._bye_reply
        self._bye_reply = None

    async def close(self) -> None:
        """Tear down the socket and the background reader."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer already gone

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------ reader side
    async def _read_loop(self) -> None:
        while True:
            data = await self._reader.read(_READ_BYTES)
            if not data:
                self._fail_waiters(ConnectionError("gateway closed the connection"))
                return
            for msg in self._decoder.feed(data):
                self._dispatch(msg)

    def _dispatch(self, msg: object) -> None:
        if isinstance(msg, Ack):
            if self._hello_reply is not None and not self._hello_reply.done():
                self._hello_reply.set_result(msg)
                return
            self._on_ack(msg)
        elif isinstance(msg, Drain):
            if self._drain_reply is not None and not self._drain_reply.done():
                self._drain_reply.set_result(msg)
        elif isinstance(msg, Bye):
            if self._bye_reply is not None and not self._bye_reply.done():
                self._bye_reply.set_result(msg)
        else:
            self._fail_waiters(ProtocolError(f"unexpected message from server: {msg!r}"))

    def _on_ack(self, ack: Ack) -> None:
        self.acked_received = max(self.acked_received, ack.received_seq)
        self.server_processed = max(self.server_processed, ack.processed)
        if ack.seq <= self.acked_completed:
            return  # receipt-only ack; the completion watermark held
        self.acked_completed = ack.seq
        now = time.perf_counter()
        newest: float | None = None
        while self._inflight and self._inflight[0][0] < ack.seq:
            newest = self._inflight.popleft()[1]
        if newest is not None:
            # One sample per watermark advance, taken on its *newest*
            # covered frame: older frames finished earlier than this ack
            # shows, so sampling them would inflate the tail.
            self.latency_samples_s.append(now - newest)

    def _fail_waiters(self, exc: Exception) -> None:
        for waiter in (self._hello_reply, self._drain_reply, self._bye_reply):
            if waiter is not None and not waiter.done():
                waiter.set_exception(exc)

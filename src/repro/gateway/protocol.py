"""Wire framing for the gateway: the SPI/driver frame format, on a socket.

Every message travels as a fixed 32-byte little-endian header followed
by a length-prefixed payload:

======  ====  =======================================================
offset  size  field
======  ====  =======================================================
0       4     magic ``b"RGW1"`` (format version baked into the magic)
4       1     message type (1 HELLO, 2 FRAME, 3 ACK, 4 DRAIN, 5 BYE)
5       1     reserved (0)
6       2     session index (u16; assigned by the server's HELLO ack)
8       8     sequence number (u64; FRAME: the device FRAME_COUNT
              production index, ACK: completion watermark — every seq
              strictly below it has left the pipeline)
16      8     device-time timestamp (f64 seconds; FRAME only)
24      4     payload length (u32, <= :data:`MAX_PAYLOAD_BYTES`)
28      4     CRC-32 over the payload
======  ====  =======================================================

The FRAME payload is the driver's frame, verbatim: the complex baseband
row the :class:`~repro.hardware.driver.FrameStream` delivers, as
little-endian ``complex64``/``complex128`` bytes (dtype declared once in
HELLO). The timestamp is the device-time stamp the driver anchors to the
chip's FRAME_COUNT register — production index over frame rate — so a
recording replayed over the wire lands on the far side with *identical*
frames and timestamps, and the server-side recording content-hashes
equal to the source trace.

:class:`WireDecoder` is a pure, incremental decoder: feed it arbitrary
byte chunks (a socket's ``read()`` boundaries never align with frames)
and collect complete messages. It is built to survive a hostile or
broken peer: garbage resynchronises on the next magic, CRC mismatches
and oversized lengths are counted and skipped, and no input can make it
raise. It has no asyncio dependency, so the same decoder serves the
asyncio server, the client, and the fuzz tests.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MAGIC",
    "HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "MSG_HELLO",
    "MSG_FRAME",
    "MSG_ACK",
    "MSG_DRAIN",
    "MSG_BYE",
    "ProtocolError",
    "Hello",
    "Frame",
    "Ack",
    "Drain",
    "Bye",
    "Message",
    "encode_message",
    "encode_frame_payload",
    "decode_frame_payload",
    "WireDecoder",
]

#: Magic + format version. Bumping the wire format bumps the last byte,
#: so a v1 decoder treats v2 traffic as garbage instead of misparsing it.
MAGIC = b"RGW1"

_HEADER = struct.Struct("<4sBBHQdII")

#: Fixed header size on the wire.
HEADER_BYTES = _HEADER.size

#: Upper bound on a payload: a 4096-bin complex128 frame is 64 KiB, so
#: 1 MiB leaves generous headroom while keeping a corrupted length field
#: from stalling the decoder on a gigabyte of "payload" that never comes.
MAX_PAYLOAD_BYTES = 1 << 20

MSG_HELLO = 1
MSG_FRAME = 2
MSG_ACK = 3
MSG_DRAIN = 4
MSG_BYE = 5

_KNOWN_TYPES = frozenset({MSG_HELLO, MSG_FRAME, MSG_ACK, MSG_DRAIN, MSG_BYE})

#: Wire dtype codes for FRAME payloads: little-endian complex pairs.
FRAME_DTYPES: dict[str, np.dtype] = {
    "c64": np.dtype("<c8"),
    "c128": np.dtype("<c16"),
}

_ACK_PAYLOAD = struct.Struct("<QQ")


class ProtocolError(ValueError):
    """A semantically invalid message (bad HELLO fields, wrong dtype...).

    The decoder itself never raises this for malformed *bytes* — those
    are counted and resynchronised past — only the typed accessors do,
    for messages that parsed but carry unusable content.
    """


@dataclass(frozen=True)
class Hello:
    """Connection opener: declares the vehicle and its frame geometry."""

    session_id: str
    n_bins: int
    frame_rate_hz: float
    dtype: str = "c64"

    def __post_init__(self) -> None:
        if self.n_bins < 1:
            raise ProtocolError(f"n_bins must be >= 1, got {self.n_bins}")
        if not self.frame_rate_hz > 0:
            raise ProtocolError(f"frame_rate_hz must be positive, got {self.frame_rate_hz}")
        if self.dtype not in FRAME_DTYPES:
            raise ProtocolError(f"unknown frame dtype {self.dtype!r}")
        if not self.session_id:
            raise ProtocolError("session_id must be non-empty")


@dataclass(frozen=True)
class Frame:
    """One radar frame: payload bytes plus its device-time coordinates."""

    session: int
    seq: int
    timestamp_s: float
    payload: bytes


@dataclass(frozen=True)
class Ack:
    """Server progress report.

    ``seq`` is the *completion watermark*: every frame with a sequence
    number strictly below it has left the pipeline (processed by the
    detector or shed by backpressure); 0 means nothing has finished yet.
    ``received_seq`` is the highest sequence number received so far and
    ``processed`` the total frames the detector has consumed — together
    they let a client separate transport latency from processing
    latency and detect queue drops.
    """

    session: int
    seq: int
    received_seq: int = 0
    processed: int = 0


@dataclass(frozen=True)
class Drain:
    """Flush barrier. Client sends ``stats=None``; the server replies
    once the session's queue is empty, with ingest statistics attached."""

    session: int
    stats: dict[str, object] | None = None


@dataclass(frozen=True)
class Bye:
    """Orderly goodbye; the server finalizes the session and echoes it."""

    session: int


Message = Hello | Frame | Ack | Drain | Bye


def _pack(msg_type: int, session: int, seq: int, timestamp_s: float, payload: bytes) -> bytes:
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte cap"
        )
    header = _HEADER.pack(
        MAGIC, msg_type, 0, session, seq, timestamp_s, len(payload), zlib.crc32(payload)
    )
    return header + payload


def encode_message(msg: Message) -> bytes:
    """Serialize one message to wire bytes."""
    if isinstance(msg, Hello):
        payload = json.dumps(
            {
                "session_id": msg.session_id,
                "n_bins": msg.n_bins,
                "frame_rate_hz": msg.frame_rate_hz,
                "dtype": msg.dtype,
            },
            sort_keys=True,
        ).encode()
        return _pack(MSG_HELLO, 0, 0, 0.0, payload)
    if isinstance(msg, Frame):
        return _pack(MSG_FRAME, msg.session, msg.seq, msg.timestamp_s, msg.payload)
    if isinstance(msg, Ack):
        payload = _ACK_PAYLOAD.pack(msg.received_seq, msg.processed)
        return _pack(MSG_ACK, msg.session, msg.seq, 0.0, payload)
    if isinstance(msg, Drain):
        payload = b"" if msg.stats is None else json.dumps(msg.stats, sort_keys=True).encode()
        return _pack(MSG_DRAIN, msg.session, 0, 0.0, payload)
    return _pack(MSG_BYE, msg.session, 0, 0.0, b"")


def encode_frame_payload(frame: np.ndarray, dtype: str = "c64") -> bytes:
    """One complex frame as wire payload bytes (little-endian)."""
    wire_dtype = FRAME_DTYPES.get(dtype)
    if wire_dtype is None:
        raise ProtocolError(f"unknown frame dtype {dtype!r}")
    return np.ascontiguousarray(frame, dtype=wire_dtype).tobytes()


def decode_frame_payload(payload: bytes, n_bins: int, dtype: str = "c64") -> np.ndarray:
    """Inverse of :func:`encode_frame_payload`; validates the length."""
    wire_dtype = FRAME_DTYPES.get(dtype)
    if wire_dtype is None:
        raise ProtocolError(f"unknown frame dtype {dtype!r}")
    expected = n_bins * wire_dtype.itemsize
    if len(payload) != expected:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes does not match "
            f"{n_bins} bins x {wire_dtype.itemsize} bytes"
        )
    return np.frombuffer(payload, dtype=wire_dtype).copy()


def _decode_hello(payload: bytes) -> Hello:
    try:
        fields = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"HELLO payload is not valid JSON: {exc}") from exc
    if not isinstance(fields, dict):
        raise ProtocolError("HELLO payload must be a JSON object")
    try:
        return Hello(
            session_id=str(fields["session_id"]),
            n_bins=int(fields["n_bins"]),
            frame_rate_hz=float(fields["frame_rate_hz"]),
            dtype=str(fields.get("dtype", "c64")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ProtocolError):
            raise
        raise ProtocolError(f"HELLO payload missing/invalid field: {exc}") from exc


def _decode_drain(session: int, payload: bytes) -> Drain:
    if not payload:
        return Drain(session=session, stats=None)
    try:
        stats = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"DRAIN payload is not valid JSON: {exc}") from exc
    if not isinstance(stats, dict):
        raise ProtocolError("DRAIN payload must be a JSON object")
    return Drain(session=session, stats=stats)


class WireDecoder:
    """Incremental, crash-proof decoder for the gateway wire format.

    Feed byte chunks of any size; complete messages come back in order.
    Robustness policy (exercised by the fuzz suite):

    - Bytes that do not start with the magic are skipped until the next
      magic (``resync_bytes`` counts them). A bit flip in a header
      usually lands here.
    - A header whose payload length exceeds :data:`MAX_PAYLOAD_BYTES`
      is treated as corruption, not honoured (``oversized``): the
      decoder resynchronises just past the magic instead of waiting
      for a payload that will never arrive.
    - A payload whose CRC-32 does not match is *rejected* and counted
      (``crc_failures``); because the length field may itself be the
      corrupted part, the decoder resynchronises past the magic rather
      than trusting the length to skip — the next genuine frame
      boundary is found by magic scan.
    - Unknown message types are counted (``unknown_types``) and skipped
      the same way.

    Messages with unusable *content* (a HELLO whose JSON is broken)
    become ``semantic_errors`` rather than exceptions; :meth:`feed`
    never raises on any input.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Bytes skipped while hunting for a magic.
        self.resync_bytes = 0
        #: Payloads rejected by CRC-32.
        self.crc_failures = 0
        #: Headers rejected for an impossible payload length.
        self.oversized = 0
        #: Headers with an unrecognised message type.
        self.unknown_types = 0
        #: Structurally valid messages whose content failed validation.
        self.semantic_errors = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete message."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Message]:
        """Consume ``data`` and return every message completed by it."""
        self._buffer.extend(data)
        messages: list[Message] = []
        while True:
            msg = self._next_message()
            if msg is None:
                break
            messages.append(msg)
        return messages

    # ------------------------------------------------------------ internals
    def _discard(self, count: int) -> None:
        del self._buffer[:count]
        self.resync_bytes += count

    def _resync_past_magic(self) -> None:
        """Drop the current (corrupt) magic and hunt for the next one."""
        self._discard(len(MAGIC))
        self._align_to_magic()

    def _align_to_magic(self) -> None:
        """Discard buffered bytes up to the next magic (or a possible
        magic prefix at the tail, which a later feed may complete)."""
        buffer = self._buffer
        index = buffer.find(MAGIC)
        if index >= 0:
            if index:
                self._discard(index)
            return
        # No full magic: keep the longest tail that is a magic prefix.
        keep = 0
        for size in range(min(len(MAGIC) - 1, len(buffer)), 0, -1):
            if buffer[-size:] == MAGIC[:size]:
                keep = size
                break
        self._discard(len(buffer) - keep)

    def _next_message(self) -> Message | None:
        # Iterative, not recursive: a feed full of back-to-back corrupt
        # frames must cost a loop iteration each, never stack depth.
        while True:
            self._align_to_magic()
            if len(self._buffer) < HEADER_BYTES:
                return None
            (_magic, msg_type, _reserved, session, seq, timestamp_s, length, crc) = (
                _HEADER.unpack(bytes(self._buffer[:HEADER_BYTES]))
            )
            if length > MAX_PAYLOAD_BYTES:
                self.oversized += 1
                self._resync_past_magic()
                continue
            if len(self._buffer) < HEADER_BYTES + length:
                return None
            payload = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
            if zlib.crc32(payload) != crc:
                # The length field itself may be the corrupt part, so do
                # not trust it to skip: resync on the next magic instead.
                self.crc_failures += 1
                self._resync_past_magic()
                continue
            if msg_type not in _KNOWN_TYPES:
                self.unknown_types += 1
                self._resync_past_magic()
                continue
            del self._buffer[: HEADER_BYTES + length]
            try:
                return self._build(msg_type, session, seq, timestamp_s, payload)
            except ProtocolError:
                self.semantic_errors += 1
                continue

    def _build(
        self, msg_type: int, session: int, seq: int, timestamp_s: float, payload: bytes
    ) -> Message:
        if msg_type == MSG_HELLO:
            return _decode_hello(payload)
        if msg_type == MSG_FRAME:
            return Frame(session=session, seq=seq, timestamp_s=timestamp_s, payload=payload)
        if msg_type == MSG_ACK:
            if len(payload) != _ACK_PAYLOAD.size:
                raise ProtocolError(
                    f"ACK payload must be {_ACK_PAYLOAD.size} bytes, got {len(payload)}"
                )
            received_seq, processed = _ACK_PAYLOAD.unpack(payload)
            return Ack(session=session, seq=seq, received_seq=received_seq, processed=processed)
        if msg_type == MSG_DRAIN:
            return _decode_drain(session, payload)
        return Bye(session=session)

"""Minimal HTTP observability endpoint for the gateway.

:class:`MetricsHttpServer` is a dependency-free asyncio HTTP/1.1
responder with exactly three routes:

- ``GET /metrics`` — the shared registry in Prometheus text exposition
  format (:meth:`~repro.fleet.metrics.MetricsRegistry.render_prometheus`).
- ``GET /healthz`` — a JSON liveness snapshot (the gateway's
  :meth:`~repro.gateway.server.GatewayServer.health` payload).
- ``GET /ready`` — readiness probe: 200 while the gateway accepts
  traffic, 503 while stopped or draining.

It deliberately speaks just enough HTTP for a scraper and a load
balancer: one request per connection, ``Connection: close``, no
keep-alive, no TLS. Anything fancier belongs in front of it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

from repro.fleet.metrics import MetricsRegistry

__all__ = ["MetricsHttpServer"]

#: Upper bound on request head size; a scrape request is ~100 bytes.
_MAX_REQUEST_BYTES = 8192

#: Content type Prometheus scrapers expect for the text format.
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _response(status: int, reason: str, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class MetricsHttpServer:
    """Serve ``/metrics``, ``/healthz`` and ``/ready`` off a registry.

    Parameters
    ----------
    registry:
        The metrics registry to render on ``/metrics``.
    host / port:
        Listen address; port 0 binds an ephemeral port (see
        :attr:`port` after :meth:`start`).
    health:
        Optional callable returning the ``/healthz`` JSON payload
        (defaults to a bare ``{"status": "ok"}``).
    ready:
        Optional callable returning readiness for ``/ready`` (defaults
        to always ready).
    namespace:
        Prometheus metric-name namespace prefix.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        health: Callable[[], dict[str, Any]] | None = None,
        ready: Callable[[], bool] | None = None,
        namespace: str = "repro",
    ) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._health = health
        self._ready = ready
        self.namespace = namespace
        self._server: asyncio.base_events.Server | None = None

    @property
    def port(self) -> int:
        """The bound listen port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("metrics server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Bind and start answering scrapes."""
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        self._server = await asyncio.start_server(
            self._serve_request, host=self.host, port=self._requested_port
        )

    async def stop(self) -> None:
        """Stop listening. Idempotent."""
        server = self._server
        self._server = None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ---------------------------------------------------------------- serving
    async def _serve_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ConnectionError):
            writer.close()
            return
        if len(head) > _MAX_REQUEST_BYTES:
            writer.write(_response(431, "Request Header Fields Too Large", "text/plain", b""))
        else:
            writer.write(self._route(head.split(b"\r\n", 1)[0].decode("latin-1")))
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # scraper hung up first; response delivery is best-effort

    def _route(self, request_line: str) -> bytes:
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return _response(400, "Bad Request", "text/plain", b"malformed request line\n")
        method, target = parts[0], parts[1].split("?", 1)[0]
        if method != "GET":
            return _response(405, "Method Not Allowed", "text/plain", b"GET only\n")
        if target == "/metrics":
            body = self.registry.render_prometheus(self.namespace).encode("utf-8")
            return _response(200, "OK", _PROM_CONTENT_TYPE, body)
        if target == "/healthz":
            payload = self._health() if self._health is not None else {"status": "ok"}
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            return _response(200, "OK", "application/json", body)
        if target == "/ready":
            ready = self._ready() if self._ready is not None else True
            status, reason = (200, "OK") if ready else (503, "Service Unavailable")
            body = (json.dumps({"ready": ready}) + "\n").encode("utf-8")
            return _response(status, reason, "application/json", body)
        return _response(404, "Not Found", "text/plain", b"unknown path\n")

"""Asyncio TCP ingest server: many vehicle connections, one fleet.

:class:`GatewayServer` is the network front door of the detection
service. Each accepted connection speaks the
:mod:`~repro.gateway.protocol` wire format: a HELLO declares the
vehicle, every FRAME carries one driver frame with its device-time
timestamp, and the server multiplexes all of them into a single
:class:`~repro.fleet.scheduler.FleetScheduler` worker pool through the
scheduler's public non-blocking :meth:`~repro.fleet.scheduler.FleetScheduler.submit`
path — so socket ingest gets exactly the fleet's bounded queues,
drop-oldest backpressure, and metrics.

Operational properties:

- **Per-connection fault isolation.** A connection handler that throws
  (malformed traffic, a decode bug, a dropped socket) is counted,
  cleaned up, and closed; the accept loop and every other vehicle keep
  running.
- **Recording tee.** With ``record_dir`` set, every ingested frame is
  appended to a per-session ``.rst`` recording *before* it is handed to
  the scheduler (the store's write-before-yield discipline), and the
  finalized file is registered in the directory's
  :class:`~repro.store.catalog.Catalog` — the gateway doubles as a
  fleet-wide trace collector.
- **Completion-watermark ACKs.** A per-connection pump acknowledges the
  highest sequence number that has fully left the pipeline (detected or
  shed), which is what lets a remote client measure true end-to-end
  latency without the server timing anything on its behalf.
- **Graceful drain.** :meth:`shutdown` (wired to SIGTERM/SIGINT by
  :meth:`run_until_signal`) stops accepting, lets queued frames drain,
  stops the workers, and finalizes every recording.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
from pathlib import Path
from typing import Any, Callable

from repro.fleet.metrics import MetricsRegistry
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.session import SessionConfig
from repro.gateway.ingest import IngestSession
from repro.gateway.protocol import (
    Ack,
    Bye,
    Drain,
    Frame,
    Hello,
    Message,
    ProtocolError,
    WireDecoder,
    decode_frame_payload,
    encode_message,
)
from repro.store.record import Recorder

__all__ = ["GatewayServer"]

#: Socket read size: large enough to carry dozens of frames per
#: syscall, small enough to keep per-connection memory modest.
_READ_BYTES = 1 << 16

#: Cadence of the per-connection completion-watermark ack pump.
_ACK_INTERVAL_S = 0.002

#: Poll cadence while waiting for a session's queue to drain.
_DRAIN_POLL_S = 0.002

#: Read timeout: the cadence at which an idle connection loop checks
#: the server's draining flag (a graceful shutdown must consume bytes
#: already in flight before the connection ends, so handlers are asked
#: to finish, not cancelled mid-read).
_READ_POLL_S = 0.05

#: How long :meth:`GatewayServer.shutdown` waits for handlers to finish
#: the graceful way before cancelling the stragglers.
_SHUTDOWN_GRACE_S = 5.0


class _Connection:
    """Server-side state for one vehicle connection."""

    def __init__(self, server: "GatewayServer", peer: str) -> None:
        self.server = server
        self.peer = peer
        self.decoder = WireDecoder()
        self.session: IngestSession | None = None
        self.session_index = 0
        self.dtype = "c64"
        self.recorder: Recorder | None = None
        #: Highest sequence number received on this connection.
        self.received_seq = -1
        #: Frames accepted onto the session queue (includes later drops).
        self.submitted = 0
        #: Frames shed by drop-oldest backpressure at submit time.
        self.dropped_queue = 0
        #: Frames rejected before the queue (bad payload size/dtype).
        self.bad_frames = 0
        #: Sequence numbers of submitted frames, in submit order, not
        #: yet covered by a completion ack.
        self.pending_seqs: list[int] = []
        self._pending_start = 0
        #: Completion count already acked (acks carry counts, not
        #: indices, so "nothing done yet" is a plain 0 on an unsigned
        #: wire field).
        self.acked_completed = 0

    # ------------------------------------------------------------ accounting
    def consumed_frames(self) -> int:
        """Frames that have left the pipeline (processed or shed).

        Queue order is FIFO with drop-oldest, so consumption always
        takes the *front* of the submit order: the count alone
        identifies exactly which submitted frames are done.
        """
        session = self.session
        if session is None:
            return 0
        return session.frames_processed + self.dropped_queue

    def completion_watermark(self) -> int | None:
        """Wire watermark: one past the seq of the newest finished frame.

        Returns None when nothing new finished since the last call.
        """
        done = self.consumed_frames() - self._pending_start
        if done <= 0:
            return None
        index = min(done, len(self.pending_seqs)) - 1
        watermark = self.pending_seqs[index] + 1
        # Retire the covered prefix so the list stays O(queue depth).
        del self.pending_seqs[: index + 1]
        self._pending_start += index + 1
        return watermark

    def stats(self) -> dict[str, Any]:
        """Ingest statistics for the DRAIN reply."""
        session = self.session
        return {
            "received": self.received_seq + 1 if self.received_seq >= 0 else 0,
            "submitted": self.submitted,
            "processed": 0 if session is None else session.frames_processed,
            "dropped_queue": self.dropped_queue,
            "bad_frames": self.bad_frames,
            "crc_failures": self.decoder.crc_failures,
            "resync_bytes": self.decoder.resync_bytes,
            "blinks": 0 if session is None else len(session.blink_events),
            "latency": (
                {}
                if session is None
                else session.metrics.histogram(
                    f"session.{session.session_id}.latency_s"
                ).snapshot()
            ),
        }


class GatewayServer:
    """Streaming ingest service over a :class:`FleetScheduler` worker pool.

    Parameters
    ----------
    host / port:
        Listen address; port 0 binds an ephemeral port (see
        :attr:`port` after :meth:`start`).
    workers / queue_depth:
        Scheduler worker pool size and per-session queue bound (the
        backpressure threshold: a client staying below it loses no
        frames).
    record_dir:
        When set, every session's ingested traffic is recorded to
        ``<record_dir>/<session_id>.rst`` and registered in that
        directory's catalog on session close.
    session_config / metrics:
        Shared fleet policy and registry; the registry also backs the
        HTTP metrics endpoint.
    ack_every:
        Send a receipt ack at least every this many frames even when
        the completion watermark has not moved (keeps a slow consumer's
        client informed).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 4,
        queue_depth: int = 4096,
        record_dir: str | Path | None = None,
        session_config: SessionConfig | None = None,
        metrics: MetricsRegistry | None = None,
        ack_every: int = 64,
        backend: str = "threaded",
    ) -> None:
        if ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {ack_every}")
        if backend not in ("threaded", "sharded"):
            raise ValueError(f"unknown backend {backend!r} (threaded|sharded)")
        self.host = host
        self._requested_port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.session_config = session_config
        self.record_dir = Path(record_dir) if record_dir is not None else None
        self.ack_every = ack_every
        self.queue_depth = queue_depth
        self.backend = backend
        if backend == "sharded":
            # Same serve surface, detector work in shard processes.
            # Imported lazily: repro.shard's worker module imports from
            # this package, so a top-level import would be circular.
            from repro.shard.fleet import ShardedFleet

            self.scheduler: Any = ShardedFleet(
                [], workers=workers, queue_depth=queue_depth, metrics=self.metrics
            )
        else:
            self.scheduler = FleetScheduler(
                [], workers=workers, queue_depth=queue_depth, metrics=self.metrics
            )
        self.sessions: dict[str, IngestSession] = {}
        # Serializes catalog registration: session finalizations run on
        # executor threads and may overlap, but the catalog manifest is
        # a single shared file (read-modify-write per registration).
        self._catalog_lock = threading.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task[None]] = set()
        self._next_session_index = 1
        self._draining = False
        self._started = False

    # ---------------------------------------------------------------- runtime
    @property
    def port(self) -> int:
        """The bound listen port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def started(self) -> bool:
        """True between :meth:`start` and :meth:`shutdown`."""
        return self._started

    @property
    def ready(self) -> bool:
        """Readiness for traffic: started and not draining."""
        return self._started and not self._draining

    async def start(self) -> None:
        """Bind the socket and start the scheduler's worker pool.

        Pool start-up runs on an executor: the sharded backend blocks
        while its worker processes warm up, and the loop must stay live.
        """
        if self._started:
            raise RuntimeError("server already started")
        await asyncio.get_running_loop().run_in_executor(None, self.scheduler.start)
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self._requested_port
        )
        self._started = True

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, drain queues, stop workers.

        Idempotent. Open connections are closed (their queued frames
        are processed first), recordings finalized, sessions closed.
        """
        if not self._started:
            return
        self._draining = True
        server = self._server
        if server is not None:
            server.close()
            await server.wait_closed()
        # Closing the listening socket does not close accepted
        # connections. Handlers notice the draining flag once their
        # socket goes quiet and finish on their own (consuming every
        # byte already in flight); only stragglers past the grace
        # window are cancelled.
        if self._connections:
            _done, pending = await asyncio.wait(
                list(self._connections), timeout=_SHUTDOWN_GRACE_S
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        # Let every queued frame reach its detector before the pool stops.
        while not self.scheduler.idle():
            await asyncio.sleep(_DRAIN_POLL_S)
        # Stopping the pool joins its worker threads — blocking, so it
        # runs on an executor to keep the loop (health endpoint, other
        # servers in-process) live for the duration.
        await asyncio.get_running_loop().run_in_executor(None, self.scheduler.stop)
        self._server = None
        self._started = False
        self._draining = False

    async def run_until_signal(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain and shut down."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if sys.platform != "win32":
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.shutdown()

    def health(self) -> dict[str, Any]:
        """JSON-ready health probe payload (the HTTP ``/healthz`` body)."""
        return {
            "status": "draining" if self._draining else ("ok" if self._started else "stopped"),
            "ready": self.ready,
            "connections_open": len(self._connections),
            "sessions": {
                sid: session.health() for sid, session in sorted(self.sessions.items())
            },
        }

    # ------------------------------------------------------------ connections
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        conn = _Connection(self, peer=str(peername))
        self.metrics.counter("gateway.connections_opened").inc()
        self.metrics.gauge("gateway.connections_open").add(1)
        ack_pump: asyncio.Task[None] | None = None
        try:
            ack_pump = asyncio.ensure_future(self._ack_pump(conn, writer))
            await self._connection_loop(conn, reader, writer)
        except asyncio.CancelledError:
            # Server shutdown: the frames already submitted will drain;
            # the connection itself ends here.
            pass
        except (ConnectionError, OSError, ProtocolError):
            self.metrics.counter("gateway.connection_errors").inc()
        except Exception:  # reprolint: disable=except-hygiene
            # Fault isolation: one broken connection must never take
            # down the accept loop or another vehicle's stream.
            self.metrics.counter("gateway.connection_errors").inc()
        finally:
            if ack_pump is not None:
                ack_pump.cancel()
            await self._cleanup_connection(conn, writer)

    async def _connection_loop(
        self, conn: _Connection, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        crc_seen = 0
        while True:
            try:
                data = await asyncio.wait_for(reader.read(_READ_BYTES), timeout=_READ_POLL_S)
            except asyncio.TimeoutError:
                if self._draining:
                    # Graceful shutdown: the socket went quiet and every
                    # in-flight byte has been consumed — end the
                    # connection (cleanup drains and finalizes).
                    return
                continue
            if not data:
                return
            messages = conn.decoder.feed(data)
            if conn.decoder.crc_failures > crc_seen:
                self.metrics.counter("gateway.crc_failures").inc(
                    conn.decoder.crc_failures - crc_seen
                )
                crc_seen = conn.decoder.crc_failures
            for msg in messages:
                if not await self._handle_message(conn, msg, writer):
                    return

    async def _handle_message(
        self, conn: _Connection, msg: Message, writer: asyncio.StreamWriter
    ) -> bool:
        """Dispatch one decoded message; False ends the connection."""
        if isinstance(msg, Hello):
            await self._handle_hello(conn, msg)
            writer.write(
                encode_message(Ack(session=conn.session_index, seq=0, received_seq=0, processed=0))
            )
            await writer.drain()
            return True
        if isinstance(msg, Frame):
            self._handle_frame(conn, msg)
            return True
        if isinstance(msg, Drain):
            await self._wait_drained(conn)
            writer.write(
                encode_message(Drain(session=conn.session_index, stats=conn.stats()))
            )
            await writer.drain()
            return True
        if isinstance(msg, Bye):
            await self._wait_drained(conn)
            await self._finalize_session(conn)
            writer.write(encode_message(Bye(session=conn.session_index)))
            await writer.drain()
            return False
        # A client has no business sending ACKs; count and ignore.
        self.metrics.counter("gateway.unexpected_messages").inc()
        return True

    async def _handle_hello(self, conn: _Connection, hello: Hello) -> None:
        if conn.session is not None:
            raise ProtocolError("duplicate HELLO on one connection")
        if hello.session_id in self.sessions:
            raise ProtocolError(f"session id {hello.session_id!r} already connected")
        session = IngestSession(
            hello.session_id,
            n_bins=hello.n_bins,
            frame_rate_hz=hello.frame_rate_hz,
            config=self.session_config,
            metrics=self.metrics,
        )
        session.start()
        # Reserve the id before the first await: a racing HELLO with the
        # same session id must be rejected, not interleaved.
        self.sessions[hello.session_id] = session
        recorder: Recorder | None = None
        try:
            if self.record_dir is not None:
                # Creating the recording opens (and preallocates) the
                # .rst file — filesystem work that belongs on a thread,
                # not the event loop.
                recorder = await asyncio.get_running_loop().run_in_executor(
                    None, self._open_recorder, hello
                )
            self.scheduler.attach(session)
        except BaseException:
            self.sessions.pop(hello.session_id, None)
            session.close()
            raise
        conn.session = session
        conn.recorder = recorder
        conn.dtype = hello.dtype
        conn.session_index = self._next_session_index
        self._next_session_index = (self._next_session_index % 0xFFFF) + 1
        self.metrics.counter("gateway.sessions_opened").inc()

    def _open_recorder(self, hello: Hello) -> Recorder:
        """Create the per-session recording (runs on an executor thread)."""
        record_dir = self.record_dir
        if record_dir is None:
            raise RuntimeError("recording is not enabled")
        record_dir.mkdir(parents=True, exist_ok=True)
        return Recorder(
            record_dir / f"{hello.session_id}.rst",
            n_bins=hello.n_bins,
            frame_rate_hz=hello.frame_rate_hz,
            dtype="complex64" if hello.dtype == "c64" else "complex128",
            metadata={"source": "gateway", "session_id": hello.session_id},
        )

    def _handle_frame(self, conn: _Connection, msg: Frame) -> None:
        session = conn.session
        if session is None:
            raise ProtocolError("FRAME before HELLO")
        try:
            frame = decode_frame_payload(msg.payload, session.n_bins, conn.dtype)
        except ProtocolError:
            conn.bad_frames += 1
            self.metrics.counter("gateway.bad_frames").inc()
            return
        conn.received_seq = max(conn.received_seq, msg.seq)
        if conn.recorder is not None:
            # Write-before-submit: anything the detector sees is already
            # on its way to disk.
            conn.recorder.append(frame, msg.timestamp_s)
        accepted = self.scheduler.submit(
            session.session_id, session.make_item(msg.timestamp_s, frame)
        )
        conn.submitted += 1
        conn.pending_seqs.append(msg.seq)
        if not accepted:
            conn.dropped_queue += 1
        self.metrics.counter("gateway.frames_received").inc()

    async def _ack_pump(self, conn: _Connection, writer: asyncio.StreamWriter) -> None:
        """Push completion-watermark acks on a fixed cadence.

        The watermark advances as the worker pool consumes the session's
        queue; an ack also goes out when the receipt count ran ahead by
        ``ack_every`` frames so the client's flow-control view never
        staleness-locks.
        """
        last_received_acked = -1
        while True:
            await asyncio.sleep(_ACK_INTERVAL_S)
            if conn.session is None:
                continue
            watermark = conn.completion_watermark()
            overdue = conn.received_seq - last_received_acked >= self.ack_every
            if watermark is None and not overdue:
                continue
            if watermark is not None:
                conn.acked_completed = max(conn.acked_completed, watermark)
            last_received_acked = conn.received_seq
            writer.write(
                encode_message(
                    Ack(
                        session=conn.session_index,
                        seq=conn.acked_completed,
                        received_seq=max(conn.received_seq, 0),
                        processed=conn.session.frames_processed,
                    )
                )
            )
            await writer.drain()

    async def _wait_drained(self, conn: _Connection) -> None:
        session = conn.session
        if session is None:
            return
        while not self.scheduler.drained(session.session_id):
            await asyncio.sleep(_DRAIN_POLL_S)

    # -------------------------------------------------------------- lifecycle
    async def _finalize_session(self, conn: _Connection) -> None:
        """Close one session and its recording; register the trace.

        The loop-visible bookkeeping (``conn.session``,
        ``self.sessions``) lands before the first await; the detach —
        which on the sharded backend blocks for a worker round-trip —
        and the recording finalization (flush, close, catalog
        registration, all file IO) run on executor threads.
        """
        session = conn.session
        if session is None:
            return
        conn.session = None
        recorder = conn.recorder
        conn.recorder = None
        self.sessions.pop(session.session_id, None)
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, self.scheduler.detach, session.session_id
            )
        except KeyError:
            pass  # already detached by a racing shutdown path
        session.close()
        if recorder is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._finalize_recording, session.session_id, recorder
            )

    def _finalize_recording(self, session_id: str, recorder: Recorder) -> None:
        from repro.store.catalog import Catalog

        path = recorder.path
        if recorder.n_frames == 0:
            # Nothing ingested: abandon instead of registering an empty
            # recording.
            recorder.close(finalize=False)
            path.unlink(missing_ok=True)
            return
        recorder.close()
        if self.record_dir is not None:
            # Concurrent finalizations (several sessions saying BYE at
            # once, each on its own executor thread) must not interleave
            # the catalog's manifest read-modify-write: each registration
            # re-reads the manifest under the lock so none is lost.
            with self._catalog_lock:
                Catalog(self.record_dir).add(path, name=session_id)
        self.metrics.counter("gateway.recordings_finalized").inc()

    async def _cleanup_connection(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        session = conn.session
        if session is not None:
            # Connection died without BYE: drain what was queued so the
            # recording and the detector agree, then finalize.
            try:
                await self._wait_drained(conn)
            except KeyError:
                pass
            await self._finalize_session(conn)
        self.metrics.gauge("gateway.connections_open").add(-1)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer already gone; nothing left to flush

"""``repro.gateway`` — streaming network ingest for the fleet service.

The gateway is the system's front door: it accepts radar frames over
TCP in a versioned, CRC-protected wire format (:mod:`~repro.gateway.protocol`),
multiplexes many vehicle connections into the existing
:class:`~repro.fleet.scheduler.FleetScheduler` worker pool
(:mod:`~repro.gateway.server`), optionally tees every ingested frame
into a ``.rst`` catalog through :class:`~repro.store.record.Recorder`,
and exports the fleet metrics registry over HTTP in Prometheus text
format (:mod:`~repro.gateway.http`). The client side
(:mod:`~repro.gateway.client`, :mod:`~repro.gateway.loadgen`) replays
cataloged traces through N simulated vehicles to measure the deployed
system's real saturation point — achieved frames/s, drop rate, and
end-to-end latency percentiles — rather than the isolated kernels'.

Everything here is standard library + numpy: no asyncio framework, no
HTTP library, no metrics client, so the ingest layer can never fail to
import for dependency reasons.
"""

from repro.gateway.client import GatewayClient
from repro.gateway.http import MetricsHttpServer
from repro.gateway.ingest import IngestSession
from repro.gateway.loadgen import LoadGenerator, LoadReport, VehicleReport
from repro.gateway.protocol import (
    MAGIC,
    MAX_PAYLOAD_BYTES,
    Ack,
    Bye,
    Drain,
    Frame,
    Hello,
    ProtocolError,
    WireDecoder,
    decode_frame_payload,
    encode_frame_payload,
    encode_message,
)
from repro.gateway.server import GatewayServer

__all__ = [
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "Ack",
    "Bye",
    "Drain",
    "Frame",
    "Hello",
    "ProtocolError",
    "WireDecoder",
    "decode_frame_payload",
    "encode_frame_payload",
    "encode_message",
    "GatewayServer",
    "GatewayClient",
    "IngestSession",
    "LoadGenerator",
    "LoadReport",
    "VehicleReport",
    "MetricsHttpServer",
]

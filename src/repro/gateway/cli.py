"""``python -m repro gateway`` — serve, load, and scrape the ingest service.

Three subcommands mirror the subsystem's three roles:

- ``serve``   — run the TCP ingest server (plus the HTTP observability
  endpoint) until SIGTERM/SIGINT, then drain gracefully.
- ``load``    — replay a cataloged ``.rst`` trace through N simulated
  vehicles against a running gateway and print the achieved throughput,
  drop rate, and end-to-end latency percentiles.
- ``metrics`` — scrape a running gateway's ``/metrics`` endpoint and
  print the Prometheus text to stdout (a curl you always have).

Examples::

    python -m repro gateway serve --port 9400 --http-port 9401 --record-dir rec/
    python -m repro gateway load drive.rst --port 9400 --vehicles 16
    python -m repro gateway metrics --port 9401
"""

from __future__ import annotations

import argparse
import asyncio
import json

from repro.eval.report import format_table

__all__ = ["add_gateway_arguments", "run_gateway"]


def add_gateway_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``gateway`` subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="gateway_command", required=True)

    srv = sub.add_parser("serve", help="run the streaming ingest server")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=9400, help="ingest TCP port")
    srv.add_argument(
        "--http-port", type=int, default=0,
        help="metrics/health HTTP port (0 = ephemeral)",
    )
    srv.add_argument("--workers", type=int, default=4, help="detector worker threads")
    srv.add_argument("--queue-depth", type=int, default=4096, help="per-session queue bound")
    srv.add_argument(
        "--backend", choices=["threaded", "sharded"], default="threaded",
        help="detector pool: in-process threads, or repro.shard worker processes",
    )
    srv.add_argument("--record-dir", default=None, help="tee ingested traffic into this catalog")

    lod = sub.add_parser("load", help="replay-driven fleet load generator")
    lod.add_argument("trace", help="input .rst recording every vehicle replays")
    lod.add_argument("--host", default="127.0.0.1")
    lod.add_argument("--port", type=int, default=9400, help="gateway ingest port")
    lod.add_argument("--vehicles", type=int, default=4, help="simulated vehicles")
    lod.add_argument(
        "--speed", type=float, default=0.0,
        help="pacing multiplier vs recorded timestamps (0 = as fast as possible)",
    )
    lod.add_argument("--max-frames", type=int, default=None, help="cap frames per vehicle")
    lod.add_argument("--json", help="also write the load report to this path")

    met = sub.add_parser("metrics", help="scrape and print /metrics from a gateway")
    met.add_argument("--host", default="127.0.0.1")
    met.add_argument("--port", type=int, required=True, help="gateway HTTP port")
    met.add_argument("--path", default="/metrics", help="endpoint to fetch")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.gateway.http import MetricsHttpServer
    from repro.gateway.server import GatewayServer

    async def serve() -> None:
        server = GatewayServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            record_dir=args.record_dir,
            backend=args.backend,
        )
        await server.start()
        http = MetricsHttpServer(
            server.metrics,
            host=args.host,
            port=args.http_port,
            health=server.health,
            ready=lambda: server.ready,
        )
        await http.start()
        print(
            f"gateway listening on {args.host}:{server.port} "
            f"(http {args.host}:{http.port}); Ctrl-C to drain and stop"
        )
        try:
            await server.run_until_signal()
        finally:
            await http.stop()

    asyncio.run(serve())
    print("gateway drained and stopped")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from repro.gateway.loadgen import LoadGenerator

    generator = LoadGenerator(
        args.host,
        args.port,
        args.trace,
        vehicles=args.vehicles,
        speed=args.speed,
        max_frames=args.max_frames,
    )
    report = asyncio.run(generator.run())
    summary = report.as_dict()
    latency = summary["e2e_latency_s"]
    rows = [
        ["vehicles", summary["vehicles"]],
        ["wall time (s)", f"{summary['wall_s']:.2f}"],
        ["frames sent", summary["frames_sent"]],
        ["frames processed", summary["frames_processed"]],
        ["dropped (queue)", summary["dropped_queue"]],
        ["drop fraction", f"{summary['drop_fraction']:.4f}"],
        ["achieved throughput (frames/s)", f"{summary['achieved_fps']:.0f}"],
        ["blinks detected", summary["blinks"]],
        ["e2e latency p50 (ms)", f"{latency['p50'] * 1e3:.2f}"],
        ["e2e latency p95 (ms)", f"{latency['p95'] * 1e3:.2f}"],
        ["e2e latency p99 (ms)", f"{latency['p99'] * 1e3:.2f}"],
    ]
    print(
        format_table(
            f"Gateway load: {args.vehicles} vehicles x {args.trace}",
            ["quantity", "value"],
            rows,
        )
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"load report written to {args.json}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    async def fetch() -> tuple[str, str]:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        try:
            writer.write(
                f"GET {args.path} HTTP/1.1\r\nHost: {args.host}\r\n"
                "Connection: close\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        return head.split(b"\r\n", 1)[0].decode("latin-1"), body.decode("utf-8")

    status, body = asyncio.run(fetch())
    print(body, end="" if body.endswith("\n") else "\n")
    return 0 if " 200 " in status else 1


def run_gateway(args: argparse.Namespace) -> int:
    """Dispatch the parsed ``gateway`` subcommand."""
    handlers = {
        "serve": _cmd_serve,
        "load": _cmd_load,
        "metrics": _cmd_metrics,
    }
    return handlers[args.gateway_command](args)

"""Replay-driven fleet load generator for the gateway.

:class:`LoadGenerator` simulates N vehicles: each one opens its own
connection, replays the same cataloged ``.rst`` trace through a
:class:`~repro.gateway.client.GatewayClient`, and (optionally) paces
itself against the recording's own timestamps at a configurable speed
multiplier — so "256 vehicles at 4x real time" is one constructor call.

Pacing is done with ``asyncio.sleep`` against the event-loop clock, not
with :class:`~repro.store.replay.ReplaySource`'s blocking ``time.sleep``
pacing: hundreds of vehicles share one loop, and a single blocking
sleep would stall them all.

The resulting :class:`LoadReport` carries the numbers a capacity test
needs — achieved frames/s, drop rate under backpressure, and honest
client-measured end-to-end latency percentiles (p50/p95/p99 over the
pooled completion-ack samples).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.gateway.client import GatewayClient
from repro.gateway.protocol import FRAME_DTYPES
from repro.store.replay import ReplaySource

__all__ = ["LoadGenerator", "LoadReport", "VehicleReport"]


@dataclass(frozen=True)
class VehicleReport:
    """One simulated vehicle's outcome."""

    session_id: str
    frames_sent: int
    frames_processed: int
    dropped_queue: int
    blinks: int
    send_wall_s: float
    #: Client-measured end-to-end latency samples, seconds.
    latency_samples_s: list[float] = field(repr=False, default_factory=list)

    @property
    def achieved_fps(self) -> float:
        """Frames actually pushed per second of send wall time."""
        return self.frames_sent / self.send_wall_s if self.send_wall_s > 0 else 0.0

    @property
    def drop_fraction(self) -> float:
        """Queue-shed frames as a fraction of frames sent."""
        return self.dropped_queue / self.frames_sent if self.frames_sent else 0.0


@dataclass(frozen=True)
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    vehicles: list[VehicleReport]
    wall_s: float

    @property
    def frames_sent(self) -> int:
        """Total frames pushed across the fleet."""
        return sum(v.frames_sent for v in self.vehicles)

    @property
    def frames_processed(self) -> int:
        """Total frames the detectors consumed."""
        return sum(v.frames_processed for v in self.vehicles)

    @property
    def dropped_queue(self) -> int:
        """Total frames shed by drop-oldest backpressure."""
        return sum(v.dropped_queue for v in self.vehicles)

    @property
    def achieved_fps(self) -> float:
        """Fleet-aggregate ingest throughput, frames per wall second."""
        return self.frames_sent / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def drop_fraction(self) -> float:
        """Fleet-wide shed fraction."""
        return self.dropped_queue / self.frames_sent if self.frames_sent else 0.0

    def latency_percentiles_s(self) -> dict[str, float]:
        """p50/p95/p99 over the pooled client-side e2e samples."""
        pooled = [s for v in self.vehicles for s in v.latency_samples_s]
        if not pooled:
            return {"p50": float("nan"), "p95": float("nan"), "p99": float("nan")}
        arr = np.asarray(pooled)
        return {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
        }

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (what the benchmark writes out)."""
        return {
            "vehicles": len(self.vehicles),
            "wall_s": self.wall_s,
            "frames_sent": self.frames_sent,
            "frames_processed": self.frames_processed,
            "dropped_queue": self.dropped_queue,
            "drop_fraction": self.drop_fraction,
            "achieved_fps": self.achieved_fps,
            "blinks": sum(v.blinks for v in self.vehicles),
            "e2e_latency_s": self.latency_percentiles_s(),
            "latency_samples": sum(len(v.latency_samples_s) for v in self.vehicles),
        }


class LoadGenerator:
    """Replay one trace through N simulated vehicles against a gateway.

    Parameters
    ----------
    host / port:
        The gateway to load.
    trace_path:
        The ``.rst`` recording every vehicle replays. Each vehicle opens
        its own reader, so replay cursors never interfere.
    vehicles:
        Fleet size (one connection + one session per vehicle).
    speed:
        Pacing multiplier against the recording's timestamps: 1.0
        replays in real time, 4.0 at four times it. 0 (the default)
        disables pacing — every vehicle pushes as fast as the socket
        accepts, which is what a saturation benchmark wants.
    max_frames:
        Cap on frames per vehicle (None replays the whole trace).
    dtype:
        Wire dtype, ``"c64"`` or ``"c128"``. The default (None) follows
        the recording's own on-disk dtype, which is what keeps the
        server-side recording bit-identical to the source — forcing
        ``"c64"`` on a ``complex128`` trace would quantise in transit.
    session_prefix:
        Session ids are ``f"{session_prefix}{index:03d}"``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        trace_path: str | Path,
        *,
        vehicles: int = 4,
        speed: float = 0.0,
        max_frames: int | None = None,
        dtype: str | None = None,
        session_prefix: str = "veh",
    ) -> None:
        if vehicles < 1:
            raise ValueError(f"vehicles must be >= 1, got {vehicles}")
        if speed < 0:
            raise ValueError(f"speed must be >= 0, got {speed}")
        if max_frames is not None and max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {max_frames}")
        if dtype is not None and dtype not in FRAME_DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(FRAME_DTYPES)} or None, got {dtype!r}"
            )
        self.host = host
        self.port = port
        self.trace_path = Path(trace_path)
        self.vehicles = vehicles
        self.speed = speed
        self.max_frames = max_frames
        self.dtype = dtype
        self.session_prefix = session_prefix

    async def run(self) -> LoadReport:
        """Drive the whole simulated fleet to completion."""
        started = time.perf_counter()
        reports = await asyncio.gather(
            *(self._vehicle(i) for i in range(self.vehicles))
        )
        return LoadReport(vehicles=list(reports), wall_s=time.perf_counter() - started)

    def _wire_dtype(self, source: ReplaySource) -> str:
        """The declared dtype, or the recording's own (lossless) one."""
        if self.dtype is not None:
            return self.dtype
        disk = source.reader.header.dtype
        for code, dtype in FRAME_DTYPES.items():
            if dtype == disk:
                return code
        raise ValueError(f"recording dtype {disk} has no wire encoding")

    async def _vehicle(self, index: int) -> VehicleReport:
        session_id = f"{self.session_prefix}{index:03d}"
        # One open() per vehicle at startup, before any traffic is
        # paced: a deliberate, bounded stall on the load-generator side
        # (the system under test is the server, not this client).
        with ReplaySource(self.trace_path) as source:  # reprolint: disable=blocking-in-async
            client = await GatewayClient.connect(self.host, self.port)
            try:
                await client.hello(
                    session_id,
                    n_bins=source.n_bins,
                    frame_rate_hz=source.frame_rate_hz,
                    dtype=self._wire_dtype(source),
                )
                send_started = time.perf_counter()
                sent = await self._stream_frames(client, source)
                send_wall_s = time.perf_counter() - send_started
                stats = await client.drain()
                await client.bye()
            finally:
                await client.close()
        return VehicleReport(
            session_id=session_id,
            frames_sent=sent,
            frames_processed=int(stats.get("processed", 0)),
            dropped_queue=int(stats.get("dropped_queue", 0)),
            blinks=int(stats.get("blinks", 0)),
            send_wall_s=send_wall_s,
            latency_samples_s=list(client.latency_samples_s),
        )

    async def _stream_frames(self, client: GatewayClient, source: ReplaySource) -> int:
        loop = asyncio.get_running_loop()
        origin_loop_s = loop.time()
        origin_stamp_s: float | None = None
        sent = 0
        for stamp_s, frame in source:
            if self.max_frames is not None and sent >= self.max_frames:
                break
            if self.speed > 0:
                if origin_stamp_s is None:
                    origin_stamp_s = stamp_s
                due_s = origin_loop_s + (stamp_s - origin_stamp_s) / self.speed
                lag_s = due_s - loop.time()
                if lag_s > 0:
                    await asyncio.sleep(lag_s)
            await client.send_frame(sent, stamp_s, frame)
            sent += 1
            if self.speed == 0 and sent % 64 == 0:
                # Unpaced pushes never hit a sleep; yield so the other
                # vehicles (and the acks) share the loop.
                await asyncio.sleep(0)
        return sent

"""Quadrature receiver: the explicit RF chain (paper Fig. 4, Eq. 6).

:class:`QuadratureReceiver` implements the full signal path the paper draws
in Fig. 4 — passband synthesis, I/Q mixing against the carrier, low-pass
filtering, fast-time sampling — without the analytic shortcuts used by
:class:`repro.rf.channel.MultipathChannel` for long simulations.

Its purpose is validation and the signal-design figures: tests assert that
the explicit chain and the analytic baseband model agree to within filter
ripple, which certifies that the fast path used everywhere else is the
right mathematics (envelope at the path delay × carrier phasor
``exp(−j 2π f_c τ_p)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import design_lowpass_fir, fir_filter
from repro.rf.channel import PropagationPath
from repro.rf.config import RadarConfig
from repro.rf.constants import SPEED_OF_LIGHT
from repro.rf.pulse import GaussianPulse

__all__ = ["QuadratureReceiver"]


@dataclass(frozen=True)
class QuadratureReceiver:
    """Explicit passband → complex-baseband receiver chain.

    Parameters
    ----------
    config:
        Radar configuration. The explicit chain needs the fast-time sample
        rate to satisfy Nyquist for fc + B/2 (the default X4-class
        23.328 GS/s does for 7.3 GHz + 0.7 GHz).
    lowpass_order:
        Order of the image-reject low-pass FIR after the mixers.
    lowpass_cutoff_hz:
        Cutoff of that filter; defaults to the pulse bandwidth.
    """

    config: RadarConfig
    lowpass_order: int = 128
    lowpass_cutoff_hz: float | None = None

    def _check_nyquist(self) -> None:
        needed = 2.0 * (self.config.carrier_hz + self.config.bandwidth_hz / 2.0)
        if self.config.fast_time_rate_hz < needed:
            raise ValueError(
                f"fast-time rate {self.config.fast_time_rate_hz:.3g} Hz below the "
                f"Nyquist requirement {needed:.3g} Hz for the explicit RF chain"
            )

    def _pulse(self) -> GaussianPulse:
        return GaussianPulse(
            carrier_hz=self.config.carrier_hz,
            bandwidth_hz=self.config.bandwidth_hz,
            amplitude=self.config.tx_amplitude,
        )

    def fast_time_axis(self) -> np.ndarray:
        """Fast-time sample instants covering the observation window (s)."""
        n = self.config.n_bins
        return np.arange(n) / self.config.fast_time_rate_hz

    def passband_frame(self, paths: list[PropagationPath]) -> np.ndarray:
        """Received RF waveform y_k(t) = Σ_p α_p x(t − τ_p) for one frame.

        Every path is taken at its nominal range (no slow-time modulation:
        this is a single-frame chain).
        """
        self._check_nyquist()
        if not paths:
            raise ValueError("passband_frame requires at least one path")
        pulse = self._pulse()
        t = self.fast_time_axis()
        y = np.zeros_like(t)
        for path in paths:
            tau = 2.0 * path.base_range_m / SPEED_OF_LIGHT
            envelope = pulse.envelope_centered(t - tau)
            y += path.amplitude * envelope * np.cos(
                2.0 * np.pi * self.config.carrier_hz * (t - tau)
            )
        return y

    def demodulate(self, passband: np.ndarray) -> np.ndarray:
        """I/Q downconversion of a passband waveform to complex baseband.

        Mixes against cos / −sin of the carrier (factor 2 restores unit
        amplitude) and low-pass filters away the 2 f_c image.
        """
        passband = np.asarray(passband, dtype=float)
        t = np.arange(len(passband)) / self.config.fast_time_rate_hz
        carrier = 2.0 * np.pi * self.config.carrier_hz * t
        i_mixed = 2.0 * passband * np.cos(carrier)
        q_mixed = -2.0 * passband * np.sin(carrier)
        cutoff_hz = self.lowpass_cutoff_hz or self.config.bandwidth_hz
        cutoff_norm = cutoff_hz / self.config.fast_time_rate_hz
        taps = design_lowpass_fir(self.lowpass_order, cutoff_norm)
        return fir_filter(i_mixed, taps) + 1j * fir_filter(q_mixed, taps)

    def baseband_frame(self, paths: list[PropagationPath]) -> np.ndarray:
        """Full-chain complex baseband range profile for one frame."""
        return self.demodulate(self.passband_frame(paths))

    def analytic_frame(self, paths: list[PropagationPath]) -> np.ndarray:
        """Analytic baseband frame (the fast model) for the same paths.

        Σ_p α_p · exp(−(r_n − R_p)²/2σ_r²) · exp(−j 4π f_c R_p / c); tests
        compare this against :meth:`baseband_frame`.
        """
        if not paths:
            raise ValueError("analytic_frame requires at least one path")
        pulse = self._pulse()
        sigma_r = SPEED_OF_LIGHT * pulse.sigma_s / 2.0
        bin_ranges = self.config.bin_ranges_m
        k_phase = 4.0 * np.pi * self.config.carrier_hz / SPEED_OF_LIGHT
        frame = np.zeros(self.config.n_bins, dtype=complex)
        for path in paths:
            envelope = self.config.tx_amplitude * np.exp(
                -((bin_ranges - path.base_range_m) ** 2) / (2.0 * sigma_r**2)
            )
            frame += path.amplitude * envelope * np.exp(-1j * k_phase * path.base_range_m)
        return frame

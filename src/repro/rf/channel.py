"""Multipath propagation channel (paper Eq. 4–5).

The channel impulse response is

    h_k(t) = Σ_p α_p · δ(t − τ_p − τ_p^D(k T_s))          (Eq. 4)

with per-path gain α_p and a slow-time-varying delay driven by target
motion. Convolved with the transmit pulse and downconverted, each path
contributes a Gaussian envelope centred at its round-trip delay and a
baseband phasor exp(−j 4π f_c R_p(k) / c) — the phase observable of Eq. 9.

:class:`PropagationPath` carries a path's nominal range, field amplitude,
and two slow-time modulation tracks:

- ``displacement_m[k]`` — radial motion (breathing chest, BCG head motion,
  eyelid travel, vehicle vibration), which shifts both the envelope and,
  much more sensitively, the phase;
- ``amplitude_scale[k]`` — reflectivity modulation (eyelid covering the
  eyeball during a blink swaps the reflecting material).

:class:`MultipathChannel` renders the full (n_frames × n_bins) complex
baseband matrix, the exact object the real radar streams out and the
BlinkRadar pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rf.config import RadarConfig
from repro.rf.constants import SPEED_OF_LIGHT, wavelength
from repro.rf.pulse import GaussianPulse

__all__ = ["PropagationPath", "MultipathChannel", "radar_equation_amplitude"]

_FOUR_PI = 4.0 * np.pi


def radar_equation_amplitude(
    tx_amplitude: float,
    carrier_hz: float,
    range_m: float,
    rcs_m2: float,
    reflectivity: float = 1.0,
    two_way_gain: float = 1.0,
    extra_power_factor: float = 1.0,
) -> float:
    """Received field amplitude of a point reflector by the radar equation.

    Amplitude ∝ sqrt(P_t G_t G_r λ² σ / (4π)³) / R². All simulator
    amplitudes flow through this one function so that distance sweeps
    (Fig. 15(b)) and angle sweeps (Fig. 15(c,d)) follow real physics rather
    than per-experiment tuning.

    Parameters
    ----------
    tx_amplitude:
        Transmit pulse amplitude V_tx.
    carrier_hz:
        Carrier frequency (sets λ).
    range_m:
        One-way distance to the reflector.
    rcs_m2:
        Radar cross-section of the reflector (m²).
    reflectivity:
        Material field-reflection coefficient in [0, 1] (see
        :mod:`repro.rf.materials`).
    two_way_gain:
        Product of transmit and receive antenna *power* gains toward the
        reflector (boresight = 1).
    extra_power_factor:
        Additional two-way *power* attenuation (e.g. spectacle-lens
        transmission, aspect-angle specularity).
    """
    if range_m <= 0:
        raise ValueError(f"range must be positive, got {range_m}")
    if rcs_m2 < 0 or reflectivity < 0 or two_way_gain < 0 or extra_power_factor < 0:
        raise ValueError("rcs, reflectivity and gains must be non-negative")
    lam = wavelength(carrier_hz)
    power_numerator = two_way_gain * extra_power_factor * lam**2 * rcs_m2
    return float(
        tx_amplitude * reflectivity * np.sqrt(power_numerator / _FOUR_PI**3) / range_m**2
    )


@dataclass
class PropagationPath:
    """One reflection path through the cabin.

    Attributes
    ----------
    name:
        Human-readable identifier ("eye", "face", "torso", "seat", ...).
    base_range_m:
        Nominal one-way distance R_p from antenna to reflector. 0 is the
        direct antenna-leakage path.
    amplitude:
        Field amplitude α_p at the receiver for this path (typically from
        :func:`radar_equation_amplitude`).
    displacement_m:
        Optional (n_frames,) radial displacement track added to
        ``base_range_m`` (positive = away from the radar).
    amplitude_scale:
        Optional (n_frames,) multiplicative amplitude modulation.
    """

    name: str
    base_range_m: float
    amplitude: float
    displacement_m: np.ndarray | None = None
    amplitude_scale: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.base_range_m < 0:
            raise ValueError(f"path range must be >= 0, got {self.base_range_m}")
        if self.amplitude < 0:
            raise ValueError(f"path amplitude must be >= 0, got {self.amplitude}")
        if self.displacement_m is not None:
            self.displacement_m = np.asarray(self.displacement_m, dtype=float)
        if self.amplitude_scale is not None:
            self.amplitude_scale = np.asarray(self.amplitude_scale, dtype=float)
            if (self.amplitude_scale < 0).any():
                raise ValueError("amplitude_scale must be non-negative")

    def n_frames(self) -> int | None:
        """Length of the modulation tracks, or None if the path is static."""
        if self.displacement_m is not None:
            return len(self.displacement_m)
        if self.amplitude_scale is not None:
            return len(self.amplitude_scale)
        return None

    def is_static(self) -> bool:
        """True when the path has no slow-time modulation at all."""
        return self.displacement_m is None and self.amplitude_scale is None


@dataclass
class MultipathChannel:
    """Render complex baseband frames from a set of propagation paths."""

    config: RadarConfig
    paths: list[PropagationPath] = field(default_factory=list)

    def add_path(self, path: PropagationPath) -> None:
        """Append a path to the channel."""
        self.paths.append(path)

    def _pulse(self) -> GaussianPulse:
        return GaussianPulse(
            carrier_hz=self.config.carrier_hz,
            bandwidth_hz=self.config.bandwidth_hz,
            amplitude=self.config.tx_amplitude,
        )

    @property
    def range_sigma_m(self) -> float:
        """Std of the pulse envelope expressed in range: σ_r = c σ_p / 2."""
        return SPEED_OF_LIGHT * self._pulse().sigma_s / 2.0

    def infer_n_frames(self) -> int:
        """Number of frames implied by the modulation tracks.

        All modulated paths must agree; raises if none carries a track.
        """
        lengths = {n for p in self.paths if (n := p.n_frames()) is not None}
        if not lengths:
            raise ValueError("no path carries a modulation track; pass n_frames explicitly")
        if len(lengths) > 1:
            raise ValueError(f"inconsistent modulation-track lengths: {sorted(lengths)}")
        return lengths.pop()

    def baseband_frames(
        self, n_frames: int | None = None, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Complex baseband range profiles, shape (n_frames, n_bins).

        Each path contributes
        ``A_p(k) · exp(−(r_n − R_p(k))² / 2σ_r²) · exp(−j 4π f_c R_p(k)/c)``
        per Eq. 6 (Gaussian envelope in range, carrier phase in the
        exponent). Thermal noise (complex AWGN, per-component σ =
        ``config.noise_sigma``) is added when ``rng`` is given.
        """
        if n_frames is None:
            n_frames = self.infer_n_frames()
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        if not self.paths:
            raise ValueError("channel has no paths")

        bin_ranges = self.config.bin_ranges_m[np.newaxis, :]  # (1, n_bins)
        sigma_r = self.range_sigma_m
        k_phase = _FOUR_PI * self.config.carrier_hz / SPEED_OF_LIGHT
        frames = np.zeros((n_frames, self.config.n_bins), dtype=complex)

        for path in self.paths:
            track_len = path.n_frames()
            if track_len is not None and track_len != n_frames:
                raise ValueError(
                    f"path {path.name!r} has a {track_len}-frame track but the channel "
                    f"renders {n_frames} frames"
                )
            ranges = np.full(n_frames, path.base_range_m)
            if path.displacement_m is not None:
                ranges = ranges + path.displacement_m
            amps = np.full(n_frames, path.amplitude)
            if path.amplitude_scale is not None:
                amps = amps * path.amplitude_scale
            ranges_col = ranges[:, np.newaxis]  # (n_frames, 1)
            envelope = np.exp(-((bin_ranges - ranges_col) ** 2) / (2.0 * sigma_r**2))
            phasor = np.exp(-1j * k_phase * ranges_col)
            frames += amps[:, np.newaxis] * envelope * phasor

        if rng is not None and self.config.noise_sigma > 0:
            noise = rng.normal(scale=self.config.noise_sigma, size=(n_frames, self.config.n_bins, 2))
            frames += noise[..., 0] + 1j * noise[..., 1]
        return frames

    def static_profile(self) -> np.ndarray:
        """Single noiseless frame with every path at its nominal range.

        Used for the multipath range-profile figure (Fig. 6(b)).
        """
        saved = [(p.displacement_m, p.amplitude_scale) for p in self.paths]
        try:
            for p in self.paths:
                p.displacement_m = None
                p.amplitude_scale = None
            return self.baseband_frames(n_frames=1)[0]
        finally:
            for p, (disp, scale) in zip(self.paths, saved):
                p.displacement_m = disp
                p.amplitude_scale = scale

"""Physical constants and small unit helpers used across the RF substrate."""

from __future__ import annotations

import numpy as np

__all__ = [
    "SPEED_OF_LIGHT",
    "db_to_linear",
    "linear_to_db",
    "wavelength",
    "range_resolution",
    "phase_change",
]

#: Speed of light in vacuum (m/s). The paper rounds to 3.0e8; we use the
#: exact value — the difference is irrelevant at cabin scale.
SPEED_OF_LIGHT = 299_792_458.0


def db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to linear."""
    return float(10.0 ** (db / 10.0))


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return float(10.0 * np.log10(ratio))


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength (m) of ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def range_resolution(bandwidth_hz: float) -> float:
    """Radar range resolution Δr = c / 2B (m).

    For the paper's 1.4 GHz bandwidth this is 0.107 m. (The paper prints
    "1.07 cm"; c/2B gives 10.7 cm — see DESIGN.md Sec. 5.)
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return SPEED_OF_LIGHT / (2.0 * bandwidth_hz)


def phase_change(carrier_hz: float, displacement_m: float | np.ndarray) -> float | np.ndarray:
    """Round-trip phase change Δφ = −4π f₀ Δd / c of Eq. (9).

    A target moving ``displacement_m`` closer to the radar (positive Δd
    toward the radar) advances the echo and rotates the baseband sample by
    this angle (radians).
    """
    return -4.0 * np.pi * carrier_hz * displacement_m / SPEED_OF_LIGHT

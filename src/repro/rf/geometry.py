"""Antenna pattern and aspect-angle effects.

Two geometric effects make BlinkRadar's accuracy fall off the boresight
(paper Fig. 15(c,d) and Sec. VIII "The limited angular range of the
antenna"):

1. The radar antenna has a finite beam; off-axis targets are illuminated
   and received with less gain (squared, for the two-way trip).
2. The eye is a small, nearly specular reflector: off normal incidence, the
   corneal return is deflected away from the monostatic radar.

:class:`AntennaPattern` models (1) with a Gaussian main lobe;
:func:`aspect_gain` models (2). The elevation tolerance is a little wider
than the azimuth tolerance, matching the paper's observation that detection
survives to ~30° elevation but degrades past ~15–30° azimuth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AntennaPattern", "aspect_gain", "SensorPose"]

_LN2 = float(np.log(2.0))


@dataclass(frozen=True)
class AntennaPattern:
    """Gaussian main-lobe antenna power pattern.

    Attributes
    ----------
    hpbw_azimuth_deg / hpbw_elevation_deg:
        Half-power beamwidths. 65° is typical of the small patch antennas
        on X4-class modules.
    """

    hpbw_azimuth_deg: float = 65.0
    hpbw_elevation_deg: float = 65.0

    def __post_init__(self) -> None:
        if self.hpbw_azimuth_deg <= 0 or self.hpbw_elevation_deg <= 0:
            raise ValueError("beamwidths must be positive")

    def gain(self, azimuth_deg: float, elevation_deg: float) -> float:
        """One-way power gain (boresight = 1) at the given off-axis angles."""
        g_az = np.exp(-_LN2 * (2.0 * azimuth_deg / self.hpbw_azimuth_deg) ** 2)
        g_el = np.exp(-_LN2 * (2.0 * elevation_deg / self.hpbw_elevation_deg) ** 2)
        return float(g_az * g_el)

    def two_way_gain(self, azimuth_deg: float, elevation_deg: float) -> float:
        """Transmit × receive gain for a monostatic radar."""
        return self.gain(azimuth_deg, elevation_deg) ** 2


def aspect_gain(
    azimuth_deg: float,
    elevation_deg: float,
    azimuth_width_deg: float = 22.0,
    elevation_width_deg: float = 30.0,
) -> float:
    """Specular back-scatter factor of a smooth convex reflector (the eye).

    Power returned toward the monostatic radar decays as a Gaussian in the
    aspect angle. The defaults make the combined (antenna × aspect) pattern
    reproduce the paper's geometry sweeps: near-full return within 15°,
    graceful loss to 30°, steep loss beyond.

    Parameters are separate per plane because the eyelid/eye-socket
    geometry shadows azimuthal aspect faster than elevation.
    """
    if azimuth_width_deg <= 0 or elevation_width_deg <= 0:
        raise ValueError("aspect widths must be positive")
    g_az = np.exp(-((azimuth_deg / azimuth_width_deg) ** 2))
    g_el = np.exp(-((elevation_deg / elevation_width_deg) ** 2))
    return float(g_az * g_el)


@dataclass(frozen=True)
class SensorPose:
    """Placement of the radar relative to the driver's eyes.

    Attributes
    ----------
    distance_m:
        Line-of-sight distance from the antenna to the eyes. Paper default
        0.4 m (windshield mount).
    azimuth_deg:
        Horizontal off-axis angle between antenna boresight and the eye
        direction (Fig. 15(d) sweeps 0–60°).
    elevation_deg:
        Vertical off-axis angle (Fig. 15(c) sweeps 0–60°; 0° = line of
        sight).
    """

    distance_m: float = 0.4
    azimuth_deg: float = 0.0
    elevation_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ValueError(f"distance must be positive, got {self.distance_m}")
        if not 0.0 <= self.azimuth_deg < 90.0 or not 0.0 <= self.elevation_deg < 90.0:
            raise ValueError("angles must be in [0, 90) degrees")

"""Reflectivity of in-cabin materials at 7.3 GHz.

The paper's amplitude observable exists because "the surface of the eyeball
and the eyelid are different reflectors ... reflectors of other materials
have different signal reflectivity" (Sec. II-B). This module gives every
scatterer in the simulated cabin a scalar field-reflection coefficient.

Values are representative magnitudes of the Fresnel reflection coefficient
at normal incidence for each material class around 7 GHz (skin and wet
tissue are high-permittivity; fabric and foam are low; metal is ~1). The
pipeline only depends on *contrasts* (eyelid vs eyeball, body vs cabin), so
modest absolute errors are harmless; the contrast signs follow the paper's
observation that the closed eye (eyelid) returns a *smaller* amplitude than
the open eye (Sec. IV-C / Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Material", "MATERIALS", "get_material"]


@dataclass(frozen=True)
class Material:
    """A reflecting material.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"eyelid_skin"``.
    reflectivity:
        Magnitude of the field reflection coefficient in [0, 1].
    description:
        Human-readable note on the modelled surface.
    """

    name: str
    reflectivity: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflectivity <= 1.0:
            raise ValueError(
                f"reflectivity must be in [0, 1], got {self.reflectivity} for {self.name!r}"
            )


_MATERIAL_LIST = [
    Material(
        "eyeball",
        0.62,
        "Open eye: tear-film-covered cornea/sclera; very high water content "
        "gives a strong dielectric contrast.",
    ),
    Material(
        "eyelid_skin",
        0.30,
        "Closed eye: thin (~0.5 mm) dry eyelid skin over soft tissue; "
        "noticeably weaker return than the tear-film-covered eyeball.",
    ),
    Material("face_skin", 0.52, "Facial skin (forehead, cheeks)."),
    Material("torso_clothed", 0.45, "Chest through one or two layers of clothing."),
    Material("metal", 0.98, "Steering-wheel frame, seat rails, brackets."),
    Material("plastic", 0.25, "Dashboard, steering-wheel rim, trim."),
    Material("fabric_foam", 0.15, "Seat cushions and headrest."),
    Material("glass", 0.30, "Windshield and spectacle lenses."),
    Material("hair", 0.30, "Scalp hair over skin."),
]

#: Registry of all known materials, keyed by name.
MATERIALS: dict[str, Material] = {m.name: m for m in _MATERIAL_LIST}

#: One-way field transmission factor of spectacle lenses in front of the eye.
#: Ordinary (myopia) lenses are thin dielectrics; sunglasses often carry a
#: partially conductive tint coating, attenuating a little more. Drives the
#: small accuracy drop of Fig. 16(a).
LENS_TRANSMISSION = {
    "none": 1.0,
    "myopia": 0.93,
    "sunglasses": 0.88,
}


def get_material(name: str) -> Material:
    """Look up a material by name, with a helpful error on typos."""
    try:
        return MATERIALS[name]
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(f"unknown material {name!r}; known materials: {known}") from None

"""Transmit pulse design (paper Eq. 1–3).

The transmitted baseband pulse is the Gaussian

    s(t) = V_tx · exp(−(t − T_p/2)² / (2 σ_p²))          (Eq. 1)

whose σ_p is set by the −10 dB bandwidth, upconverted onto the carrier

    x_k(t) = s(t) · cos(2π f_c (t − k T_s))              (Eq. 3)

:class:`GaussianPulse` provides sampled waveforms for both (Fig. 5(a)), the
spectrum (Fig. 5(b)), and the analytic complex envelope used by the fast
receiver path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.spectral import amplitude_spectrum

__all__ = ["GaussianPulse", "sigma_from_bandwidth", "bandwidth_from_sigma"]

_LN10 = float(np.log(10.0))


def sigma_from_bandwidth(bandwidth_hz: float) -> float:
    """Gaussian σ_p for a given −10 dB (two-sided) RF bandwidth.

    For ``s(t) = exp(−t²/2σ²)`` the power spectrum of the RF pulse falls to
    −10 dB at an offset of B/2 from the carrier, giving
    ``σ = sqrt(ln 10) / (π B)``. With B = 1.4 GHz: σ ≈ 0.345 ns.
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return float(np.sqrt(_LN10) / (np.pi * bandwidth_hz))


def bandwidth_from_sigma(sigma_s: float) -> float:
    """Inverse of :func:`sigma_from_bandwidth`."""
    if sigma_s <= 0:
        raise ValueError(f"sigma must be positive, got {sigma_s}")
    return float(np.sqrt(_LN10) / (np.pi * sigma_s))


@dataclass(frozen=True)
class GaussianPulse:
    """The paper's Gaussian transmit pulse.

    Parameters
    ----------
    carrier_hz:
        Carrier frequency f_c (7.3 GHz in the paper).
    bandwidth_hz:
        −10 dB bandwidth B (1.4 GHz in the paper).
    amplitude:
        Peak amplitude V_tx.
    duration_sigmas:
        Pulse duration T_p expressed in units of σ_p; the envelope is
        centred at T_p/2 per Eq. 1. 8 σ keeps >99.99 % of pulse energy.
    """

    carrier_hz: float = 7.3e9
    bandwidth_hz: float = 1.4e9
    amplitude: float = 1.0
    duration_sigmas: float = 8.0

    def __post_init__(self) -> None:
        if self.carrier_hz <= 0 or self.bandwidth_hz <= 0:
            raise ValueError("carrier and bandwidth must be positive")
        if self.amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {self.amplitude}")
        if self.duration_sigmas <= 0:
            raise ValueError(f"duration_sigmas must be positive, got {self.duration_sigmas}")

    @property
    def sigma_s(self) -> float:
        """Envelope standard deviation σ_p (seconds)."""
        return sigma_from_bandwidth(self.bandwidth_hz)

    @property
    def duration_s(self) -> float:
        """Pulse duration T_p (seconds)."""
        return self.duration_sigmas * self.sigma_s

    def envelope(self, t: np.ndarray) -> np.ndarray:
        """Baseband envelope s(t) of Eq. 1, centred at T_p/2."""
        t = np.asarray(t, dtype=float)
        centred = t - self.duration_s / 2.0
        return self.amplitude * np.exp(-(centred**2) / (2.0 * self.sigma_s**2))

    def envelope_centered(self, t: np.ndarray) -> np.ndarray:
        """Envelope as a function of time offset from the pulse centre.

        Convenience for the receiver, which evaluates the envelope at
        ``t − τ_p`` relative to each path delay.
        """
        t = np.asarray(t, dtype=float)
        return self.amplitude * np.exp(-(t**2) / (2.0 * self.sigma_s**2))

    def waveform(self, sample_rate_hz: float) -> tuple[np.ndarray, np.ndarray]:
        """Sampled RF waveform x_k(t) of Eq. 3 over one pulse duration.

        Returns ``(t, x)``; used for Fig. 5(a). ``sample_rate_hz`` must
        satisfy Nyquist for the carrier plus half the bandwidth.
        """
        nyquist_needed = 2.0 * (self.carrier_hz + self.bandwidth_hz / 2.0)
        if sample_rate_hz < nyquist_needed:
            raise ValueError(
                f"sample rate {sample_rate_hz:.3g} Hz below Nyquist requirement "
                f"{nyquist_needed:.3g} Hz for fc={self.carrier_hz:.3g}, B={self.bandwidth_hz:.3g}"
            )
        n = int(np.ceil(self.duration_s * sample_rate_hz))
        t = np.arange(n) / sample_rate_hz
        x = self.envelope(t) * np.cos(2.0 * np.pi * self.carrier_hz * t)
        return t, x

    def spectrum(self, sample_rate_hz: float) -> tuple[np.ndarray, np.ndarray]:
        """One-sided amplitude spectrum of the RF waveform (Fig. 5(b))."""
        _, x = self.waveform(sample_rate_hz)
        return amplitude_spectrum(x, sample_rate_hz)

    def measured_bandwidth_10db(self, sample_rate_hz: float) -> float:
        """−10 dB bandwidth measured from the sampled spectrum.

        Should round-trip to ``bandwidth_hz``; used by tests to validate the
        σ ↔ bandwidth conversion end to end. The pulse is only a few ns
        long, so the FFT is zero-padded for adequate frequency resolution.
        """
        _, x = self.waveform(sample_rate_hz)
        nfft = 1 << max(14, int(np.ceil(np.log2(len(x) * 16))))
        spectrum = np.abs(np.fft.rfft(x, n=nfft))
        freqs = np.fft.rfftfreq(nfft, d=1.0 / sample_rate_hz)
        power = spectrum**2
        peak = power.max()
        above = freqs[power >= peak * 0.1]
        if above.size < 2:
            raise RuntimeError("spectrum too coarse to measure -10 dB bandwidth")
        return float(above.max() - above.min())

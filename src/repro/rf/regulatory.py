"""UWB regulatory masks and pulse-shape compliance.

Indoor UWB devices must fit the FCC Part 15.209/15.517 indoor emission
mask: −41.3 dBm/MHz EIRP inside 3.1–10.6 GHz, with much tighter limits
outside (notably −75.3 dBm/MHz in the 0.96–1.61 GHz GPS band). The paper's
7.3 GHz / 1.4 GHz signal sits comfortably inside the allowed band; this
module makes that checkable:

- :data:`FCC_INDOOR_MASK` — the piecewise mask in dBm/MHz;
- :func:`mask_limit_dbm_mhz` — the limit at a frequency;
- :func:`check_mask_compliance` — normalise a pulse's PSD to the in-band
  limit and report the worst out-of-band margin;
- :class:`GaussianDerivativePulse` — higher-order derivative pulses, the
  shapes AC-coupled pulse generators actually emit (a plain Gaussian has a
  DC component no antenna radiates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.pulse import sigma_from_bandwidth

__all__ = [
    "FCC_INDOOR_MASK",
    "mask_limit_dbm_mhz",
    "MaskReport",
    "check_mask_compliance",
    "GaussianDerivativePulse",
]

#: FCC indoor UWB mask: (f_low_Hz, f_high_Hz, limit_dBm_per_MHz).
FCC_INDOOR_MASK: tuple[tuple[float, float, float], ...] = (
    (0.0, 0.96e9, -41.3),
    (0.96e9, 1.61e9, -75.3),
    (1.61e9, 1.99e9, -53.3),
    (1.99e9, 3.1e9, -51.3),
    (3.1e9, 10.6e9, -41.3),
    (10.6e9, np.inf, -51.3),
)


def mask_limit_dbm_mhz(frequency_hz: float) -> float:
    """FCC indoor mask limit (dBm/MHz) at ``frequency_hz``."""
    if frequency_hz < 0:
        raise ValueError(f"frequency must be >= 0, got {frequency_hz}")
    for lo, hi, limit in FCC_INDOOR_MASK:
        if lo <= frequency_hz < hi:
            return limit
    return FCC_INDOOR_MASK[-1][2]


@dataclass(frozen=True)
class MaskReport:
    """Result of a mask-compliance check.

    Attributes
    ----------
    compliant:
        True when the (normalised) PSD stays under the mask everywhere.
    worst_margin_db:
        Smallest (limit − PSD) margin across frequency; negative =
        violation.
    worst_frequency_hz:
        Where that margin occurs.
    """

    compliant: bool
    worst_margin_db: float
    worst_frequency_hz: float


def check_mask_compliance(
    waveform: np.ndarray, sample_rate_hz: float, nfft: int = 1 << 16
) -> MaskReport:
    """Check a pulse waveform's spectral *shape* against the FCC mask.

    Absolute EIRP depends on transmit power and antenna gain, which the
    repository does not model in dBm; the check therefore normalises the
    PSD so its in-band (3.1–10.6 GHz) peak sits exactly at the in-band
    limit — the best-case legal operating point — and then verifies the
    out-of-band skirts still clear their (stricter) limits. This is the
    standard shape-compliance argument for pulse designs.
    """
    waveform = np.asarray(waveform, dtype=float)
    if waveform.ndim != 1 or waveform.size < 8:
        raise ValueError("waveform must be 1-D with at least 8 samples")
    spectrum = np.abs(np.fft.rfft(waveform, n=nfft)) ** 2
    freqs = np.fft.rfftfreq(nfft, d=1.0 / sample_rate_hz)
    psd_db = 10 * np.log10(spectrum + 1e-300)

    in_band = (freqs >= 3.1e9) & (freqs <= 10.6e9)
    if not in_band.any():
        raise ValueError("sample rate too low to cover the 3.1-10.6 GHz band")
    # Normalise: in-band peak -> the in-band limit (-41.3 dBm/MHz).
    psd_db = psd_db - psd_db[in_band].max() + (-41.3)

    limits = np.array([mask_limit_dbm_mhz(f) for f in freqs])
    # Ignore bins with negligible energy (numerical floor).
    significant = psd_db > psd_db.max() - 90.0
    margins = limits[significant] - psd_db[significant]
    worst = int(np.argmin(margins))
    return MaskReport(
        compliant=bool(margins.min() >= 0.0),
        worst_margin_db=float(margins.min()),
        worst_frequency_hz=float(freqs[significant][worst]),
    )


@dataclass(frozen=True)
class GaussianDerivativePulse:
    """n-th derivative Gaussian pulse (AC-coupled transmitter shapes).

    A plain Gaussian envelope has a DC component, which no antenna
    radiates; physical pulse generators emit (approximately) derivatives
    of a Gaussian — the 1st ("monocycle") and higher orders. The n-th
    derivative's spectrum is the Gaussian's times f^n: zero at DC, peaked
    at f_peak = √n / (2π σ).

    For carrier-modulated systems like the paper's the distinction is
    cosmetic (the carrier shifts the spectrum up anyway); for carrierless
    UWB the derivative order is the main spectral design knob, and this
    class exists to design such pulses and check them against the mask.
    """

    order: int = 5
    sigma_s: float = sigma_from_bandwidth(1.4e9)
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if not 1 <= self.order <= 15:
            raise ValueError(f"order must be in [1, 15], got {self.order}")
        if self.sigma_s <= 0 or self.amplitude <= 0:
            raise ValueError("sigma and amplitude must be positive")

    @property
    def peak_frequency_hz(self) -> float:
        """Frequency of the spectral peak: √order / (2π σ)."""
        return float(np.sqrt(self.order) / (2.0 * np.pi * self.sigma_s))

    @staticmethod
    def _hermite(order: int, x: np.ndarray) -> np.ndarray:
        """Probabilists' Hermite polynomial He_n(x) by recurrence."""
        h_prev = np.ones_like(x)
        if order == 0:
            return h_prev
        h = x.copy()
        for n in range(1, order):
            h, h_prev = x * h - n * h_prev, h
        return h

    def waveform(self, sample_rate_hz: float, duration_sigmas: float = 16.0):
        """Sampled pulse ``(t, x)`` centred in its window, peak-normalised.

        d^n/dt^n exp(−t²/2σ²) = (−1)^n He_n(t/σ) exp(−t²/2σ²) / σ^n; the
        σ^n scale is absorbed into the unit-peak normalisation.
        """
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        n = int(np.ceil(duration_sigmas * self.sigma_s * sample_rate_hz))
        t = (np.arange(n) - n / 2) / sample_rate_hz
        x = t / self.sigma_s
        pulse = self._hermite(self.order, x) * np.exp(-(x**2) / 2.0)
        peak = np.abs(pulse).max()
        if peak == 0:
            raise RuntimeError("degenerate pulse")
        return t, self.amplitude * pulse / peak

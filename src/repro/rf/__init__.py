"""IR-UWB radar physics substrate.

Models the commercial-grade impulse-radio UWB transceiver that BlinkRadar
runs on (7.3 GHz carrier, 1.4 GHz bandwidth, 40 ms frame period), from the
Gaussian pulse of Eq. (1) through the multipath channel of Eq. (4) to the
complex baseband range profiles of Eq. (6) that the detection pipeline
consumes.

Layout:

- :mod:`repro.rf.constants` — physical constants and unit helpers.
- :mod:`repro.rf.config` — :class:`~repro.rf.config.RadarConfig`.
- :mod:`repro.rf.pulse` — transmit pulse design (Eq. 1–3) and spectra.
- :mod:`repro.rf.regulatory` — FCC UWB emission mask and derivative-pulse
  shapes for compliance checking.
- :mod:`repro.rf.materials` — reflectivity table for in-cabin materials.
- :mod:`repro.rf.geometry` — antenna gain pattern and aspect-angle effects.
- :mod:`repro.rf.channel` — multipath propagation (Eq. 4–5).
- :mod:`repro.rf.receiver` — quadrature receiver producing complex baseband
  range profiles (Eq. 6), in both an exact RF-chain form and a fast
  analytic form.
- :mod:`repro.rf.radar` — the :class:`~repro.rf.radar.UwbRadar` façade.
"""

from repro.rf.channel import MultipathChannel, PropagationPath
from repro.rf.config import RadarConfig
from repro.rf.constants import SPEED_OF_LIGHT
from repro.rf.geometry import AntennaPattern, aspect_gain
from repro.rf.materials import Material, MATERIALS
from repro.rf.pulse import GaussianPulse
from repro.rf.regulatory import (
    FCC_INDOOR_MASK,
    GaussianDerivativePulse,
    MaskReport,
    check_mask_compliance,
    mask_limit_dbm_mhz,
)
from repro.rf.radar import UwbRadar
from repro.rf.receiver import QuadratureReceiver

__all__ = [
    "MultipathChannel",
    "PropagationPath",
    "RadarConfig",
    "SPEED_OF_LIGHT",
    "AntennaPattern",
    "aspect_gain",
    "Material",
    "MATERIALS",
    "GaussianPulse",
    "FCC_INDOOR_MASK",
    "GaussianDerivativePulse",
    "MaskReport",
    "check_mask_compliance",
    "mask_limit_dbm_mhz",
    "UwbRadar",
    "QuadratureReceiver",
]

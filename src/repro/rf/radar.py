"""The :class:`UwbRadar` façade.

Bundles a :class:`~repro.rf.config.RadarConfig` with a
:class:`~repro.rf.channel.MultipathChannel` and produces what the physical
device produces: a stream of timestamped complex baseband range profiles.
Higher layers (the hardware emulation and the scenario simulator) both run
through this class so that "what the radar outputs" is defined exactly
once.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.rf.channel import MultipathChannel
from repro.rf.config import RadarConfig

__all__ = ["UwbRadar", "FrameBatch"]


@dataclass(frozen=True)
class FrameBatch:
    """A batch of radar output.

    Attributes
    ----------
    timestamps_s:
        (n_frames,) slow-time stamps, multiples of the frame period.
    frames:
        (n_frames, n_bins) complex baseband range profiles.
    """

    timestamps_s: np.ndarray
    frames: np.ndarray

    def __post_init__(self) -> None:
        if self.timestamps_s.shape[0] != self.frames.shape[0]:
            raise ValueError(
                f"{self.timestamps_s.shape[0]} timestamps for {self.frames.shape[0]} frames"
            )

    @property
    def n_frames(self) -> int:
        """Number of frames in the batch."""
        return int(self.frames.shape[0])

    @property
    def n_bins(self) -> int:
        """Number of fast-time range bins per frame."""
        return int(self.frames.shape[1])


@dataclass
class UwbRadar:
    """Emulated IR-UWB radar: config + channel → timestamped frames."""

    config: RadarConfig = field(default_factory=RadarConfig)
    channel: MultipathChannel | None = None

    def attach_channel(self, channel: MultipathChannel) -> None:
        """Point the radar at a propagation channel (the 'scene')."""
        if channel.config is not self.config and channel.config != self.config:
            raise ValueError("channel was built for a different RadarConfig")
        self.channel = channel

    def _require_channel(self) -> MultipathChannel:
        if self.channel is None:
            raise RuntimeError("no channel attached; call attach_channel() first")
        return self.channel

    def capture(
        self, n_frames: int | None = None, rng: np.random.Generator | None = None
    ) -> FrameBatch:
        """Capture a batch of frames from the attached channel."""
        channel = self._require_channel()
        frames = channel.baseband_frames(n_frames=n_frames, rng=rng)
        timestamps = np.arange(frames.shape[0]) * self.config.frame_period_s
        return FrameBatch(timestamps_s=timestamps, frames=frames)

    def stream(
        self, n_frames: int, rng: np.random.Generator | None = None, chunk: int = 1
    ) -> Iterator[FrameBatch]:
        """Yield the capture in chunks, emulating a live device.

        The underlying channel is rendered once (its modulation tracks are
        already a fixed timeline); chunking only changes delivery, exactly
        like reading a device FIFO.
        """
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        batch = self.capture(n_frames=n_frames, rng=rng)
        for start in range(0, batch.n_frames, chunk):
            stop = min(start + chunk, batch.n_frames)
            yield FrameBatch(
                timestamps_s=batch.timestamps_s[start:stop], frames=batch.frames[start:stop]
            )

"""Radar configuration.

:class:`RadarConfig` collects every knob of the emulated transceiver. The
defaults reproduce the paper's platform: 7.3 GHz carrier, 1.4 GHz −10 dB
bandwidth, 40 ms frame (chirp) period → 25 frames/s, and an X4-class
fast-time sampler (23.328 GS/s) giving a range-bin spacing of ~6.4 mm over
a 1.5 m observation window.

Note the distinction the paper blurs: bin *spacing* (set by the sampler) is
millimetric, while range *resolution* (set by bandwidth, c/2B) is 10.7 cm.
Two reflectors closer than the resolution blur into overlapping pulse
envelopes even though they occupy distinct bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.constants import SPEED_OF_LIGHT, range_resolution

__all__ = ["RadarConfig"]


@dataclass(frozen=True)
class RadarConfig:
    """Static parameters of the emulated IR-UWB transceiver.

    Attributes
    ----------
    carrier_hz:
        Carrier (centre) frequency f_c. Paper: 7.3 GHz.
    bandwidth_hz:
        −10 dB bandwidth B of the transmitted pulse. Paper: 1.4 GHz.
    frame_rate_hz:
        Slow-time frame rate. Paper: one output every 40 ms → 25 Hz.
    fast_time_rate_hz:
        Fast-time sampling rate of the receiver (X4-class: 23.328 GS/s).
    max_range_m:
        Extent of the fast-time observation window in metres.
    tx_amplitude:
        Pulse amplitude V_tx (arbitrary units; all amplitudes in the
        simulator are relative to this).
    noise_sigma:
        Standard deviation of the complex thermal noise added per range bin
        per frame (same arbitrary units). Calibrated so that the 40 cm
        frontal operating point reaches the paper's accuracy regime.
    """

    carrier_hz: float = 7.3e9
    bandwidth_hz: float = 1.4e9
    frame_rate_hz: float = 25.0
    fast_time_rate_hz: float = 23.328e9
    max_range_m: float = 1.5
    tx_amplitude: float = 1.0
    noise_sigma: float = 5.0e-7

    def __post_init__(self) -> None:
        for name in (
            "carrier_hz",
            "bandwidth_hz",
            "frame_rate_hz",
            "fast_time_rate_hz",
            "max_range_m",
            "tx_amplitude",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {self.noise_sigma}")
        if self.bandwidth_hz >= 2 * self.carrier_hz:
            raise ValueError("bandwidth must be smaller than twice the carrier frequency")

    @property
    def frame_period_s(self) -> float:
        """Slow-time frame period T_s (40 ms with paper defaults)."""
        return 1.0 / self.frame_rate_hz

    @property
    def bin_spacing_m(self) -> float:
        """Fast-time range-bin spacing c / (2 f_s)."""
        return SPEED_OF_LIGHT / (2.0 * self.fast_time_rate_hz)

    @property
    def n_bins(self) -> int:
        """Number of fast-time range bins covering ``max_range_m``."""
        return int(np.ceil(self.max_range_m / self.bin_spacing_m))

    @property
    def bin_ranges_m(self) -> np.ndarray:
        """Centre range of every fast-time bin (m)."""
        return np.arange(self.n_bins) * self.bin_spacing_m

    @property
    def range_resolution_m(self) -> float:
        """Bandwidth-limited range resolution c / 2B (0.107 m here)."""
        return range_resolution(self.bandwidth_hz)

    def range_to_bin(self, range_m: float) -> int:
        """Fast-time bin index whose centre is nearest ``range_m``."""
        if range_m < 0:
            raise ValueError(f"range must be >= 0, got {range_m}")
        return int(round(range_m / self.bin_spacing_m))

    def bin_to_range(self, bin_index: int) -> float:
        """Centre range (m) of fast-time bin ``bin_index``."""
        if bin_index < 0:
            raise ValueError(f"bin index must be >= 0, got {bin_index}")
        return bin_index * self.bin_spacing_m

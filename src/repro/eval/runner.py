"""Session runner: simulate → detect → score.

One *session* is a scenario realisation processed end to end by the
BlinkRadar pipeline, with its detections scored against the simulator's
ground truth. The paper's evaluation structure maps onto:

- :func:`run_session` — one labelled road/lab session (one CDF sample of
  Fig. 13(a)).
- :func:`replay_session` — the same scoring applied to a recorded
  session replayed from a ``.rst`` store file: the detector sees the
  stored frames bit-for-bit, so results are identical to the session
  that was recorded.
- :func:`evaluate_drowsy_battery` — the per-participant drowsiness
  protocol of Sec. V: calibrate the blink-rate classifier on the
  participant's labelled awake/drowsy captures, then classify held-out
  windows (one CDF sample of Fig. 13(b) per participant). Passing a
  :class:`repro.store.Catalog` caches the expensive captures on disk,
  so re-runs replay instead of re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.store.catalog import Catalog
    from repro.store.replay import ReplaySource

from repro.core.pipeline import BlinkRadar, BlinkRadarResult
from repro.core.realtime import RealTimeConfig
from repro.eval.metrics import BlinkScore, score_blink_detection
from repro.sim.scenario import Scenario
from repro.sim.simulator import simulate
from repro.sim.trace import RadarTrace

__all__ = [
    "SessionResult",
    "run_session",
    "replay_session",
    "evaluate_drowsy_battery",
    "session_accuracies",
]


@dataclass(frozen=True)
class SessionResult:
    """One scored session.

    Attributes
    ----------
    scenario:
        The scenario that was simulated (None for sessions replayed
        from a recording, which carries only metadata).
    seed:
        RNG seed of the realisation (-1 when unknown, e.g. a replayed
        recording without a seed in its metadata).
    score:
        Blink-detection score against ground truth.
    detection:
        Full pipeline output (r(k) waveform, restarts, events).
    trace:
        The simulated trace (ground truth + frames).
    """

    scenario: Scenario | None
    seed: int
    score: BlinkScore
    detection: BlinkRadarResult
    trace: RadarTrace

    @property
    def accuracy(self) -> float:
        """Blink-detection accuracy of this session (paper's metric)."""
        return self.score.accuracy


def run_session(
    scenario: Scenario, seed: int, config: RealTimeConfig | None = None
) -> SessionResult:
    """Simulate one scenario realisation and run the detector over it."""
    trace = simulate(scenario, seed=seed)
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz, config=config)
    detection = radar.detect(trace.frames)
    score = score_blink_detection(trace.blink_times_s, detection.event_times_s)
    return SessionResult(
        scenario=scenario, seed=seed, score=score, detection=detection, trace=trace
    )


def replay_session(
    source: "str | Path | ReplaySource", config: RealTimeConfig | None = None
) -> SessionResult:
    """Score a recorded session replayed from the trace store.

    ``source`` is a ``.rst`` path or an open
    :class:`~repro.store.replay.ReplaySource`. The stored frames reach
    the detector bit-for-bit, so for a recording of simulator output
    the result equals :func:`run_session` on the same realisation,
    detection for detection.
    """
    from repro.store.replay import ReplaySource

    if isinstance(source, ReplaySource):
        trace = source.to_trace()
    else:
        with ReplaySource(source) as replay:
            trace = replay.to_trace()
    radar = BlinkRadar(frame_rate_hz=trace.frame_rate_hz, config=config)
    detection = radar.detect(trace.frames)
    score = score_blink_detection(trace.blink_times_s, detection.event_times_s)
    seed = int(trace.metadata.get("seed", -1))
    return SessionResult(
        scenario=None, seed=seed, score=score, detection=detection, trace=trace
    )


def session_accuracies(
    scenarios: list[Scenario],
    seeds: list[int],
    config: RealTimeConfig | None = None,
) -> list[SessionResult]:
    """Run the cross product of scenarios × seeds (Fig. 13(a) battery)."""
    if not scenarios or not seeds:
        raise ValueError("need at least one scenario and one seed")
    return [run_session(sc, seed, config) for sc in scenarios for seed in seeds]


def evaluate_drowsy_battery(
    scenario_awake: Scenario,
    scenario_drowsy: Scenario,
    train_seeds: list[int],
    test_seeds: list[int],
    window_s: float = 60.0,
    config: RealTimeConfig | None = None,
    features: str = "rate+duration",
    catalog: "Catalog | None" = None,
) -> float:
    """Per-participant drowsiness accuracy following the paper's protocol.

    Trains the user's drowsiness model on *detected* blink behaviour from
    the training realisations of both states, then classifies every
    held-out window; returns correctly classified windows / all windows.
    ``features`` selects the model ("rate+duration" default, "rate" for
    the paper-literal ablation). With a ``catalog``, every capture is
    cached in the trace store keyed by (scenario, seed): the first run
    simulates and records, later runs replay from disk.
    """
    if not train_seeds or not test_seeds:
        raise ValueError("need train and test seeds")
    radar = BlinkRadar(frame_rate_hz=scenario_awake.radar.frame_rate_hz, config=config)

    def capture(scenario: Scenario, seed: int) -> np.ndarray:
        if catalog is not None:
            return catalog.get_or_simulate(scenario, seed, simulate_fn=simulate).frames
        return simulate(scenario, seed=seed).frames

    classifier = radar.train_drowsiness(
        awake_captures=[capture(scenario_awake, s) for s in train_seeds],
        drowsy_captures=[capture(scenario_drowsy, s) for s in train_seeds],
        window_s=window_s,
        features=features,
    )

    correct = 0
    total = 0
    for state, scenario in (("awake", scenario_awake), ("drowsy", scenario_drowsy)):
        for seed in test_seeds:
            frames = capture(scenario, seed)
            verdicts = radar.detect_drowsiness(frames, classifier, window_s=window_s)
            correct += sum(v == state for v in verdicts)
            total += len(verdicts)
    if total == 0:
        raise RuntimeError(
            "no full windows scored; sessions must be at least one window long"
        )
    return correct / total


def with_duration(scenario: Scenario, duration_s: float) -> Scenario:
    """Copy of ``scenario`` with a different session length."""
    return replace(scenario, duration_s=duration_s)

"""Export experiment series as CSV/JSON artifacts.

Benchmarks print their series for humans; this module writes the same data
to files so plots and further analysis don't need to re-run simulations.
CSV for spreadsheets, JSON for programmatic reuse; both formats round-trip
through :func:`load_series`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

__all__ = ["export_series", "export_cdf", "load_series"]


def export_series(path: str | Path, series: dict, x_label: str = "x",
                  y_label: str = "value") -> Path:
    """Write an (x → y) series to ``path`` (.csv or .json by suffix)."""
    path = Path(path)
    if path.suffix == ".csv":
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([x_label, y_label])
            for key, value in series.items():
                writer.writerow([key, value])
    elif path.suffix == ".json":
        payload = {
            "x_label": x_label,
            "y_label": y_label,
            "points": [[_jsonable(k), float(v)] for k, v in series.items()],
        }
        path.write_text(json.dumps(payload, indent=2))
    else:
        raise ValueError(f"unsupported export format {path.suffix!r}; use .csv or .json")
    return path


def _jsonable(key):
    if isinstance(key, (int, float, str, bool)):
        return key
    return str(key)


def export_cdf(path: str | Path, samples: np.ndarray, label: str = "accuracy") -> Path:
    """Write a CDF's staircase points (value, probability) to ``path``."""
    from repro.dsp.stats import empirical_cdf

    values, probs = empirical_cdf(np.asarray(samples, dtype=float))
    return export_series(
        path, dict(zip(values.tolist(), probs.tolist())), x_label=label,
        y_label="cdf",
    )


def load_series(path: str | Path) -> dict:
    """Read back a series written by :func:`export_series`."""
    path = Path(path)
    if path.suffix == ".csv":
        with path.open() as fh:
            reader = csv.reader(fh)
            next(reader)  # header
            out = {}
            for row in reader:
                if len(row) != 2:
                    raise ValueError(f"malformed series row {row!r} in {path}")
                key = _parse_scalar(row[0])
                out[key] = float(row[1])
            return out
    if path.suffix == ".json":
        payload = json.loads(path.read_text())
        return {(_parse_scalar(k) if isinstance(k, str) else k): v
                for k, v in payload["points"]}
    raise ValueError(f"unsupported format {path.suffix!r}")


def _parse_scalar(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text

"""Evaluation framework: metrics, scenario batteries, parameter sweeps.

- :mod:`repro.eval.metrics` — event matching and the paper's accuracy
  definitions (Sec. VI-B), consecutive-miss statistics (Fig. 15(a)).
- :mod:`repro.eval.runner` — simulate → detect → score with seeds; the
  per-participant session batteries behind the CDFs of Fig. 13.
- :mod:`repro.eval.sweeps` — the geometry/road/eye-size/window sweeps of
  Fig. 15–16.
- :mod:`repro.eval.report` — plain-text tables of the series the paper
  plots.
"""

from repro.eval.metrics import (
    BlinkScore,
    consecutive_miss_rates,
    match_events,
    score_blink_detection,
)
from repro.eval.runner import SessionResult, evaluate_drowsy_battery, run_session
from repro.eval.sweeps import sweep_scenarios

__all__ = [
    "BlinkScore",
    "consecutive_miss_rates",
    "match_events",
    "score_blink_detection",
    "SessionResult",
    "evaluate_drowsy_battery",
    "run_session",
    "sweep_scenarios",
]

"""Parameter sweeps behind Fig. 15–16.

Each sweep varies one factor of a base scenario and reports the mean
blink-detection accuracy at each level, exactly the series the paper
plots: distance (Fig. 15(b)), elevation (15(c)), azimuth (15(d)), glasses
(16(a)), road-type groups (16(b)), eye size (16(c)) and the drowsiness
detection window (16(d)).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.eval.runner import run_session
from repro.rf.geometry import SensorPose
from repro.sim.scenario import Scenario

__all__ = [
    "sweep_scenarios",
    "distance_sweep",
    "elevation_sweep",
    "azimuth_sweep",
    "glasses_sweep",
    "road_group_sweep",
    "eye_size_sweep",
]


def sweep_scenarios(
    base: Scenario,
    variants: dict[object, Callable[[Scenario], Scenario]],
    seeds: list[int],
) -> dict[object, float]:
    """Run ``base`` modified by each variant over the seeds.

    Returns mean blink-detection accuracy per variant key, preserving the
    insertion order of ``variants``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results: dict[object, float] = {}
    for key, modify in variants.items():
        scenario = modify(base)
        accs = [run_session(scenario, seed).accuracy for seed in seeds]
        results[key] = float(np.mean(accs))
    return results


def _with_pose(base: Scenario, **pose_kwargs) -> Scenario:
    pose = SensorPose(
        distance_m=pose_kwargs.get("distance_m", base.pose.distance_m),
        azimuth_deg=pose_kwargs.get("azimuth_deg", base.pose.azimuth_deg),
        elevation_deg=pose_kwargs.get("elevation_deg", base.pose.elevation_deg),
    )
    return replace(base, pose=pose)


def distance_sweep(
    base: Scenario, seeds: list[int], distances_m: tuple[float, ...] = (0.2, 0.4, 0.8)
) -> dict[float, float]:
    """Fig. 15(b): accuracy vs radar-to-eye distance."""
    return sweep_scenarios(
        base,
        {d: (lambda sc, d=d: _with_pose(sc, distance_m=d)) for d in distances_m},
        seeds,
    )


def elevation_sweep(
    base: Scenario, seeds: list[int], elevations_deg: tuple[float, ...] = (0, 15, 30, 45, 60)
) -> dict[float, float]:
    """Fig. 15(c): accuracy vs elevation angle."""
    return sweep_scenarios(
        base,
        {e: (lambda sc, e=e: _with_pose(sc, elevation_deg=e)) for e in elevations_deg},
        seeds,
    )


def azimuth_sweep(
    base: Scenario, seeds: list[int], azimuths_deg: tuple[float, ...] = (0, 15, 30, 45, 60)
) -> dict[float, float]:
    """Fig. 15(d): accuracy vs azimuth angle."""
    return sweep_scenarios(
        base,
        {a: (lambda sc, a=a: _with_pose(sc, azimuth_deg=a)) for a in azimuths_deg},
        seeds,
    )


def glasses_sweep(
    base: Scenario, seeds: list[int], kinds: tuple[str, ...] = ("none", "myopia", "sunglasses")
) -> dict[str, float]:
    """Fig. 16(a): accuracy vs eyewear."""
    def with_glasses(sc: Scenario, kind: str) -> Scenario:
        return replace(sc, participant=replace(sc.participant, glasses=kind))

    return sweep_scenarios(
        base, {k: (lambda sc, k=k: with_glasses(sc, k)) for k in kinds}, seeds
    )


def road_group_sweep(
    base: Scenario, seeds: list[int], groups: dict[int, list[str]]
) -> dict[int, float]:
    """Fig. 16(b): accuracy per road-type group (mean over the group)."""
    results: dict[int, float] = {}
    for group, roads in groups.items():
        accs = []
        for road in roads:
            scenario = replace(base, road=road)
            accs.extend(run_session(scenario, seed).accuracy for seed in seeds)
        results[group] = float(np.mean(accs))
    return results


def eye_size_sweep(
    base: Scenario,
    seeds: list[int],
    sizes: dict[str, tuple[float, float]],
) -> dict[str, float]:
    """Fig. 16(c): accuracy vs eye opening (width, height) in metres."""
    from repro.physio.driver import EyeGeometry

    def with_eye(sc: Scenario, wh: tuple[float, float]) -> Scenario:
        eye = EyeGeometry(width_m=wh[0], height_m=wh[1])
        return replace(sc, participant=replace(sc.participant, eye=eye))

    return sweep_scenarios(
        base, {k: (lambda sc, wh=wh: with_eye(sc, wh)) for k, wh in sizes.items()}, seeds
    )

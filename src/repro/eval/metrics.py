"""Detection metrics.

The paper's definitions (Sec. VI-B):

- *Accuracy of eye-blink detection* — "the number of correctly detected
  eye blinks over the total number of eye blinks" (i.e. recall against the
  ground truth events; false alarms are not part of the paper's headline
  number, but we report precision and F1 too because a deployable system
  needs them).
- *Accuracy of drowsy driving detection* — correctly classified windows
  over all windows.
- *Continuous missed detection rate* (Fig. 15(a)) — the probability of
  runs of 1, 2, 3 consecutive missed blinks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlinkScore", "match_events", "score_blink_detection", "consecutive_miss_rates"]

#: Default matching tolerance between a detection and a true blink centre.
#: Half the longest drowsy blink plus the LEVD merge latency.
DEFAULT_TOLERANCE_S = 0.6


@dataclass(frozen=True)
class BlinkScore:
    """Scores of one detection run against ground truth.

    Attributes
    ----------
    n_true / n_detected:
        Ground-truth and detected event counts.
    hits:
        True events matched by a detection.
    false_alarms:
        Detections matching no true event.
    matched_true / missed_true:
        Boolean hit mask over the true events, in time order (drives the
        consecutive-miss statistics).
    """

    n_true: int
    n_detected: int
    hits: int
    false_alarms: int
    matched_true: tuple[bool, ...]

    @property
    def accuracy(self) -> float:
        """The paper's blink-detection accuracy: hits / total true blinks."""
        return self.hits / self.n_true if self.n_true else 1.0

    #: ``recall`` is the standard name for the same quantity.
    recall = accuracy

    @property
    def precision(self) -> float:
        """Hits / detections."""
        return self.hits / self.n_detected if self.n_detected else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.accuracy
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def match_events(
    true_times_s: np.ndarray,
    detected_times_s: np.ndarray,
    tolerance_s: float = DEFAULT_TOLERANCE_S,
) -> tuple[list[bool], int]:
    """Greedy one-to-one matching of detections to true events.

    Each true event (in time order) claims its nearest unclaimed detection
    within ``tolerance_s``. Returns the per-true-event hit mask and the
    number of unclaimed detections (false alarms).
    """
    if tolerance_s <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance_s}")
    true_times = np.sort(np.asarray(true_times_s, dtype=float))
    detections = sorted(float(t) for t in np.asarray(detected_times_s, dtype=float))
    available = list(detections)
    hits: list[bool] = []
    for t in true_times:
        candidates = [d for d in available if abs(d - t) <= tolerance_s]
        if candidates:
            best = min(candidates, key=lambda d: abs(d - t))
            available.remove(best)
            hits.append(True)
        else:
            hits.append(False)
    return hits, len(available)


def score_blink_detection(
    true_times_s: np.ndarray,
    detected_times_s: np.ndarray,
    tolerance_s: float = DEFAULT_TOLERANCE_S,
) -> BlinkScore:
    """Match and score one run (see :func:`match_events`)."""
    hits, false_alarms = match_events(true_times_s, detected_times_s, tolerance_s)
    return BlinkScore(
        n_true=len(hits),
        n_detected=len(np.asarray(detected_times_s)),
        hits=int(sum(hits)),
        false_alarms=false_alarms,
        matched_true=tuple(hits),
    )


def consecutive_miss_rates(hit_masks: list[tuple[bool, ...]], max_run: int = 3) -> np.ndarray:
    """Rates of ≥1, ≥2, ..., ≥``max_run`` consecutive missed blinks.

    Matches Fig. 15(a): the paper reports "the first missed detection rate"
    (any miss: 4.9 %), "two consecutive missed detections" (2.1 %) and
    "three consecutive" (0.2 %) — interpreted as the fraction of true
    blinks that begin a missed run of at least that length.
    """
    if max_run < 1:
        raise ValueError(f"max_run must be >= 1, got {max_run}")
    total = sum(len(mask) for mask in hit_masks)
    if total == 0:
        raise ValueError("no ground-truth events to score")
    counts = np.zeros(max_run)
    for mask in hit_masks:
        misses = [not h for h in mask]
        for i, missed in enumerate(misses):
            if not missed:
                continue
            run = 0
            j = i
            while j < len(misses) and misses[j]:
                run += 1
                j += 1
            # i begins a run only if the previous event was a hit.
            if i == 0 or not misses[i - 1]:
                for length in range(1, min(run, max_run) + 1):
                    counts[length - 1] += 1
    return counts / total

"""Plain-text reporting of the series the paper plots.

Benchmarks print through these helpers so every experiment emits the same
row/series layout the paper's tables and figures use, making paper-vs-
measured comparison mechanical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_series", "format_cdf_summary"]


def format_table(title: str, header: list[str], rows: list[list[object]]) -> str:
    """Fixed-width text table."""
    if not rows:
        raise ValueError("table needs at least one row")
    cells = [header] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = [title, "-" * len(title)]
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(title: str, series: dict[object, float], unit: str = "") -> str:
    """One (x, y) series as aligned rows — a figure's data, printed."""
    rows = [[k, v] for k, v in series.items()]
    return format_table(title, ["x", f"value{(' (' + unit + ')') if unit else ''}"], rows)


def format_cdf_summary(title: str, samples: np.ndarray) -> str:
    """Quartiles + extrema of a CDF's samples (Fig. 13 style)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("CDF summary needs samples")
    rows = [
        ["min", float(np.min(samples))],
        ["p25", float(np.percentile(samples, 25))],
        ["median", float(np.median(samples))],
        ["p75", float(np.percentile(samples, 75))],
        ["max", float(np.max(samples))],
    ]
    return format_table(title, ["stat", "value"], rows)

"""Ablation configurations of the full pipeline.

Each factory returns a :class:`~repro.core.realtime.RealTimeConfig` that
disables or swaps exactly one BlinkRadar design choice, for the ablation
benchmark (DESIGN.md Sec. 2, "Baselines & ablations").
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.realtime import RealTimeConfig

__all__ = [
    "amplitude_bin_config",
    "max_variance_bin_config",
    "static_view_config",
    "kasa_fit_config",
    "taubin_fit_config",
]


def amplitude_bin_config(base: RealTimeConfig | None = None) -> RealTimeConfig:
    """Bin selection by the strongest amplitude peak.

    The "naive approach" of Sec. IV-D: locks onto the strongest reflector
    (cabin clutter or torso), not the eye.
    """
    return replace(base if base is not None else RealTimeConfig(), bin_strategy="max_amplitude")


def max_variance_bin_config(base: RealTimeConfig | None = None) -> RealTimeConfig:
    """Bin selection by the global variance maximum.

    Takes the paper's variance criterion without the nearest-reflector
    refinement: the breathing torso wins and the detector watches the
    chest instead of the eyes.
    """
    return replace(base if base is not None else RealTimeConfig(), bin_strategy="max_variance")


def static_view_config(base: RealTimeConfig | None = None) -> RealTimeConfig:
    """No adaptive updates: one cold-start fit, then frozen.

    Ablates Sec. IV-E's adaptive update (bin re-selection and viewing-
    position refits effectively never happen again).
    """
    base = base if base is not None else RealTimeConfig()
    return replace(
        base,
        bin_reselect_interval=10**9,
        viewpos_update_interval=10**9,
        restart_factor=10**6,
        restart_radius_ratio=10**6,
    )


def kasa_fit_config(base: RealTimeConfig | None = None) -> RealTimeConfig:
    """Arc fitting with the Kåsa method instead of Pratt."""
    return replace(base if base is not None else RealTimeConfig(), viewpos_method="kasa")


def taubin_fit_config(base: RealTimeConfig | None = None) -> RealTimeConfig:
    """Arc fitting with the Taubin method instead of Pratt."""
    return replace(base if base is not None else RealTimeConfig(), viewpos_method="taubin")

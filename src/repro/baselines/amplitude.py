"""1-D amplitude baseline.

Runs the same preprocessing and bin selection as BlinkRadar but feeds LEVD
with the raw amplitude |H(k)| of the selected bin instead of the relative
distance to the viewing position. Whether a blink is visible in |H| then
depends on the accidental alignment of the eye's phasor with the total
vector — the geometric luck the viewing position exists to remove — and
head motion leaks straight into the observable.
"""

from __future__ import annotations

import numpy as np

from repro.core.binselect import select_eye_bin
from repro.core.levd import BlinkDetection, LevdConfig, LocalExtremeValueDetector
from repro.core.preprocess import Preprocessor, PreprocessorConfig

__all__ = ["AmplitudeDetector"]


class AmplitudeDetector:
    """Blink detection on the 1-D amplitude of the selected range bin."""

    def __init__(
        self,
        frame_rate_hz: float,
        cold_start_frames: int = 50,
        levd: LevdConfig | None = None,
        bin_strategy: str = "nearest_peak",
    ) -> None:
        if frame_rate_hz <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate_hz}")
        self.frame_rate_hz = frame_rate_hz
        self.cold_start_frames = cold_start_frames
        self.levd_config = levd if levd is not None else LevdConfig()
        self.bin_strategy = bin_strategy

    def detect(self, frames: np.ndarray) -> list[BlinkDetection]:
        """Offline detection over a capture; returns blink events."""
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise ValueError(f"expected (n_frames, n_bins), got {frames.shape}")
        if frames.shape[0] <= self.cold_start_frames:
            return []
        pre = Preprocessor(PreprocessorConfig(subtract_background=False))
        processed = pre.apply(frames)
        selection = select_eye_bin(
            processed[: self.cold_start_frames * 3], strategy=self.bin_strategy
        )
        amplitude = np.abs(processed[:, selection.bin_index])

        detector = LocalExtremeValueDetector(self.frame_rate_hz, self.levd_config)
        detector.seed_sigma(amplitude[: self.cold_start_frames])
        events: list[BlinkDetection] = []
        for value in amplitude[self.cold_start_frames :]:
            event = detector.push(float(value))
            if event is not None:
                events.append(self._shift(event))
        tail = detector.finish()
        if tail is not None:
            events.append(self._shift(tail))
        return events

    def _shift(self, event: BlinkDetection) -> BlinkDetection:
        """Re-anchor LEVD-local indices to the capture's frame counter."""
        index = event.frame_index + self.cold_start_frames
        return BlinkDetection(
            frame_index=index, time_s=index / self.frame_rate_hz, prominence=event.prominence
        )

    def event_times(self, frames: np.ndarray) -> np.ndarray:
        """Convenience: detected apex times as an array."""
        return np.array([e.time_s for e in self.detect(frames)])

"""Simulated camera-based blink detection (the paper's foil).

The paper positions BlinkRadar against camera systems (CarSafe, eye-blink
monitors): cameras are accurate in daylight but "the performance of
camera-based systems degrades in low lighting conditions and may raise
privacy concerns" (Sec. I). To make that comparison runnable, this module
simulates the standard camera pipeline at the signal level:

- the *eye aspect ratio* (EAR) — the landmark-based openness measure used
  by practically every vision blink detector — is generated from the same
  ground-truth eyelid closure the radar simulation uses;
- illumination enters as landmark jitter: EAR noise grows as the scene
  darkens (landmark localisation error is roughly inverse to contrast),
  with motion blur adding on rough roads;
- blinks are detected by the classic EAR-threshold-with-hysteresis rule.

The comparison benchmark sweeps illumination: the camera's accuracy falls
off toward night while the radar — which never sees light — stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physio.blink import BlinkEvent
from repro.physio.driver import DriverModel, ParticipantProfile

__all__ = ["CameraModel", "EarBlinkDetector", "simulate_ear_series"]

#: EAR of a fully open eye (typical landmark geometry) and fully closed.
EAR_OPEN = 0.30
EAR_CLOSED = 0.05


@dataclass(frozen=True)
class CameraModel:
    """Optics/illumination model for the simulated camera.

    Attributes
    ----------
    frame_rate_hz:
        Camera frame rate (30 FPS typical for dashcams).
    illumination_lux:
        Scene illuminance. The paper's lab sits at 220–260 lux; a sunny
        cabin is >5000, dusk ~10, night with IR cut ~1.
    base_noise_ear:
        Landmark-jitter EAR noise at reference illumination.
    reference_lux:
        Illumination at which ``base_noise_ear`` applies.
    motion_blur_ear:
        Extra EAR noise per mm RMS of body vibration (rough roads shake
        the head through the exposure window).
    """

    frame_rate_hz: float = 30.0
    illumination_lux: float = 240.0
    base_noise_ear: float = 0.012
    reference_lux: float = 240.0
    motion_blur_ear: float = 0.01
    _MIN_LUX = 0.1

    def __post_init__(self) -> None:
        if self.frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        if self.illumination_lux <= 0:
            raise ValueError("illumination must be positive")
        if self.base_noise_ear < 0 or self.motion_blur_ear < 0:
            raise ValueError("noise parameters must be >= 0")

    def ear_noise_sigma(self, vibration_rms_m: float = 0.0) -> float:
        """EAR noise at this illumination and vibration level.

        Landmark localisation error scales roughly with 1/√(photon count),
        i.e. with √(reference/illumination).
        """
        lux = max(self.illumination_lux, self._MIN_LUX)
        photon_factor = np.sqrt(self.reference_lux / lux)
        blur = self.motion_blur_ear * (vibration_rms_m * 1e3)
        return float(self.base_noise_ear * photon_factor + blur)


def simulate_ear_series(
    participant: ParticipantProfile,
    duration_s: float,
    camera: CameraModel,
    state: str = "awake",
    rng: np.random.Generator | None = None,
    vibration_rms_m: float = 0.0,
) -> tuple[np.ndarray, list[BlinkEvent]]:
    """Generate an EAR time series plus its ground-truth blink events.

    Uses the same physiological blink process as the radar simulation, so
    camera-vs-radar comparisons see statistically identical drivers.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    n_frames = int(round(duration_s * camera.frame_rate_hz))
    motion = DriverModel(participant).generate(
        n_frames, camera.frame_rate_hz, state, rng, allow_posture_shifts=False
    )
    ear = EAR_OPEN - (EAR_OPEN - EAR_CLOSED) * motion.eyelid_closure
    ear = ear + rng.normal(0.0, camera.ear_noise_sigma(vibration_rms_m), size=n_frames)
    return ear, motion.blink_events


@dataclass(frozen=True)
class EarBlinkDetector:
    """Classic EAR-threshold blink detector with hysteresis.

    A blink starts when EAR drops below ``close_threshold`` and completes
    when it recovers above ``open_threshold``; events shorter than one
    camera frame pair are rejected as noise, longer than ``max_duration_s``
    as occlusions.
    """

    close_threshold: float = 0.21
    open_threshold: float = 0.25
    min_frames: int = 2
    max_duration_s: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.close_threshold < self.open_threshold < EAR_OPEN:
            raise ValueError(
                "thresholds must satisfy 0 < close < open < EAR_OPEN"
            )
        if self.min_frames < 1:
            raise ValueError("min_frames must be >= 1")

    def detect(self, ear: np.ndarray, frame_rate_hz: float) -> np.ndarray:
        """Blink apex times (s) detected in an EAR series."""
        if frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        ear = np.asarray(ear, dtype=float)
        events = []
        in_blink = False
        start = 0
        for k, value in enumerate(ear):
            if not in_blink and value < self.close_threshold:
                in_blink = True
                start = k
            elif in_blink and value > self.open_threshold:
                length = k - start
                if (
                    length >= self.min_frames
                    and length / frame_rate_hz <= self.max_duration_s
                ):
                    events.append((start + k) / 2.0 / frame_rate_hz)
                in_blink = False
        return np.array(events)

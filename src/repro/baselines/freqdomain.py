"""Frequency-domain baseline.

Vital-sign radars estimate respiration and heart rate from spectral peaks
of the slow-time signal. Applying the same recipe to blinking — find a
spectral peak in a plausible blink band and read the rate off it — fails
for the reason the paper gives in Sec. I: blinking is sparse and aperiodic
with wildly variable intervals, so its spectrum has no stable line. This
estimator exists to demonstrate that failure quantitatively (the ablation
benchmark compares its rate error against counting LEVD events).
"""

from __future__ import annotations

import numpy as np

from repro.core.binselect import select_eye_bin
from repro.core.preprocess import Preprocessor, PreprocessorConfig
from repro.dsp.spectral import power_spectrum

__all__ = ["SpectralRateEstimator"]


class SpectralRateEstimator:
    """Blink-rate estimation from the slow-time spectrum of the eye bin."""

    def __init__(
        self,
        frame_rate_hz: float,
        band_hz: tuple[float, float] = (0.15, 0.7),
        bin_strategy: str = "nearest_peak",
    ) -> None:
        if frame_rate_hz <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate_hz}")
        if not 0 < band_hz[0] < band_hz[1] < frame_rate_hz / 2:
            raise ValueError(f"invalid blink band {band_hz}")
        self.frame_rate_hz = frame_rate_hz
        self.band_hz = band_hz
        self.bin_strategy = bin_strategy

    def rate_per_min(self, frames: np.ndarray) -> float:
        """Blink rate (per minute) from the strongest in-band spectral line.

        The band [0.15, 0.7] Hz corresponds to 9–42 blinks/min; anything
        the estimator finds there is as likely a respiration harmonic as a
        blink line, which is the point of the baseline.
        """
        frames = np.asarray(frames)
        if frames.ndim != 2 or frames.shape[0] < 8:
            raise ValueError("need a (n_frames >= 8, n_bins) capture")
        pre = Preprocessor(PreprocessorConfig(subtract_background=False))
        processed = pre.apply(frames)
        selection = select_eye_bin(processed[: min(150, frames.shape[0])],
                                   strategy=self.bin_strategy)
        series = np.abs(processed[:, selection.bin_index])
        freqs, power = power_spectrum(series - series.mean(), self.frame_rate_hz)
        mask = (freqs >= self.band_hz[0]) & (freqs <= self.band_hz[1])
        if not mask.any():
            raise RuntimeError("capture too short to resolve the blink band")
        peak_hz = float(freqs[mask][np.argmax(power[mask])])
        return peak_hz * 60.0

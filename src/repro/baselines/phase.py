"""Phase-only baseline.

LEVD on the unwrapped phase of the selected bin's dynamic vector. The blink
contributes ≲0.3 rad (Eq. 9 with the ~1 mm eyelid travel), but every
millimetre of head motion contributes the same 0.3 rad — respiration sway
alone sweeps ±0.8 rad — so the blink's phase signature is buried by design,
which is exactly the paper's argument for working in the full I/Q plane.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.amplitude import AmplitudeDetector
from repro.core.binselect import select_eye_bin
from repro.core.levd import BlinkDetection, LocalExtremeValueDetector
from repro.core.preprocess import Preprocessor, PreprocessorConfig

__all__ = ["PhaseDetector"]


class PhaseDetector(AmplitudeDetector):
    """Blink detection on the unwrapped phase of the selected range bin."""

    def detect(self, frames: np.ndarray) -> list[BlinkDetection]:
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise ValueError(f"expected (n_frames, n_bins), got {frames.shape}")
        if frames.shape[0] <= self.cold_start_frames:
            return []
        pre = Preprocessor(PreprocessorConfig(subtract_background=False))
        processed = pre.apply(frames)
        selection = select_eye_bin(
            processed[: self.cold_start_frames * 3], strategy=self.bin_strategy
        )
        series = processed[:, selection.bin_index]
        # Phase of the dynamic vector (statics removed by mean subtraction).
        phase = np.unwrap(np.angle(series - series.mean()))

        detector = LocalExtremeValueDetector(self.frame_rate_hz, self.levd_config)
        detector.seed_sigma(phase[: self.cold_start_frames])
        events: list[BlinkDetection] = []
        for value in phase[self.cold_start_frames :]:
            event = detector.push(float(value))
            if event is not None:
                events.append(self._shift(event))
        tail = detector.finish()
        if tail is not None:
            events.append(self._shift(tail))
        return events

"""Baselines and ablation variants.

The paper argues for each design choice mostly by words; these runnable
baselines let the benchmarks argue with numbers:

- :class:`~repro.baselines.amplitude.AmplitudeDetector` — LEVD on the 1-D
  amplitude |H(k)| instead of the I/Q-space relative distance (the
  "leveraging the phase or amplitude" strawman of Sec. I's second
  contribution).
- :class:`~repro.baselines.phase.PhaseDetector` — LEVD on the unwrapped
  phase: head motion swamps the blink's small phase signature.
- :class:`~repro.baselines.freqdomain.SpectralRateEstimator` — frequency-
  domain blink-rate estimation; fails because blinks are sparse and
  aperiodic (Sec. I, challenge 3).
- :mod:`repro.baselines.variants` — :class:`RealTimeConfig` factories for
  ablations of bin selection (amplitude-peak / global-variance), the
  adaptive update (static viewing position) and the arc-fit method.
- :mod:`repro.baselines.camera` — a simulated camera (eye-aspect-ratio)
  blink detector whose accuracy depends on illumination, the foil of the
  paper's privacy/lighting argument.
"""

from repro.baselines.amplitude import AmplitudeDetector
from repro.baselines.camera import CameraModel, EarBlinkDetector, simulate_ear_series
from repro.baselines.freqdomain import SpectralRateEstimator
from repro.baselines.phase import PhaseDetector
from repro.baselines.variants import (
    amplitude_bin_config,
    kasa_fit_config,
    max_variance_bin_config,
    static_view_config,
    taubin_fit_config,
)

__all__ = [
    "AmplitudeDetector",
    "CameraModel",
    "EarBlinkDetector",
    "simulate_ear_series",
    "SpectralRateEstimator",
    "PhaseDetector",
    "amplitude_bin_config",
    "kasa_fit_config",
    "max_variance_bin_config",
    "static_view_config",
    "taubin_fit_config",
]

"""Participant populations.

Two cohorts mirror the paper's:

- :func:`table1_participants` — the 8 volunteers of the Sec. II-C blink-
  frequency study (Table I). The paper's reported per-minute counts are
  kept as reference constants; the profiles' blink statistics are set so
  the simulated cohort reproduces the same morning-vs-night contrast.
  (Table I's header skips participant 3 — a typo in the paper — so one
  column is reconstructed as the cohort median.)
- :func:`study_participants` — the 12 drivers of the main evaluation
  (Sec. VI-A: 8 male, 4 female, ages 19–27), with participant-to-
  participant diversity in eye geometry, eyewear, vitals and blink
  behaviour. This diversity is what spreads the accuracy CDFs of Fig. 13.
"""

from __future__ import annotations

from repro.physio.blink import BlinkStatistics
from repro.physio.cardiac import CardiacModel
from repro.physio.driver import EyeGeometry, ParticipantProfile
from repro.physio.respiration import RespirationModel

__all__ = [
    "TABLE1_MORNING_RATES",
    "TABLE1_NIGHT_RATES",
    "EYE_SIZE_LEVELS",
    "table1_participants",
    "study_participants",
]

#: Table I, "10:00am" row — blinks per minute when energized. The paper
#: prints 7 values under columns 1,2,4,5,6,7,8; participant 3 is filled
#: with the cohort median (20).
TABLE1_MORNING_RATES = (20, 21, 20, 19, 20, 18, 22, 21)

#: Table I, "10:00pm" row — blinks per minute when lethargic.
TABLE1_NIGHT_RATES = (25, 26, 26, 30, 25, 26, 24, 26)

#: Fig. 16(c)'s eye-size levels S1..S6, (width, height) in metres, from the
#: paper's smallest (3.5 × 0.8 cm) upward.
EYE_SIZE_LEVELS: dict[str, tuple[float, float]] = {
    "S1": (0.035, 0.008),
    "S2": (0.038, 0.009),
    "S3": (0.040, 0.010),
    "S4": (0.042, 0.011),
    "S5": (0.044, 0.012),
    "S6": (0.046, 0.013),
}


def table1_participants() -> list[ParticipantProfile]:
    """The 8 volunteers of the Table I blink-frequency study."""
    profiles = []
    for i, (morning, night) in enumerate(zip(TABLE1_MORNING_RATES, TABLE1_NIGHT_RATES), 1):
        profiles.append(
            ParticipantProfile(
                name=f"T{i:02d}",
                awake=BlinkStatistics.awake(rate_per_min=float(morning)),
                drowsy=BlinkStatistics.drowsy(rate_per_min=float(night)),
            )
        )
    return profiles


# Per-participant diversity of the 12-driver cohort. Values are fixed (not
# drawn at runtime) so every benchmark sees the identical population.
_STUDY_ROWS = [
    # name, eye (w, h) m, glasses, awake rate, drowsy rate, resp Hz, HR Hz, restlessness
    ("P01", (0.042, 0.011), "none", 19.0, 26.0, 0.25, 1.15, 1.0),
    ("P02", (0.044, 0.012), "none", 17.0, 24.0, 0.22, 1.05, 0.8),
    ("P03", (0.040, 0.010), "myopia", 21.0, 28.0, 0.27, 1.25, 1.2),
    ("P04", (0.038, 0.009), "none", 20.0, 27.0, 0.24, 1.10, 1.0),
    ("P05", (0.046, 0.013), "none", 18.0, 25.0, 0.26, 1.20, 0.9),
    ("P06", (0.041, 0.011), "myopia", 22.0, 30.0, 0.23, 1.00, 1.1),
    ("P07", (0.043, 0.012), "none", 16.0, 23.0, 0.28, 1.30, 0.7),
    ("P08", (0.039, 0.010), "none", 20.0, 26.0, 0.25, 1.12, 1.3),
    ("P09", (0.036, 0.009), "sunglasses", 19.0, 27.0, 0.24, 1.18, 1.0),
    ("P10", (0.045, 0.012), "none", 21.0, 29.0, 0.26, 1.08, 0.9),
    ("P11", (0.040, 0.011), "myopia", 18.0, 24.0, 0.27, 1.22, 1.1),
    ("P12", (0.037, 0.009), "none", 23.0, 31.0, 0.25, 1.15, 1.2),
]


def study_participants() -> list[ParticipantProfile]:
    """The 12 drivers of the main evaluation (Sec. VI-A)."""
    profiles = []
    for name, (w, h), glasses, awake_rate, drowsy_rate, resp_hz, hr_hz, restless in _STUDY_ROWS:
        profiles.append(
            ParticipantProfile(
                name=name,
                eye=EyeGeometry(width_m=w, height_m=h),
                glasses=glasses,
                awake=BlinkStatistics.awake(rate_per_min=awake_rate),
                drowsy=BlinkStatistics.drowsy(rate_per_min=drowsy_rate),
                respiration=RespirationModel(rate_hz=resp_hz),
                cardiac=CardiacModel(rate_hz=hr_hz),
                restlessness=restless,
            )
        )
    return profiles

"""Synthetic study populations standing in for the paper's participants."""

from repro.datasets.participants import (
    EYE_SIZE_LEVELS,
    TABLE1_NIGHT_RATES,
    TABLE1_MORNING_RATES,
    study_participants,
    table1_participants,
)

__all__ = [
    "EYE_SIZE_LEVELS",
    "TABLE1_NIGHT_RATES",
    "TABLE1_MORNING_RATES",
    "study_participants",
    "table1_participants",
]

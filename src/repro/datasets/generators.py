"""Dataset generation: build and cache the study's trace corpus on disk.

The paper's evaluation is a corpus of labelled sessions; this module
materialises the synthetic equivalent as ``.npz`` traces plus a JSON
manifest, so benchmarks and downstream experiments can share one corpus
instead of re-simulating.

Layout::

    <root>/
      manifest.json
      P01_awake_smooth_highway_s0500.npz
      P01_drowsy_smooth_highway_s0500.npz
      ...
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.datasets.participants import study_participants
from repro.sim import RadarTrace, Scenario, simulate

__all__ = ["SessionSpec", "generate_study_corpus", "load_manifest"]


@dataclass(frozen=True)
class SessionSpec:
    """One session in the corpus manifest."""

    participant: str
    state: str
    road: str
    seed: int
    duration_s: float
    filename: str

    def to_dict(self) -> dict:
        """JSON-serialisable form for the manifest."""
        return {
            "participant": self.participant,
            "state": self.state,
            "road": self.road,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "filename": self.filename,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SessionSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**d)


def generate_study_corpus(
    root: str | Path,
    roads: tuple[str, ...] = ("smooth_highway",),
    states: tuple[str, ...] = ("awake", "drowsy"),
    seeds: tuple[int, ...] = (500,),
    duration_s: float = 60.0,
    participants=None,
    overwrite: bool = False,
) -> list[SessionSpec]:
    """Simulate and save the study corpus; returns the manifest entries.

    Existing files are reused unless ``overwrite`` — generation is
    deterministic given (participant, state, road, seed), so a cached file
    is always identical to a regenerated one.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    participants = participants if participants is not None else study_participants()
    specs: list[SessionSpec] = []
    for participant in participants:
        for state in states:
            for road in roads:
                for seed in seeds:
                    filename = f"{participant.name}_{state}_{road}_s{seed:04d}.npz"
                    spec = SessionSpec(
                        participant=participant.name,
                        state=state,
                        road=road,
                        seed=seed,
                        duration_s=duration_s,
                        filename=filename,
                    )
                    specs.append(spec)
                    path = root / filename
                    if path.exists() and not overwrite:
                        continue
                    scenario = Scenario(
                        participant=participant,
                        state=state,
                        road=road,
                        duration_s=duration_s,
                    )
                    simulate(scenario, seed=seed).save(path)
    manifest = root / "manifest.json"
    manifest.write_text(json.dumps([s.to_dict() for s in specs], indent=2))
    return specs


def load_manifest(root: str | Path) -> list[tuple[SessionSpec, RadarTrace]]:
    """Load every (spec, trace) pair recorded in a corpus manifest."""
    root = Path(root)
    manifest = root / "manifest.json"
    if not manifest.exists():
        raise FileNotFoundError(f"no manifest.json under {root}")
    specs = [SessionSpec.from_dict(d) for d in json.loads(manifest.read_text())]
    return [(spec, RadarTrace.load(root / spec.filename)) for spec in specs]

"""Diagnostic records produced by reprolint rules.

A :class:`Diagnostic` is deliberately plain: a path, a position, a rule
name and a human-readable message. Everything downstream — suppression,
baselining, reporting — works on these records, so rules never need to
know how their findings are filtered or rendered.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding at one source position.

    Field order doubles as the sort order (path, then line, then
    column), which gives reporters a stable, diff-friendly output
    independent of which worker thread produced the finding first.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def fingerprint(self) -> str:
        """Position-independent identity used by the baseline file.

        Line/column are excluded on purpose: editing an unrelated part
        of a file must not invalidate its baselined findings.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """The classic one-line ``path:line:col: [rule] message`` form."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

"""The reprolint engine: discovery, parallel per-file analysis, filtering.

Files are analysed independently — parse, pragma scan, every rule — so
the engine fans them out over a thread pool (AST work releases no GIL,
but file IO does, and per-file isolation keeps the design ready for a
process pool if the tree ever grows enough to need one). Findings are
merged, sorted, filtered through inline pragmas and the baseline, and
handed to a reporter.

Public entry point: :func:`lint_paths`.
"""

from __future__ import annotations

import ast
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.cache import ResultCache, rule_fingerprint
from repro.lint.context import FileContext, module_parts_of
from repro.lint.diagnostics import Diagnostic
from repro.lint.reporters import LintResult
from repro.lint.rules import LintRule, all_rules
from repro.lint.summaries import ProjectAnalysis, load_project
from repro.lint.suppress import scan_pragmas

__all__ = [
    "discover_files",
    "check_file",
    "lint_paths",
    "default_jobs",
    "build_project",
]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})

#: CPython 3.11's AST-to-object converter keeps its recursion counter on
#: the *interpreter*, not the thread (fixed in 3.12); two overlapping
#: ``ast.parse`` calls can corrupt it when a GC pass runs Python-level
#: finalizers mid-conversion and yields the GIL. Parsing is a small
#: fraction of per-file work now that the dataflow rules dominate, so
#: serialising just the parse keeps the fan-out and removes the race.
_PARSE_LOCK = threading.Lock()


def default_jobs() -> int:
    """Worker count: enough to hide IO, capped to stay polite."""
    return max(1, min(8, os.cpu_count() or 1))


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


def _display_path(path: Path, root: Path) -> str:
    """Root-relative posix path when possible (stable baseline keys)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_bytes(raw: bytes, filename: str) -> ast.Module | None:
    """Decode + parse under the parse lock; None on any syntax problem."""
    try:
        source = raw.decode("utf-8")
        with _PARSE_LOCK:
            return ast.parse(source, filename=filename)
    except (UnicodeDecodeError, SyntaxError):
        return None


def build_project(
    files: list[Path], root: Path, store_dir: Path | None
) -> ProjectAnalysis:
    """Whole-tree pre-pass: facts, call graph, summaries for ``files``.

    Only files that live inside the ``repro`` package contribute facts;
    everything else (tests, tools) is linted per-file as before.
    """
    sources: list[tuple[str, tuple[str, ...], bytes]] = []
    root_resolved = root.resolve()
    for path in files:
        resolved = path.resolve()
        parts = module_parts_of(resolved.parts)
        if parts is None:
            continue
        try:
            raw = path.read_bytes()
        except OSError:
            continue
        try:
            display = resolved.relative_to(root_resolved).as_posix()
        except ValueError:
            display = path.as_posix()
        sources.append((display, parts, raw))
    return load_project(
        sources, store_dir, lambda display, raw: _parse_bytes(raw, display)
    )


def check_file(
    path: Path,
    rules: tuple[LintRule, ...],
    root: Path,
    cache: ResultCache | None = None,
    project: ProjectAnalysis | None = None,
    fingerprint: str | None = None,
) -> tuple[list[Diagnostic], int]:
    """Analyse one file; returns (kept findings, inline-suppressed count)."""
    display = _display_path(path, root)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return [Diagnostic(display, 1, 0, "parse-error", f"unreadable file: {exc}")], 0
    key = ""
    if cache is not None:
        if fingerprint is None:
            fingerprint = rule_fingerprint(rules)
            if project is not None:
                fingerprint = f"{fingerprint}|{project.digest}"
        key = cache.key(display, raw, fingerprint)
        hit = cache.get(key)
        if hit is not None:
            return hit
    try:
        source = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        return [Diagnostic(display, 1, 0, "parse-error", f"unreadable file: {exc}")], 0
    try:
        with _PARSE_LOCK:
            tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        return [Diagnostic(display, line, col, "parse-error", f"syntax error: {exc.msg}")], 0

    pragmas, pragma_errors = scan_pragmas(source)
    ctx = FileContext(
        path=display,
        source=source,
        tree=tree,
        pragmas=pragmas,
        module_parts=module_parts_of(path.resolve().parts),
        project=project,
    )
    found: list[Diagnostic] = [
        Diagnostic(display, err.line, err.col, "bad-pragma", err.detail)
        for err in pragma_errors
    ]
    for rule in rules:
        found.extend(rule.check(ctx))

    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in found:
        pragma = pragmas.get(diag.line)
        if pragma is not None and diag.rule != "bad-pragma" and pragma.suppresses(diag.rule):
            suppressed += 1
        else:
            kept.append(diag)
    if cache is not None:
        cache.put(key, kept, suppressed)
    return kept, suppressed


def lint_paths(
    paths: list[Path],
    rules: tuple[LintRule, ...] | None = None,
    baseline: Baseline | None = None,
    jobs: int | None = None,
    root: Path | None = None,
    cache: ResultCache | None = None,
) -> LintResult:
    """Lint every .py file under ``paths`` and return the filtered result.

    Parameters
    ----------
    paths:
        Files or directories to analyse.
    rules:
        Rule set (default: the full registry).
    baseline:
        Acknowledged findings to subtract (default: empty).
    jobs:
        Thread-pool width; 1 runs serially (handy under a debugger).
    root:
        Directory that display paths / baseline fingerprints are made
        relative to (default: the current working directory).
    cache:
        Optional :class:`~repro.lint.cache.ResultCache`; files whose
        content, path, and rule set match a cached entry are not
        re-analysed.
    """
    active_rules = rules if rules is not None else all_rules()
    base = baseline if baseline is not None else Baseline()
    workers = jobs if jobs is not None else default_jobs()
    anchor = root if root is not None else Path.cwd()

    files = discover_files(paths)

    # Interprocedural pre-pass: built once, shared (read-only) by every
    # worker. Skipped entirely when no active rule consumes it, so a
    # targeted ``--select`` run keeps the old intra-procedural cost.
    project: ProjectAnalysis | None = None
    if any(rule.requires_project for rule in active_rules):
        project = build_project(
            files, anchor, cache.directory if cache is not None else None
        )
    fingerprint = rule_fingerprint(active_rules)
    if project is not None:
        fingerprint = f"{fingerprint}|{project.digest}"

    diagnostics: list[Diagnostic] = []
    suppressed = 0
    if workers <= 1 or len(files) <= 1:
        per_file = [
            check_file(f, active_rules, anchor, cache, project, fingerprint)
            for f in files
        ]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            per_file = list(
                pool.map(
                    lambda f: check_file(
                        f, active_rules, anchor, cache, project, fingerprint
                    ),
                    files,
                )
            )
    for kept, file_suppressed in per_file:
        diagnostics.extend(kept)
        suppressed += file_suppressed
    diagnostics.sort()

    fresh, absorbed, stale = base.partition(diagnostics)
    return LintResult(
        diagnostics=fresh,
        suppressed=suppressed,
        baselined=absorbed,
        stale_baseline=stale,
        files=len(files),
    )

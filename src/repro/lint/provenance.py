"""Value-provenance classification for the dataflow rules.

The dataflow rule families need one shared vocabulary: which expressions
*mint* a tracked value (an RNG stream, a thread, a lock, an SPI/device
handle, a detector session), which function parameters carry a seeded
generator in from the caller, and which method calls *release* a tracked
resource. Classification is by dotted spelling — the same convention the
lexical rules use (``dotted_name``), which matches this repo's import
style without needing whole-program import resolution.
"""

from __future__ import annotations

import ast

from repro.lint.cfg import Element, FunctionLike
from repro.lint.rules import dotted_name

__all__ = [
    "KIND_NOUN",
    "RELEASE_METHODS",
    "TRACKED_KINDS",
    "binding_of",
    "constructor_kind",
    "kind_of_dotted",
    "rng_param_names",
]

#: RNG-minting callables: explicit-seed numpy generator constructors.
_RNG_CTORS = frozenset({"default_rng", "Generator", "RandomState"})

#: ``threading`` synchronisation primitives (provenance tag only — lock
#: lifecycle is ``with``-governed everywhere and policed by guarded-by).
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Hardware handle types from ``repro.hardware`` (no release method —
#: tagged for provenance, exempt from lifecycle requirements).
_HANDLE_CTORS = frozenset({"SpiBus", "XepDriver", "FrameStream", "UwbRadarDevice"})

#: Trace-store handle types from ``repro.store``: a writer left unclosed
#: loses its buffered tail chunk and never finalizes, a reader pins an
#: mmap, a recorder owns a writer.
_STORE_CTORS = frozenset({"TraceWriter", "TraceReader", "Recorder"})

#: Network-service handles from ``repro.gateway``: a server left
#: unreleased keeps its listen socket and worker pool, a client keeps a
#: connection and a background reader task. Release spellings differ per
#: type (``shutdown`` for the ingest server, ``stop`` for the HTTP
#: endpoint, ``close`` for clients), so the kind accepts all three.
_GATEWAY_CTORS = frozenset({"GatewayServer", "GatewayClient", "MetricsHttpServer"})

#: Process-shard handles from ``repro.shard``: a worker left unreleased
#: keeps a live child process *and* a shared-memory segment (which
#: outlives the interpreter until unlinked), a ring pins its mapping, a
#: fleet owns one of each per shard. Release spellings differ per type
#: (``close`` for workers and rings, ``stop`` for the fleet), so the
#: kind accepts both.
_SHARD_CTORS = frozenset({"ShardWorker", "ShmRing", "ShardedFleet"})

#: Resource kinds the lifecycle rule enforces, with the method names
#: that count as releasing them on a path.
RELEASE_METHODS: dict[str, frozenset[str]] = {
    "thread": frozenset({"join"}),
    "session": frozenset({"close"}),
    "file": frozenset({"close"}),
    "store": frozenset({"close"}),
    "gateway": frozenset({"close", "shutdown", "stop"}),
    "shard": frozenset({"close", "stop"}),
}

#: Kinds with a known release protocol (the lifecycle rule's scope).
TRACKED_KINDS = frozenset(RELEASE_METHODS)

#: Human description per kind, used in diagnostics.
KIND_NOUN: dict[str, str] = {
    "rng": "seeded generator",
    "thread": "thread",
    "lock": "lock",
    "handle": "hardware handle",
    "session": "detector session",
    "file": "file handle",
    "store": "trace-store handle",
    "gateway": "gateway service handle",
    "shard": "shard runtime handle",
}


def constructor_kind(call: ast.Call) -> str | None:
    """Provenance kind minted by ``call``, or None for untracked calls."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    return kind_of_dotted(dotted)


def kind_of_dotted(dotted: str) -> str | None:
    """Provenance kind minted by a constructor's dotted spelling.

    Shared with the interprocedural summary layer, which classifies by
    symbolic spelling rather than live AST nodes.
    """
    parts = dotted.split(".")
    last = parts[-1]
    if last in _RNG_CTORS:
        return "rng"
    if last == "Thread" and (len(parts) == 1 or parts[-2] == "threading"):
        return "thread"
    if last in _LOCK_CTORS and (len(parts) == 1 or parts[-2] == "threading"):
        return "lock"
    if last in _HANDLE_CTORS:
        return "handle"
    if last in ("DetectorSession", "IngestSession"):
        return "session"
    if last in _STORE_CTORS:
        return "store"
    if last in _GATEWAY_CTORS:
        return "gateway"
    if last in _SHARD_CTORS:
        return "shard"
    # ShmRing mints through classmethods, not a bare constructor call.
    if last in ("create", "attach") and len(parts) >= 2 and parts[-2] == "ShmRing":
        return "shard"
    if dotted == "open":
        return "file"
    return None


def rng_param_names(fn: FunctionLike) -> frozenset[str]:
    """Parameters that carry a caller-seeded generator.

    A parameter counts when its annotation names a ``Generator`` or when
    its name follows the repo convention (``rng`` or ``*_rng``).
    """
    names: set[str] = set()
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg == "rng" or arg.arg.endswith("_rng"):
            names.add(arg.arg)
            continue
        annotation = arg.annotation
        if annotation is not None:
            text = _annotation_text(annotation)
            if "Generator" in text:
                names.add(arg.arg)
    return frozenset(names)


def _annotation_text(annotation: ast.expr) -> str:
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value
    try:
        return ast.unparse(annotation)
    except ValueError:
        return ""


def binding_of(element: Element) -> tuple[str, ast.expr] | None:
    """``(name, value)`` when ``element`` binds one plain name to a value.

    Only simple ``name = value`` / ``name: T = value`` forms qualify —
    tuple unpacking and attribute targets are aliasing, not minting.
    """
    if isinstance(element, ast.Assign):
        if len(element.targets) == 1 and isinstance(element.targets[0], ast.Name):
            return element.targets[0].id, element.value
        return None
    if isinstance(element, ast.AnnAssign):
        if element.value is not None and isinstance(element.target, ast.Name):
            return element.target.id, element.value
    return None

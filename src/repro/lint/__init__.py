"""reprolint — AST-based invariant checker for this reproduction.

A dependency-free static-analysis framework enforcing the conventions
the codebase's correctness rests on:

- **determinism** (``wall-clock``, ``global-rng``) — the pure
  simulation packages must be bit-reproducible from a seed;
- **units discipline** (``unit-suffix``, ``unit-mismatch``) — physical
  quantities carry their unit in the name, and units never cross
  families silently;
- **lock discipline** (``guarded-by``) — state written under a lock is
  always accessed under it;
- **API hygiene** (``mutable-default``, ``except-hygiene``,
  ``no-assert``, ``or-default``).

Run it with ``python -m repro lint [paths]``; see
``docs/static_analysis.md`` for the full catalogue, suppression pragmas
and the baseline workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import check_file, discover_files, lint_paths
from repro.lint.reporters import LintResult, render_json, render_text
from repro.lint.rules import LintRule, all_rules, rules_by_name

__all__ = [
    "Baseline",
    "Diagnostic",
    "LintResult",
    "LintRule",
    "all_rules",
    "check_file",
    "discover_files",
    "lint_paths",
    "render_json",
    "render_text",
    "rules_by_name",
]

"""Intra-procedural control-flow graphs for the dataflow rules.

:func:`build_cfg` turns one function body into basic blocks connected by
``flow`` and ``except`` edges, covering every statement form in the
grammar: branches, loops (with ``else`` clauses and constant-condition
pruning), ``with``, ``match``, and the full ``try``/``except``/``else``/
``finally`` shape. Comprehensions and nested function bodies are opaque:
their loads count as uses at the statement that contains them, but their
internal control flow is not modelled (each nested function gets its own
CFG via :func:`iter_functions`).

Blocks carry *elements* rather than raw statements: simple statements
appear as themselves, control headers appear as their condition/iterator
expression, and implicit bindings (parameters, loop targets, ``with ...
as``, ``except ... as``, ``match`` captures) appear as small wrapper
records so the dataflow layer sees every definition site with a source
position.

Exception modelling is deliberately bounded: an ``except`` edge is added
from every block of a ``try`` body to each of its handlers (and to the
``finally`` block when there are no handlers), and explicit ``raise``
statements are routed through enclosing ``finally`` blocks to the
innermost enclosing handler set or the function exit. Code *outside* any
``try`` is not given implicit may-raise edges — a linter that assumed
every expression can raise would drown real findings in phantom paths.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Union, cast

__all__ = [
    "ArgsBind",
    "Block",
    "CFG",
    "Edge",
    "Element",
    "ExceptBind",
    "FunctionLike",
    "LoopTargetBind",
    "MatchBind",
    "WithBind",
    "build_cfg",
    "iter_functions",
]

FunctionLike = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call names that make local-variable analysis unsound for a function.
_DYNAMIC_LOCALS = frozenset({"locals", "vars", "eval", "exec", "globals"})


# --------------------------------------------------------------- bind wrappers
@dataclass(frozen=True, eq=False)
class ArgsBind:
    """Parameter binding at function entry."""

    fn: FunctionLike

    @property
    def lineno(self) -> int:
        return self.fn.lineno

    @property
    def col_offset(self) -> int:
        return self.fn.col_offset


@dataclass(frozen=True, eq=False)
class LoopTargetBind:
    """Per-iteration binding of a ``for`` target."""

    loop: Union[ast.For, ast.AsyncFor]

    @property
    def lineno(self) -> int:
        return self.loop.target.lineno

    @property
    def col_offset(self) -> int:
        return self.loop.target.col_offset


@dataclass(frozen=True, eq=False)
class WithBind:
    """One ``with`` item: the context manager and its optional ``as`` name."""

    item: ast.withitem
    stmt: Union[ast.With, ast.AsyncWith]

    @property
    def lineno(self) -> int:
        return self.item.context_expr.lineno

    @property
    def col_offset(self) -> int:
        return self.item.context_expr.col_offset


@dataclass(frozen=True, eq=False)
class ExceptBind:
    """Handler-entry binding of ``except E as name``."""

    handler: ast.ExceptHandler

    @property
    def lineno(self) -> int:
        return self.handler.lineno

    @property
    def col_offset(self) -> int:
        return self.handler.col_offset


@dataclass(frozen=True, eq=False)
class MatchBind:
    """Names captured by one ``match`` case pattern."""

    case: ast.match_case
    subject: ast.expr

    @property
    def lineno(self) -> int:
        return self.case.pattern.lineno

    @property
    def col_offset(self) -> int:
        return self.case.pattern.col_offset


Element = Union[ast.stmt, ast.expr, ArgsBind, LoopTargetBind, WithBind, ExceptBind, MatchBind]


# --------------------------------------------------------------------- graph
@dataclass(frozen=True)
class Edge:
    """Directed edge between blocks; ``kind`` is ``flow`` or ``except``."""

    src: int
    dst: int
    kind: str = "flow"


class Block:
    """One basic block: a label, ordered elements, and edge lists."""

    def __init__(self, index: int, label: str) -> None:
        self.index = index
        self.label = label
        self.elements: list[Element] = []
        self.succ: list[Edge] = []
        self.pred: list[Edge] = []

    def first_positioned(self) -> Element | None:
        """The first element with a source position (for diagnostics)."""
        for element in self.elements:
            if getattr(element, "lineno", None) is not None:
                return element
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.index}, {self.label!r}, {len(self.elements)} elements)"


@dataclass
class CFG:
    """Control-flow graph of one function."""

    fn: FunctionLike
    qualname: str
    blocks: list[Block]
    entry: int
    exit: int
    #: Names declared ``global``/``nonlocal`` anywhere in the function.
    global_names: frozenset[str]
    #: Names referenced inside nested functions/lambdas (closure captures;
    #: liveness-based rules must treat these as always potentially live).
    closure_names: frozenset[str]
    #: True when the function calls locals()/vars()/eval()/exec()/globals();
    #: name-level analyses are unsound then and rules should stand down.
    uses_dynamic_locals: bool
    #: Statement nodes the builder did not recognise (must stay empty; the
    #: self-check test asserts no statement form falls back here).
    unsupported: list[ast.stmt] = field(default_factory=list)

    def reachable(self) -> frozenset[int]:
        """Block indices reachable from the entry along any edge kind."""
        seen = {self.entry}
        frontier = [self.entry]
        while frontier:
            block = frontier.pop()
            for edge in self.blocks[block].succ:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        return frozenset(seen)


# ------------------------------------------------------------------- builder
@dataclass
class _LoopCtx:
    break_to: int
    continue_to: int


@dataclass
class _TryCtx:
    handler_entries: list[int]
    finally_entry: int | None
    finally_exit: int | None
    #: Continuation blocks the finally subgraph must feed into (exit,
    #: loop targets, the after-block...) — wired when the try completes.
    pending: set[int] = field(default_factory=set)


def _const_truth(test: ast.expr) -> bool | None:
    """Constant truth value of a test expression, or None when dynamic."""
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return None


def _irrefutable(pattern: ast.pattern) -> bool:
    """True for a bare capture/wildcard pattern (always matches)."""
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None


class _Builder:
    def __init__(self, fn: FunctionLike, qualname: str) -> None:
        self.fn = fn
        self.qualname = qualname
        self.blocks: list[Block] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.cur = self.entry
        self.stack: list[_LoopCtx | _TryCtx] = []
        self.unsupported: list[ast.stmt] = []
        self.global_names: set[str] = set()

    # ---------------------------------------------------------- graph helpers
    def _new(self, label: str) -> int:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block.index

    def _edge(self, src: int, dst: int, kind: str = "flow") -> None:
        edge = Edge(src, dst, kind)
        self.blocks[src].succ.append(edge)
        self.blocks[dst].pred.append(edge)

    def _emit(self, element: Element) -> None:
        self.blocks[self.cur].elements.append(element)

    # ------------------------------------------------------------ entry point
    def build(self) -> CFG:
        self._emit(ArgsBind(self.fn))
        self._stmts(self.fn.body)
        self._edge(self.cur, self.exit)
        closure, dynamic = _scan_scopes(self.fn)
        return CFG(
            fn=self.fn,
            qualname=self.qualname,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
            global_names=frozenset(self.global_names),
            closure_names=closure,
            uses_dynamic_locals=dynamic,
            unsupported=self.unsupported,
        )

    # ------------------------------------------------------------- statements
    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(
            node,
            (
                ast.Assign,
                ast.AugAssign,
                ast.AnnAssign,
                ast.Expr,
                ast.Pass,
                ast.Import,
                ast.ImportFrom,
                ast.Delete,
                ast.Assert,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
            ),
        ):
            self._emit(node)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            self.global_names.update(node.names)
            self._emit(node)
        elif isinstance(node, ast.Return):
            self._emit(node)
            self._abrupt_return()
        elif isinstance(node, ast.Raise):
            self._emit(node)
            self._abrupt_raise()
        elif isinstance(node, ast.Break):
            self._emit(node)
            self._abrupt_break()
        elif isinstance(node, ast.Continue):
            self._emit(node)
            self._abrupt_continue()
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Try):
            self._try(node)
        elif node.__class__.__name__ == "TryStar":
            # 3.11+ except* groups share Try's field layout; approximate
            # them as plain except for flow purposes.
            self._try(cast(ast.Try, node))
        elif isinstance(node, ast.Match):
            self._match(node)
        else:  # pragma: no cover - tripped only by future grammar
            self.unsupported.append(node)
            self._emit(node)

    # ------------------------------------------------------------ control flow
    def _if(self, node: ast.If) -> None:
        self._emit(node.test)
        origin = self.cur
        truth = _const_truth(node.test)
        after = self._new("if.after")

        then_block = self._new("if.then")
        if truth is not False:
            self._edge(origin, then_block)
        self.cur = then_block
        self._stmts(node.body)
        self._edge(self.cur, after)

        if node.orelse:
            else_block = self._new("if.else")
            if truth is not True:
                self._edge(origin, else_block)
            self.cur = else_block
            self._stmts(node.orelse)
            self._edge(self.cur, after)
        elif truth is not True:
            self._edge(origin, after)
        self.cur = after

    def _while(self, node: ast.While) -> None:
        head = self._new("while.head")
        self._edge(self.cur, head)
        self.cur = head
        self._emit(node.test)
        truth = _const_truth(node.test)
        after = self._new("while.after")

        body = self._new("while.body")
        if truth is not False:
            self._edge(head, body)
        self.stack.append(_LoopCtx(break_to=after, continue_to=head))
        self.cur = body
        self._stmts(node.body)
        self._edge(self.cur, head)
        self.stack.pop()

        if truth is not True:
            if node.orelse:
                else_block = self._new("while.else")
                self._edge(head, else_block)
                self.cur = else_block
                self._stmts(node.orelse)
                self._edge(self.cur, after)
            else:
                self._edge(head, after)
        self.cur = after

    def _for(self, node: ast.For | ast.AsyncFor) -> None:
        self._emit(node.iter)
        head = self._new("for.head")
        self._edge(self.cur, head)
        after = self._new("for.after")

        body = self._new("for.body")
        self._edge(head, body)
        self.stack.append(_LoopCtx(break_to=after, continue_to=head))
        self.cur = body
        self._emit(LoopTargetBind(node))
        self._stmts(node.body)
        self._edge(self.cur, head)
        self.stack.pop()

        if node.orelse:
            else_block = self._new("for.else")
            self._edge(head, else_block)
            self.cur = else_block
            self._stmts(node.orelse)
            self._edge(self.cur, after)
        else:
            self._edge(head, after)
        self.cur = after

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            self._emit(item.context_expr)
            self._emit(WithBind(item, node))
        self._stmts(node.body)

    def _match(self, node: ast.Match) -> None:
        self._emit(node.subject)
        origin = self.cur
        after = self._new("match.after")
        exhaustive = False
        for case in node.cases:
            case_block = self._new("match.case")
            self._edge(origin, case_block)
            self.cur = case_block
            self._emit(MatchBind(case, node.subject))
            if case.guard is not None:
                self._emit(case.guard)
            self._stmts(case.body)
            self._edge(self.cur, after)
            if case.guard is None and _irrefutable(case.pattern):
                exhaustive = True
        if not exhaustive:
            self._edge(origin, after)
        self.cur = after

    def _try(self, node: ast.Try) -> None:
        after = self._new("try.after")

        # The finally subgraph is built first, under the *outer* context:
        # a break/return inside a finally binds to constructs outside the
        # try. It is shared by every path (no statement duplication); the
        # continuations collected in ``pending`` are wired at the end.
        finally_entry: int | None = None
        finally_exit: int | None = None
        if node.finalbody:
            finally_entry = self._new("finally")
            saved = self.cur
            self.cur = finally_entry
            self._stmts(node.finalbody)
            finally_exit = self.cur
            self.cur = saved

        handler_entries = [self._new("except") for _ in node.handlers]
        ctx = _TryCtx(
            handler_entries=list(handler_entries),
            finally_entry=finally_entry,
            finally_exit=finally_exit,
        )

        pre = self.cur  # an exception may occur before any body statement ran
        self.stack.append(ctx)
        first_new = len(self.blocks)
        body_entry = self._new("try.body")
        self._edge(pre, body_entry)
        self.cur = body_entry
        self._stmts(node.body)
        body_end = self.cur
        body_blocks = [pre, *range(first_new, len(self.blocks))]

        # Any statement in the body may raise: except edges to every
        # handler, or straight into the finally for a handler-less try.
        if handler_entries:
            for src in body_blocks:
                for dst in handler_entries:
                    self._edge(src, dst, kind="except")
        elif finally_entry is not None:
            for src in body_blocks:
                self._edge(src, finally_entry, kind="except")
            ctx.pending.add(self.exit)  # unhandled: finally, then propagate

        # Handlers stop applying: exceptions raised in the else clause or
        # inside a handler body are not caught by this try (the finally
        # still runs — ctx stays on the stack for that routing).
        ctx.handler_entries.clear()

        self.cur = body_end
        if node.orelse:
            self._stmts(node.orelse)
        normal_ends = [self.cur]

        for handler, entry in zip(node.handlers, handler_entries):
            self.cur = entry
            self._emit(ExceptBind(handler))
            self._stmts(handler.body)
            normal_ends.append(self.cur)
        self.stack.pop()

        if finally_entry is not None and finally_exit is not None:
            for end in normal_ends:
                self._edge(end, finally_entry)
            ctx.pending.add(after)
            for continuation in sorted(ctx.pending):
                self._edge(finally_exit, continuation)
        else:
            for end in normal_ends:
                self._edge(end, after)
        self.cur = after

    # ------------------------------------------------------------ abrupt exits
    def _abrupt_return(self) -> None:
        finallys = [
            item
            for item in reversed(self.stack)
            if isinstance(item, _TryCtx) and item.finally_entry is not None
        ]
        self._chain(finallys, [self.exit], kind="flow")

    def _abrupt_raise(self) -> None:
        finallys: list[_TryCtx] = []
        targets = [self.exit]
        kind = "except"
        for item in reversed(self.stack):
            if isinstance(item, _TryCtx):
                if item.handler_entries:
                    targets = list(item.handler_entries)
                    break
                if item.finally_entry is not None:
                    finallys.append(item)
        self._chain(finallys, targets, kind=kind)

    def _abrupt_break(self) -> None:
        self._abrupt_loop(lambda loop: loop.break_to)

    def _abrupt_continue(self) -> None:
        self._abrupt_loop(lambda loop: loop.continue_to)

    def _abrupt_loop(self, target_of: Callable[[_LoopCtx], int]) -> None:
        finallys: list[_TryCtx] = []
        targets = [self.exit]  # malformed break outside a loop: treat as exit
        for item in reversed(self.stack):
            if isinstance(item, _LoopCtx):
                targets = [target_of(item)]
                break
            if item.finally_entry is not None:
                finallys.append(item)
        self._chain(finallys, targets, kind="flow")

    def _chain(self, finallys: list[_TryCtx], targets: list[int], kind: str) -> None:
        """Route control from ``cur`` through ``finallys`` to ``targets``."""
        if not finallys:
            for target in targets:
                self._edge(self.cur, target, kind)
        else:
            first = finallys[0].finally_entry
            if first is not None:
                self._edge(self.cur, first, kind)
            for inner, outer in zip(finallys, finallys[1:]):
                if outer.finally_entry is not None:
                    inner.pending.add(outer.finally_entry)
            finallys[-1].pending.update(targets)
        self.cur = self._new("dead")


def _scan_scopes(fn: FunctionLike) -> tuple[frozenset[str], bool]:
    """(names referenced in nested scopes, uses-dynamic-locals flag)."""
    closure: set[str] = set()
    dynamic = False
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for inner in ast.walk(node):
                if isinstance(inner, ast.Name):
                    closure.add(inner.id)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _DYNAMIC_LOCALS
        ):
            dynamic = True
    return frozenset(closure), dynamic


def build_cfg(fn: FunctionLike, qualname: str | None = None) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(fn, qualname if qualname is not None else fn.name).build()


def iter_functions(tree: ast.AST) -> Iterator[tuple[str, FunctionLike]]:
    """Yield ``(qualname, node)`` for every function in ``tree``, nested too."""
    stack: list[tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                stack.append((f"{qualname}.<locals>.", child))
            elif isinstance(child, ast.ClassDef):
                stack.append((f"{prefix}{child.name}.", child))
            else:
                stack.append((prefix, child))

"""Symbolic shape/dtype abstract domain for the array-contract rules.

The batched kernels (PR 6) live and die by implicit array contracts —
``(S, T, R)`` block geometry, complex128-in/float64-out dtype
discipline, ``out=`` buffer reuse — that ``np.ndarray`` annotations
cannot express. This module gives the linter a small abstract domain to
reason about them:

- An **array type** is ``(dims, dtype)`` where ``dims`` is a tuple of
  symbolic dimensions (``"N"``, ``"n_bins"``, a literal ``"4"``, or
  ``"?"`` for unknown) or ``None`` when even the rank is unknown, and
  ``dtype`` is a normalised spelling (``"complex128"``) or ``""``.
- **Contracts** are declared per parameter (or ``return``) with the
  ``# reprolint: shape(name=(N,R),dtype=complex128)`` pragma or a
  docstring ``Shape:`` block::

      Shape:
          rows: (N, R) complex128
          out: (N, R) float64
          return: (N, R) float64

- :class:`ShapeEnv` infers array types for the locals of one function
  body — seeded from the declared contracts, then propagated through
  constructor calls (``np.zeros((n, r))``), dtype flows (``astype``,
  ``asarray``), view transforms (slices, ``.T``, ``reshape``) and
  arithmetic — so rules can judge a call-site argument without running
  any code.

Everything here is deliberately conservative: a spelling the domain
does not model maps to "unknown", and rules only fire on definite
information (two known ranks that differ, two literal dims that
conflict). Silence, not speculation, on anything polymorphic.
"""

from __future__ import annotations

import ast
import re
from typing import Callable

from repro.lint.suppress import ShapeContract

__all__ = [
    "ArrayType",
    "ShapeEnv",
    "bind_dims",
    "dims_conflict",
    "dtype_of_expr",
    "is_complex",
    "is_float",
    "normalize_dtype",
    "parse_docstring_contracts",
    "shape_of_expr",
]

#: ``(dims, dtype)`` — dims None = unknown rank; dtype "" = unknown.
ArrayType = tuple["tuple[str, ...] | None", str]

#: Canonical dtype spellings the domain distinguishes.
_DTYPE_ALIASES = {
    "complex": "complex128",
    "complex128": "complex128",
    "complex64": "complex64",
    "cdouble": "complex128",
    "csingle": "complex64",
    "float": "float64",
    "float64": "float64",
    "double": "float64",
    "float32": "float32",
    "single": "float32",
    "float16": "float16",
    "int": "int64",
    "int64": "int64",
    "int32": "int32",
    "int16": "int16",
    "int8": "int8",
    "intp": "int64",
    "uint8": "uint8",
    "uint16": "uint16",
    "uint32": "uint32",
    "uint64": "uint64",
    "bool": "bool",
    "bool_": "bool",
}

#: ``np.X((shape), dtype=...)`` constructors; default dtype float64.
_SHAPE_CTORS = frozenset({"zeros", "ones", "empty", "full"})
#: ``np.X_like(y, dtype=...)`` constructors; inherit ``y``'s type.
_LIKE_CTORS = frozenset({"zeros_like", "ones_like", "empty_like", "full_like"})
#: ``np.X(y, dtype=...)`` pass-throughs; same shape, optional re-dtype.
_PASSTHROUGH = frozenset({"asarray", "ascontiguousarray", "array", "copy"})
#: Receiver methods that preserve shape and dtype.
_SAME_METHODS = frozenset({"copy", "conj", "conjugate"})
#: ``np.X(y)`` functions returning a float array of ``y``'s shape.
_FLOAT_FUNCS = frozenset({"abs", "absolute", "angle", "real", "imag"})


def normalize_dtype(spelling: str) -> str:
    """Canonical dtype name for a spelling, or "" when unmodelled.

    ``np.complex128`` / ``"complex128"`` / ``complex`` all map to
    ``"complex128"``; ``np.result_type(...)`` and friends map to "".
    """
    leaf = spelling.split(".")[-1].strip("'\"")
    return _DTYPE_ALIASES.get(leaf, "")


def is_complex(dtype: str) -> bool:
    return dtype.startswith("complex")


def is_float(dtype: str) -> bool:
    return dtype.startswith("float")


def dtype_of_expr(node: ast.expr | None) -> str:
    """Normalised dtype named by a ``dtype=`` argument expression."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return normalize_dtype(node.value)
    if isinstance(node, ast.Name):
        return normalize_dtype(node.id)
    if isinstance(node, ast.Attribute):
        parts: list[str] = []
        value: ast.expr = node
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            return normalize_dtype(parts[0])
    return ""


def _dim_of_expr(node: ast.expr) -> str:
    """Symbolic spelling of one dimension expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return str(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _dim_of_expr(node.operand)
        return f"-{inner}" if inner != "?" else "?"
    return "?"


def shape_of_expr(node: ast.expr) -> tuple[str, ...] | None:
    """Dims tuple for a shape argument (``(n, r)``, ``n``), or None."""
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_dim_of_expr(el) for el in node.elts)
    dim = _dim_of_expr(node)
    return (dim,) if dim != "?" else None


def dims_conflict(declared: str, actual: str) -> str:
    """Verdict for one dim pair: "ok" | "mismatch" | "broadcast" | "unknown".

    Two literal ints that differ are a mismatch — unless one of them is
    1, which numpy would silently broadcast instead of rejecting (the
    nastier failure, reported separately). A symbolic name only proves
    equality with itself; anything else is unknown and stays silent.
    """
    if declared == "?" or actual == "?":
        return "unknown"
    if declared == actual:
        return "ok"
    d_lit, a_lit = declared.isdigit(), actual.isdigit()
    if d_lit and a_lit:
        return "broadcast" if declared == "1" or actual == "1" else "mismatch"
    return "unknown"


def bind_dims(
    binding: dict[str, str], declared: tuple[str, ...], actual: tuple[str, ...]
) -> str | None:
    """Fold one arg's dims into a per-call symbol binding.

    The same callee symbol (``N`` in ``rows=(N,R), out=(N,R)``) must
    bind consistently across every argument of one call: two different
    *literal* caller dims for one symbol prove the call wrong even when
    neither dim conflicts with the contract alone. Returns the callee
    symbol that conflicted, or None.
    """
    for declared_dim, actual_dim in zip(declared, actual):
        if declared_dim == "?" or actual_dim == "?" or declared_dim.isdigit():
            continue
        bound = binding.get(declared_dim)
        if bound is None:
            binding[declared_dim] = actual_dim
        elif (
            bound != actual_dim and bound.isdigit() and actual_dim.isdigit()
        ):
            return declared_dim
    return None


# --------------------------------------------------------------- docstrings
_SHAPE_HEADER_RE = re.compile(r"^\s*Shape:\s*$")
_SHAPE_ENTRY_RE = re.compile(
    r"^\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*):\s*"
    r"\((?P<dims>[^)]*)\)"
    r"(?:\s+(?P<dtype>[A-Za-z0-9_.]+))?\s*$"
)
_DIM_TOKEN_RE = re.compile(r"(?:[A-Za-z_][A-Za-z0-9_]*|[0-9]+|\?)$")


def parse_docstring_contracts(
    doc: str | None,
) -> tuple[dict[str, ShapeContract], list[str]]:
    """Contracts declared in a docstring ``Shape:`` block, plus errors.

    The block is the line ``Shape:`` followed by indented
    ``name: (dims) [dtype]`` entries; the first non-matching non-blank
    line ends it. A malformed entry inside the block is an error — a
    typo must not silently drop a contract.
    """
    contracts: dict[str, ShapeContract] = {}
    errors: list[str] = []
    if not doc:
        return contracts, errors
    lines = doc.splitlines()
    in_block = False
    for line in lines:
        if not in_block:
            if _SHAPE_HEADER_RE.match(line):
                in_block = True
            continue
        if not line.strip():
            break
        entry = _SHAPE_ENTRY_RE.match(line)
        if entry is None:
            errors.append(f"malformed Shape: entry {line.strip()!r}")
            break
        dims = tuple(
            token.strip() for token in entry.group("dims").split(",") if token.strip()
        )
        bad = [d for d in dims if not _DIM_TOKEN_RE.fullmatch(d)]
        if bad:
            errors.append(f"malformed Shape: dims {bad} in {line.strip()!r}")
            continue
        dtype = normalize_dtype(entry.group("dtype") or "")
        if entry.group("dtype") and not dtype:
            errors.append(
                f"unknown Shape: dtype {entry.group('dtype')!r} in {line.strip()!r}"
            )
        name = entry.group("name")
        if name in contracts:
            errors.append(f"duplicate Shape: entry for {name!r}")
            continue
        contracts[name] = ShapeContract(name=name, dims=dims, dtype=dtype)
    return contracts, errors


# ---------------------------------------------------------------- inference
def _np_call(node: ast.Call) -> str | None:
    """``"zeros"`` for ``np.zeros(...)``/``numpy.zeros(...)``, else None."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _kwarg(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


_PROMOTE_ORDER = ("bool", "int", "float", "complex")


def _promote(a: str, b: str) -> str:
    """Binary-op result dtype, numpy promotion collapsed to families."""
    if not a or not b:
        return ""
    if is_complex(a) or is_complex(b):
        return "complex128" if "128" in a + b or "float64" in (a, b) else "complex64"
    if is_float(a) or is_float(b):
        return a if is_float(a) and (not is_float(b) or a >= b) else b
    return a if a == b else ""


class ShapeEnv:
    """Flow-insensitive array-type environment for one function body.

    Built by walking the body's statements in source order (nested
    ``def``/``class``/``lambda`` scopes excluded); each assignment whose
    right-hand side the domain models binds its target. Rules query
    :meth:`type_of` on argument expressions at call sites.

    ``resolve_call`` optionally maps an internal call node to the
    callee's return array type, letting the interprocedural rules see
    through ``y = helper(x)``.
    """

    def __init__(
        self,
        contracts: dict[str, ShapeContract] | None = None,
        resolve_call: "Callable[[ast.Call], ArrayType | None] | None" = None,
    ) -> None:
        self.types: dict[str, ArrayType] = {}
        self._resolve_call = resolve_call
        if contracts:
            for name, contract in contracts.items():
                if name != "return":
                    self.types[name] = (contract.dims, contract.dtype)

    # ------------------------------------------------------------ building
    def bind_body(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Bind every modelled assignment in ``fn``'s own scope."""
        stack: list[ast.AST] = list(fn.body)
        nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        while stack:
            node = stack.pop(0)
            if isinstance(node, nested):
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self.type_of(node.value)
                    if inferred is not None:
                        self.types[target.id] = inferred
                    else:
                        self.types.pop(target.id, None)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.value is not None:
                    inferred = self.type_of(node.value)
                    if inferred is not None:
                        self.types[node.target.id] = inferred
            stack.extend(
                child
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.stmt)
            )

    # ------------------------------------------------------------- queries
    def type_of(self, node: ast.expr) -> ArrayType | None:
        """Array type of an expression, or None when not modelled."""
        if isinstance(node, ast.Name):
            return self.types.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_type(node)
        if isinstance(node, ast.Subscript):
            return self._subscript_type(node)
        if isinstance(node, ast.Attribute):
            return self._attribute_type(node)
        if isinstance(node, ast.BinOp):
            return self._binop_type(node)
        if isinstance(node, ast.UnaryOp):
            return self.type_of(node.operand)
        return None

    def dtype_of(self, node: ast.expr) -> str:
        inferred = self.type_of(node)
        return inferred[1] if inferred is not None else ""

    # ------------------------------------------------------------ internals
    def _call_type(self, node: ast.Call) -> ArrayType | None:
        np_name = _np_call(node)
        if np_name is not None:
            return self._np_call_type(node, np_name)
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = self.type_of(func.value)
            if func.attr == "astype" and receiver is not None:
                dtype = (
                    dtype_of_expr(node.args[0]) if node.args
                    else dtype_of_expr(_kwarg(node, "dtype"))
                )
                return (receiver[0], dtype)
            if func.attr == "reshape":
                dtype = receiver[1] if receiver is not None else ""
                if len(node.args) == 1:
                    dims = shape_of_expr(node.args[0])
                elif node.args:
                    dims = tuple(_dim_of_expr(a) for a in node.args)
                else:
                    dims = None
                if dims is not None or dtype:
                    return (dims, dtype)
                return None
            if func.attr in _SAME_METHODS and receiver is not None:
                return receiver
        if self._resolve_call is not None:
            resolved = self._resolve_call(node)
            if resolved is not None:
                return resolved
        return None

    def _np_call_type(self, node: ast.Call, name: str) -> ArrayType | None:
        if name in _SHAPE_CTORS:
            dims = shape_of_expr(node.args[0]) if node.args else None
            dtype = dtype_of_expr(_kwarg(node, "dtype"))
            if not dtype and name != "full":
                dtype = "float64"
            return (dims, dtype)
        if name in _LIKE_CTORS:
            base = self.type_of(node.args[0]) if node.args else None
            dtype = dtype_of_expr(_kwarg(node, "dtype"))
            if base is None:
                return (None, dtype) if dtype else None
            return (base[0], dtype or base[1])
        if name in _PASSTHROUGH:
            base = self.type_of(node.args[0]) if node.args else None
            dtype = dtype_of_expr(_kwarg(node, "dtype"))
            if base is None:
                return None
            return (base[0], dtype or base[1])
        if name in _FLOAT_FUNCS:
            base = self.type_of(node.args[0]) if node.args else None
            if base is None:
                return None
            dtype = base[1]
            if is_complex(dtype):
                dtype = "float64" if dtype == "complex128" else "float32"
            return (base[0], dtype)
        return None

    def _subscript_type(self, node: ast.Subscript) -> ArrayType | None:
        base = self.type_of(node.value)
        if base is None or base[0] is None:
            return None
        dims, dtype = base
        index = node.slice
        if isinstance(index, ast.Slice):
            return (("?",) + dims[1:], dtype) if dims else (dims, dtype)
        if isinstance(index, (ast.Constant, ast.Name)) and not isinstance(
            index, ast.Tuple
        ):
            if isinstance(index, ast.Constant) and not isinstance(index.value, int):
                return None
            if isinstance(index, ast.Name):
                indexed = self.types.get(index.id)
                if indexed is not None:
                    return None  # fancy indexing with an array: unmodelled
            return (dims[1:], dtype) if dims else None
        if isinstance(index, ast.Tuple):
            out: list[str] = []
            cursor = 0
            for element in index.elts:
                if cursor >= len(dims):
                    return None
                if isinstance(element, ast.Slice):
                    out.append("?")
                    cursor += 1
                elif isinstance(element, ast.Constant) and isinstance(
                    element.value, int
                ):
                    cursor += 1  # integer index drops the dim
                elif isinstance(element, ast.Name) and element.id not in self.types:
                    cursor += 1
                else:
                    return None
            out.extend(dims[cursor:])
            return (tuple(out), dtype)
        return None

    def _attribute_type(self, node: ast.Attribute) -> ArrayType | None:
        base = self.type_of(node.value)
        if base is None:
            return None
        dims, dtype = base
        if node.attr == "T":
            return (tuple(reversed(dims)) if dims is not None else None, dtype)
        if node.attr in ("real", "imag"):
            if is_complex(dtype):
                narrowed = "float64" if dtype == "complex128" else "float32"
                return (dims, narrowed)
            return (dims, dtype)
        return None

    def _binop_type(self, node: ast.BinOp) -> ArrayType | None:
        left = self.type_of(node.left)
        right = self.type_of(node.right)
        scalar_left = isinstance(node.left, ast.Constant)
        scalar_right = isinstance(node.right, ast.Constant)
        if left is not None and (right is None and scalar_right):
            return left
        if right is not None and (left is None and scalar_left):
            return right
        if left is not None and right is not None:
            dims = left[0] if left[0] == right[0] else None
            return (dims, _promote(left[1], right[1]))
        return None

"""Units-discipline rules: physical quantities carry their unit in the name.

The reproduction keeps Eq. (1)-(9) dimensionally honest by convention:
a float that means seconds is called ``*_s``, a frequency ``*_hz``, a
distance ``*_m``. Two rules machine-check the convention:

- ``unit-suffix`` — a float parameter or annotated class field whose
  name contains a physical-quantity stem (``duration``, ``rate``,
  ``distance``, ...) must end in a recognised unit suffix.
- ``unit-mismatch`` — a value spelled with one unit family must not be
  passed/assigned to a slot named in another family
  (``window_s=frame_rate_hz`` is a dimensional error the type system
  cannot see).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule

__all__ = ["UnitSuffixRule", "UnitMismatchRule", "RULES", "suffix_family"]

#: Recognised unit suffixes, grouped by dimension family.
FAMILIES: dict[str, frozenset[str]] = {
    "time": frozenset({"s", "ms", "us", "ns", "min", "h"}),
    "frequency": frozenset({"hz", "khz", "mhz", "ghz", "bpm", "fps"}),
    "length": frozenset({"m", "mm", "cm", "um", "nm", "km"}),
    "angle": frozenset({"deg", "rad"}),
    "level": frozenset({"db", "dbm", "lux"}),
}

#: Dimensionless suffixes that satisfy the naming rule without belonging
#: to a unit family: counts (``backoff_frames``, ``depth_bins``) and
#: self-describing ratios (``duration_sigmas``, ``interval_cv``,
#: ``rate_jitter_frac``).
COUNT_SUFFIXES = frozenset(
    {"frames", "bins", "samples", "bytes", "taps", "pct", "sigmas", "cv", "frac", "ratio"}
)

#: Name stems that mark a float as a physical quantity, and the family
#: its suffix is expected to come from.
STEMS: dict[str, str] = {
    "duration": "time",
    "timeout": "time",
    "delay": "time",
    "latency": "time",
    "period": "time",
    "interval": "time",
    "refractory": "time",
    "elapsed": "time",
    "freq": "frequency",
    "frequency": "frequency",
    "rate": "frequency",
    "bandwidth": "frequency",
    "prf": "frequency",
    "distance": "length",
    "wavelength": "length",
    "displacement": "length",
    "azimuth": "angle",
    "elevation": "angle",
    "tilt": "angle",
}

_ALL_UNITS = frozenset().union(*FAMILIES.values())


def suffix_family(name: str) -> str | None:
    """The unit family a name's suffix claims, or None.

    ``*_per_min`` / ``*_per_s`` style rate spellings map to
    ``frequency`` regardless of the terminal token.
    """
    tokens = name.lower().split("_")
    if len(tokens) >= 2 and tokens[-2] == "per":
        return "frequency"
    last = tokens[-1]
    for family, suffixes in FAMILIES.items():
        if last in suffixes:
            return family
    return None


def _has_unit_or_count_suffix(name: str) -> bool:
    tokens = name.lower().split("_")
    if suffix_family(name) is not None:
        return True
    return tokens[-1] in COUNT_SUFFIXES


def _expected_family(name: str) -> str | None:
    """The family a quantity-stemmed name should be suffixed from."""
    for token in name.lower().split("_"):
        if token in STEMS:
            return STEMS[token]
    return None


def _is_float_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == "float"
        for node in ast.walk(annotation)
    )


def _is_float_default(default: ast.expr | None) -> bool:
    if isinstance(default, ast.Constant):
        return isinstance(default.value, float)
    if isinstance(default, ast.UnaryOp) and isinstance(default.op, (ast.USub, ast.UAdd)):
        return _is_float_default(default.operand)
    return False


def _terminal_identifier(node: ast.expr) -> str | None:
    """The last identifier of a Name/Attribute chain (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class UnitSuffixRule(LintRule):
    """Quantity-stemmed float parameters/fields need a unit suffix."""

    name = "unit-suffix"
    summary = (
        "float parameters/fields named like physical quantities must carry "
        "a unit suffix (_s, _hz, _m, ...)"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module_parts is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_fields(ctx, node)

    def _check_signature(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[Diagnostic]:
        args = node.args
        positional = args.posonlyargs + args.args
        defaults: list[ast.expr | None] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        kw_defaults = list(args.kw_defaults)
        for arg, default in list(zip(positional, defaults)) + list(
            zip(args.kwonlyargs, kw_defaults)
        ):
            yield from self._check_named_float(ctx, arg, arg.arg, arg.annotation, default)

    def _check_class_fields(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterable[Diagnostic]:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                yield from self._check_named_float(
                    ctx, stmt, stmt.target.id, stmt.annotation, stmt.value
                )

    def _check_named_float(
        self,
        ctx: FileContext,
        node: ast.AST,
        name: str,
        annotation: ast.expr | None,
        default: ast.expr | None,
    ) -> Iterable[Diagnostic]:
        if not (_is_float_annotation(annotation) or _is_float_default(default)):
            return
        family = _expected_family(name)
        if family is None or _has_unit_or_count_suffix(name):
            return
        units = "/".join(sorted(FAMILIES[family]))
        yield self.diagnostic(
            ctx,
            node,
            f"float {name!r} looks like a {family} quantity but has no unit "
            f"suffix (expected one of: {units}, or a count suffix)",
        )


class UnitMismatchRule(LintRule):
    """A ``*_hz`` value must not flow into a ``*_s`` slot (and so on)."""

    name = "unit-mismatch"
    summary = "values with one unit suffix must not be bound to names of another family"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module_parts is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    yield from self._check_binding(
                        ctx, keyword.value, keyword.arg, keyword.value, "keyword"
                    )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = _terminal_identifier(node.targets[0])
                if target is not None:
                    yield from self._check_binding(
                        ctx, node, target, node.value, "assignment"
                    )

    @staticmethod
    def _bindable_family(name: str) -> str | None:
        # A bare `m` or `s` is an ordinary variable, not a unit claim;
        # only suffixed multi-token names (`time_s`, `rate_hz`) bind.
        if "_" not in name.strip("_"):
            return None
        return suffix_family(name)

    def _check_binding(
        self,
        ctx: FileContext,
        node: ast.AST,
        slot_name: str,
        value: ast.expr,
        kind: str,
    ) -> Iterable[Diagnostic]:
        slot_family = self._bindable_family(slot_name)
        if slot_family is None:
            return
        value_name = _terminal_identifier(value)
        if value_name is None:
            return
        value_family = self._bindable_family(value_name)
        if value_family is None or value_family == slot_family:
            return
        yield self.diagnostic(
            ctx,
            node,
            f"{kind} binds {value_name!r} ({value_family}) to "
            f"{slot_name!r} ({slot_family}); convert units explicitly",
        )


RULES: tuple[LintRule, ...] = (UnitSuffixRule(), UnitMismatchRule())

"""Determinism rules: the pure packages must be replayable from a seed.

Everything under ``repro.core`` / ``dsp`` / ``sim`` / ``rf`` / ``physio``
/ ``vehicle`` / ``datasets`` / ``baselines`` implements the paper's
maths (Eq. (1)-(9) and the simulation substrate behind them); a result
there must be a pure function of its inputs and an explicit
``np.random.Generator``. Wall-clock reads, sleeps, and the global numpy
or stdlib RNG state all break bit-reproducibility — and with it every
regression test that pins a seeded output.

``repro.fleet`` and ``repro.core.realtime`` are service code, where
wall-clock latency measurement and pacing sleeps are the point; they
are allowlisted wholesale.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule, dotted_name

__all__ = [
    "ALLOWLISTED_MODULES",
    "PURE_PACKAGES",
    "WallClockRule",
    "GlobalRngRule",
    "RULES",
]

#: Packages whose output must be a pure function of (inputs, seed).
PURE_PACKAGES = frozenset(
    {"core", "dsp", "sim", "rf", "physio", "vehicle", "datasets", "baselines"}
)

#: Modules inside a pure package that are explicitly service-side.
ALLOWLISTED_MODULES = frozenset({("core", "realtime")})

#: Dotted-call suffixes that read the wall clock or stall the thread.
_BANNED_CALL_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: ``from time import <name>`` imports that smuggle the clock in unqualified.
_BANNED_TIME_IMPORTS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: ``np.random.<attr>`` spellings that do NOT touch the global RNG state.
_SAFE_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",  # seedable instance state, not the module-global stream
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` names that are fine (seedable instances / types).
_SAFE_STDLIB_RANDOM = frozenset({"Random"})


def _in_scope(ctx: FileContext) -> bool:
    parts = ctx.module_parts
    if parts is None or parts[0] not in PURE_PACKAGES:
        return False
    return parts[: len(next(iter(ALLOWLISTED_MODULES)))] not in ALLOWLISTED_MODULES


class WallClockRule(LintRule):
    """No wall-clock reads or sleeps in the pure packages."""

    name = "wall-clock"
    summary = (
        "pure packages (core/dsp/sim/rf/physio/vehicle/datasets/baselines) "
        "must not read the wall clock or sleep"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                for suffix in _BANNED_CALL_SUFFIXES:
                    if dotted == suffix or dotted.endswith("." + suffix):
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"{dotted}() is nondeterministic here; pure packages "
                            "must derive time from frame indices and the frame rate",
                        )
                        break
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _BANNED_TIME_IMPORTS:
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"'from time import {alias.name}' brings the wall clock "
                            "into a pure package",
                        )


class GlobalRngRule(LintRule):
    """Randomness must flow through an explicitly seeded Generator."""

    name = "global-rng"
    summary = (
        "pure packages must thread an explicit np.random.Generator; "
        "global RNG state and unseeded default_rng() are banned"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _SAFE_STDLIB_RANDOM:
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"'from random import {alias.name}' uses the global "
                            "stdlib RNG; thread a seeded np.random.Generator instead",
                        )

    def _check_attribute(
        self, ctx: FileContext, node: ast.Attribute
    ) -> Iterable[Diagnostic]:
        dotted = dotted_name(node)
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] not in _SAFE_NP_RANDOM:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{dotted} mutates/reads numpy's global RNG state; "
                    "thread a seeded np.random.Generator instead",
                )
        elif len(parts) == 2 and parts[0] == "random" and parts[1] not in _SAFE_STDLIB_RANDOM:
            # stdlib module-level functions (random.random, random.seed, ...)
            # share one hidden global stream.
            if parts[1][:1].islower():
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{dotted} uses the global stdlib RNG; "
                    "thread a seeded np.random.Generator instead",
                )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterable[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield self.diagnostic(
                ctx,
                node,
                "default_rng() without a seed draws OS entropy; "
                "pass an explicit seed or accept a Generator parameter",
            )


RULES: tuple[LintRule, ...] = (WallClockRule(), GlobalRngRule())

"""RNG-provenance dataflow rules.

The determinism contract (see :mod:`repro.lint.rules.determinism`) says
every random draw in the pure packages flows through an explicitly
seeded ``np.random.Generator``. The lexical ``global-rng`` rule bans the
global stream by spelling; these rules use the CFG and liveness to catch
the ways a *correctly constructed* generator still breaks provenance:

- ``rng-reseed`` — a function that already receives a generator mints a
  fresh one from a constant seed, silently decoupling its draws from the
  caller's stream (every call site now shares one hard-coded stream).
- ``rng-shadow`` — a generator parameter is rebound before it is ever
  consulted, so the caller's seed never influences anything.
- ``rng-dead`` — a generator is constructed and never used; either the
  draw it was meant to feed is missing or the construction is noise.
- ``use-after-move`` — a name handed off with ``# reprolint:
  moves(name)`` is used after the ownership transfer.

The None-default idiom ``rng = rng if rng is not None else
default_rng(0)`` stays legal: the rebinding element *uses* the
parameter, which is exactly the provenance link these rules require.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.cfg import CFG, ArgsBind, Element
from repro.lint.context import FileContext
from repro.lint.dataflow import (
    MovedNames,
    element_defs_uses,
    file_cfgs,
    liveness_of,
    solve,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.provenance import binding_of, constructor_kind, rng_param_names
from repro.lint.rules import LintRule
from repro.lint.rules.determinism import ALLOWLISTED_MODULES, PURE_PACKAGES

__all__ = [
    "RngReseedRule",
    "RngShadowRule",
    "RngDeadRule",
    "UseAfterMoveRule",
    "RULES",
]


def _in_pure_scope(ctx: FileContext) -> bool:
    parts = ctx.module_parts
    if parts is None or parts[0] not in PURE_PACKAGES:
        return False
    return parts[: len(next(iter(ALLOWLISTED_MODULES)))] not in ALLOWLISTED_MODULES


def _reachable_elements(cfg: CFG) -> Iterable[Element]:
    reachable = cfg.reachable()
    for block in cfg.blocks:
        if block.index in reachable:
            yield from block.elements


def _rng_constructor_calls(element: Element) -> Iterable[ast.Call]:
    if not isinstance(element, ast.AST):
        return  # synthetic Bind wrappers contain no calls
    for node in ast.walk(element):
        if isinstance(node, ast.Call) and constructor_kind(node) == "rng":
            yield node


def _is_constant_seeded(call: ast.Call) -> bool:
    """True for ``default_rng(0)``-style calls: args present, all literal."""
    if not call.args and not call.keywords:
        return False  # unseeded: global-rng's territory
    every = list(call.args) + [kw.value for kw in call.keywords]
    return all(isinstance(arg, ast.Constant) for arg in every)


class RngReseedRule(LintRule):
    """A generator-taking function must not re-seed from a constant."""

    name = "rng-reseed"
    summary = (
        "functions receiving a Generator must not mint a fresh one from "
        "a constant seed; derive substreams from the parameter instead"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not _in_pure_scope(ctx):
            return
        for cfg in file_cfgs(ctx):
            params = rng_param_names(cfg.fn)
            if not params:
                continue
            for element in _reachable_elements(cfg):
                _, uses = element_defs_uses(element)
                if uses & params:
                    continue  # the element consults the caller's stream
                for call in _rng_constructor_calls(element):
                    if _is_constant_seeded(call):
                        yield self.diagnostic(
                            ctx,
                            call,
                            f"{cfg.qualname} receives a seeded generator "
                            f"({', '.join(sorted(params))}) but re-seeds from a "
                            "constant here; every caller now shares one stream — "
                            "derive substreams from the parameter "
                            "(e.g. rng.spawn()) instead",
                        )


class RngShadowRule(LintRule):
    """A generator parameter must be consulted before it is rebound."""

    name = "rng-shadow"
    summary = (
        "a Generator parameter rebound before any use shadows the "
        "caller's seed entirely"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not _in_pure_scope(ctx):
            return
        for cfg in file_cfgs(ctx):
            params = rng_param_names(cfg.fn)
            if not params or cfg.uses_dynamic_locals:
                continue
            first_use: dict[str, int] = {}
            rebinds: list[tuple[str, Element, int]] = []
            for element in _reachable_elements(cfg):
                defs, uses = element_defs_uses(element)
                line = int(getattr(element, "lineno", 0))
                for name in uses & params:
                    if name not in first_use or line < first_use[name]:
                        first_use[name] = line
                for name in defs & params:
                    if not isinstance(element, ArgsBind) and name not in uses:
                        rebinds.append((name, element, line))
            for name, element, line in rebinds:
                used_at = first_use.get(name)
                if used_at is None or line <= used_at:
                    yield self.diagnostic(
                        ctx,
                        element,
                        f"generator parameter {name!r} is rebound before any "
                        f"use in {cfg.qualname}; the caller's seed never "
                        "reaches a draw",
                    )


class RngDeadRule(LintRule):
    """A constructed generator must feed at least one draw."""

    name = "rng-dead"
    summary = "a Generator constructed but never used is a missing draw or noise"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not _in_pure_scope(ctx):
            return
        for cfg in file_cfgs(ctx):
            if cfg.uses_dynamic_locals:
                continue
            liveness = liveness_of(ctx, cfg)
            reachable = cfg.reachable()
            for block in cfg.blocks:
                if block.index not in reachable:
                    continue
                after = liveness.element_states(block.index)
                for element, live_after in zip(block.elements, after):
                    yield from self._check_element(ctx, cfg, element, live_after)

    def _check_element(
        self,
        ctx: FileContext,
        cfg: CFG,
        element: Element,
        live_after: frozenset[str],
    ) -> Iterable[Diagnostic]:
        bound = binding_of(element)
        if bound is None:
            return
        name, value = bound
        if name.startswith("_") or name in cfg.closure_names or name in cfg.global_names:
            return
        if not isinstance(value, ast.Call) or constructor_kind(value) != "rng":
            return
        if name not in live_after:
            yield self.diagnostic(
                ctx,
                element,
                f"generator {name!r} is constructed here but never used "
                f"in {cfg.qualname}",
            )


class UseAfterMoveRule(LintRule):
    """A name whose ownership was transferred must not be used again."""

    name = "use-after-move"
    summary = (
        "after '# reprolint: moves(name)' transfers ownership, the name "
        "must be rebound before any further use"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module_parts is None:
            return
        moves_by_line = {
            line: pragmas.moves for line, pragmas in ctx.pragmas.items() if pragmas.moves
        }
        if not moves_by_line:
            return
        for cfg in file_cfgs(ctx):
            solution = solve(cfg, MovedNames(moves_by_line))
            for block in cfg.blocks:
                states = solution.element_states(block.index)
                for element, moved in zip(block.elements, states):
                    if not moved:
                        continue
                    _, uses = element_defs_uses(element)
                    line = int(getattr(element, "lineno", 0))
                    for name, moved_at in sorted(moved):
                        if name in uses and line != moved_at:
                            yield self.diagnostic(
                                ctx,
                                element,
                                f"{name!r} was moved to a new owner at line "
                                f"{moved_at} and must not be used afterwards",
                            )


RULES: tuple[LintRule, ...] = (
    RngReseedRule(),
    RngShadowRule(),
    RngDeadRule(),
    UseAfterMoveRule(),
)

"""``out=`` aliasing rule for the batched kernel surface.

The zero-allocation kernel style (``fir_filter_rows(rows, taps,
scratch, out=y)``) invites an easy and nearly undetectable mistake:
passing the *same* buffer as an input and as ``out=``. A kernel that
reads each input element before writing the corresponding output
happens to work; one that writes ahead of its reads (IIR feedback,
cascades reusing rows) silently corrupts the tail of its own input —
results look plausible and no exception fires.

``out-aliasing`` flags every resolved internal call whose ``out=``
argument is the *same expression* as another argument (the bare name,
or an identical subscript such as ``x[lo:hi]`` twice), unless the
callee's ``def`` line carries ``# reprolint: alias-safe`` — the
author's documented claim that in-place operation is correct, recorded
where the kernel lives rather than at each call site.

Different subscripts of one base (``x[0:n]`` vs ``x[n:m]``) are left
alone: proving disjointness is a range-analysis problem, and flagging
overlapping-but-maybe-disjoint windows would bury the definite hits.
External callees (numpy ufuncs are documented alias-safe) stay silent.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule

__all__ = ["OutAliasingRule", "RULES"]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _own_calls(fn: ast.AST) -> Iterator[ast.Call]:
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        child = stack.pop()
        if isinstance(child, ast.Call):
            yield child
        if not isinstance(child, _NESTED_SCOPES):
            stack.extend(ast.iter_child_nodes(child))


def _root_name(node: ast.expr) -> str | None:
    """Base ``Name`` of a Name/Subscript/Attribute chain, else None."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _same_expr(a: ast.expr, b: ast.expr) -> bool:
    """Structurally identical expressions (``x`` vs ``x``, same slice)."""
    return ast.dump(a) == ast.dump(b)


class OutAliasingRule(LintRule):
    """``out=`` must not alias an input unless the kernel says alias-safe."""

    name = "out-aliasing"
    summary = (
        "an out= buffer that is the same expression as an input argument "
        "lets the kernel overwrite data it has not read yet; the callee "
        "must carry `# reprolint: alias-safe` to allow in-place calls"
    )
    requires_project = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        project = ctx.project
        if project is None or ctx.module_parts is None:
            return
        mod = project.module_of(ctx.module_parts)
        if mod is None:
            return
        from repro.lint.cfg import iter_functions

        for qualname, fn_node in iter_functions(ctx.tree):
            if qualname not in mod.functions:
                continue
            for call in _own_calls(fn_node):
                out_expr = None
                for kw in call.keywords:
                    if kw.arg == "out":
                        out_expr = kw.value
                        break
                if out_expr is None or _root_name(out_expr) is None:
                    continue
                aliased = self._aliased_input(call, out_expr)
                if aliased is None:
                    continue
                res = project.resolve_ast_call(ctx.module_parts, qualname, call)
                if res is None or res.category != "internal" or res.target is None:
                    continue  # external/unresolved: numpy ufuncs alias-safe
                callee = project.summary(res.target)
                if callee is None or callee.alias_safe:
                    continue
                short = res.target.split(".")[-1]
                yield self.diagnostic(
                    ctx,
                    out_expr,
                    f"out= aliases input {aliased!r} in this call to "
                    f"{short}(), which is not declared alias-safe; the "
                    "kernel may overwrite elements it has not read yet — "
                    "pass a distinct buffer, or mark the callee "
                    "`# reprolint: alias-safe` after verifying its "
                    "read-before-write order",
                )

    @staticmethod
    def _aliased_input(call: ast.Call, out_expr: ast.expr) -> str | None:
        """Spelling of an input argument identical to ``out_expr``."""
        out_root = _root_name(out_expr)
        candidates: list[ast.expr] = list(call.args)
        candidates.extend(
            kw.value for kw in call.keywords if kw.arg is not None and kw.arg != "out"
        )
        for arg in candidates:
            if isinstance(arg, ast.Starred):
                continue
            root = _root_name(arg)
            if root is None or root != out_root:
                continue
            if _same_expr(arg, out_expr):
                return ast.unparse(arg) if hasattr(ast, "unparse") else root
        return None


RULES: tuple[LintRule, ...] = (OutAliasingRule(),)

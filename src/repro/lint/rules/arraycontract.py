"""Array-contract rules: symbolic shape and dtype checking at call sites.

The batched kernels communicate through implicit array contracts —
``(S, T, R)`` block geometry, complex128-in/float64-out dtype
discipline — that no test exercises for every caller and no ``ndarray``
annotation can express. With contracts declared via the
``# reprolint: shape(...)`` pragma or a docstring ``Shape:`` block
(:mod:`repro.lint.arrayflow`), these rules check every resolved call in
the tree against them:

- ``shape-mismatch`` — an argument whose inferred rank or a literal
  dimension definitely conflicts with the callee's declared shape; a
  literal 1 against a literal N is reported as the nastier *broadcast
  hazard* (numpy accepts it and silently stretches the axis), and one
  callee symbol bound to two different literal dims across the same
  call (``rows=(N,R), out=(N,R)`` with ``rows`` 64-row and ``out``
  32-row) is convicted even though neither argument conflicts alone.
- ``dtype-drop`` — complex data silently narrowed to a float contract
  (the imaginary half of the IQ signal vanishes; numpy only warns at
  runtime), a complex-typed value ``.astype``'d to float without going
  through ``.real``/``np.abs``, and — on ``# reprolint: hotpath``
  functions only — float32 data widened into a float64 contract, which
  doubles memory traffic on the per-frame path.

Both rules are conservative: an unknown rank, an unmodelled expression,
or a symbolic-vs-symbolic dim difference stays silent. Findings mean a
*definite* contract violation, so the committed baseline stays empty.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.arrayflow import (
    ArrayType,
    ShapeEnv,
    bind_dims,
    dims_conflict,
    is_complex,
    is_float,
)
from repro.lint.callgraph import FunctionFacts
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule
from repro.lint.suppress import ShapeContract
from repro.lint.summaries import FunctionSummary, ProjectAnalysis

__all__ = ["ShapeMismatchRule", "DtypeDropRule", "RULES"]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _NESTED_SCOPES):
            stack.extend(ast.iter_child_nodes(child))


def _foreign(array: ArrayType) -> ArrayType:
    """A callee's return type as seen by a caller: symbols demoted to ?."""
    dims, dtype = array
    if dims is None:
        return array
    return (tuple(d if d.isdigit() else "?" for d in dims), dtype)


def _contracts_of(facts: FunctionFacts) -> dict[str, ShapeContract]:
    return {
        name: ShapeContract(name=name, dims=dims, dtype=dtype)
        for name, (dims, dtype) in facts.array_contracts.items()
        if name != "return"
    }


def _spell(dims: tuple[str, ...] | None) -> str:
    return "?" if dims is None else "(" + ", ".join(dims) + ")"


class _ContractRule(LintRule):
    """Shared iteration: each function with a ShapeEnv + resolved calls."""

    requires_project = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        project = ctx.project
        if project is None or ctx.module_parts is None:
            return
        mod = project.module_of(ctx.module_parts)
        if mod is None:
            return
        from repro.lint.cfg import iter_functions

        for qualname, fn_node in iter_functions(ctx.tree):
            facts = mod.functions.get(qualname)
            if facts is None:
                continue

            def resolve(call: ast.Call, _q: str = qualname) -> ArrayType | None:
                res = project.resolve_ast_call(ctx.module_parts, _q, call)
                if res is None or res.category != "internal" or res.target is None:
                    return None
                callee = project.summary(res.target)
                if callee is None or callee.returns_array is None:
                    return None
                return _foreign(callee.returns_array)

            env = ShapeEnv(_contracts_of(facts), resolve_call=resolve)
            env.bind_body(fn_node)
            yield from self.check_function(ctx, project, qualname, facts, fn_node, env)

    def check_function(
        self,
        ctx: FileContext,
        project: ProjectAnalysis,
        qualname: str,
        facts: FunctionFacts,
        fn_node: ast.AST,
        env: ShapeEnv,
    ) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def _contracted_calls(
        self, ctx: FileContext, project: ProjectAnalysis, qualname: str, fn_node: ast.AST
    ) -> Iterator[tuple[ast.Call, FunctionSummary, list[tuple[str, ast.expr]]]]:
        """Calls landing in a callee with contracts, args mapped to params."""
        for node in _own_nodes(fn_node):
            if not isinstance(node, ast.Call):
                continue
            res = project.resolve_ast_call(ctx.module_parts, qualname, node)
            if res is None or res.category != "internal" or res.target is None:
                continue
            callee = project.summary(res.target)
            if callee is None or not callee.array_params:
                continue
            if any(isinstance(a, ast.Starred) for a in node.args) or any(
                kw.arg is None for kw in node.keywords
            ):
                continue  # *args/**kwargs: the mapping is not knowable
            mapped: list[tuple[str, ast.expr]] = []
            for position, arg in enumerate(node.args):
                param = project.call_param(res, position)
                if param is not None:
                    mapped.append((param, arg))
            for kw in node.keywords:
                if kw.arg is not None:
                    param = project.call_param(res, kw.arg)
                    if param is not None:
                        mapped.append((param, kw.value))
            yield node, callee, mapped


class ShapeMismatchRule(_ContractRule):
    """Arguments must satisfy the callee's declared shape contract."""

    name = "shape-mismatch"
    summary = (
        "argument shape definitely conflicts with the callee's declared "
        "contract (rank, a literal dim, or one symbol bound two ways); "
        "a literal 1 vs N is flagged as a silent broadcast hazard"
    )

    def check_function(
        self,
        ctx: FileContext,
        project: ProjectAnalysis,
        qualname: str,
        facts: FunctionFacts,
        fn_node: ast.AST,
        env: ShapeEnv,
    ) -> Iterable[Diagnostic]:
        for call, callee, mapped in self._contracted_calls(
            ctx, project, qualname, fn_node
        ):
            binding: dict[str, str] = {}
            short = callee.qualname.split(".")[-1]
            for param, arg in mapped:
                contract = callee.array_params.get(param)
                if contract is None or contract[0] is None:
                    continue
                declared = contract[0]
                actual = env.type_of(arg)
                if actual is None or actual[0] is None:
                    continue
                if len(actual[0]) != len(declared):
                    yield self.diagnostic(
                        ctx,
                        arg,
                        f"argument {param!r} of {short}() has rank "
                        f"{len(actual[0])} {_spell(actual[0])} but the "
                        f"contract declares rank {len(declared)} "
                        f"{_spell(declared)}",
                    )
                    continue
                broken = False
                for declared_dim, actual_dim in zip(declared, actual[0]):
                    verdict = dims_conflict(declared_dim, actual_dim)
                    if verdict == "mismatch":
                        yield self.diagnostic(
                            ctx,
                            arg,
                            f"argument {param!r} of {short}() has dim "
                            f"{actual_dim} where the contract declares "
                            f"{declared_dim} ({_spell(actual[0])} vs "
                            f"{_spell(declared)})",
                        )
                        broken = True
                        break
                    if verdict == "broadcast":
                        yield self.diagnostic(
                            ctx,
                            arg,
                            f"argument {param!r} of {short}() has dim "
                            f"{actual_dim} where the contract declares "
                            f"{declared_dim}; numpy will broadcast instead "
                            "of rejecting this, silently stretching the "
                            "axis — a shape bug no exception will catch",
                        )
                        broken = True
                        break
                if broken:
                    continue
                symbol = bind_dims(binding, declared, actual[0])
                if symbol is not None:
                    sizes = {binding.get(symbol, "?")} | {
                        a
                        for d, a in zip(declared, actual[0])
                        if d == symbol
                    }
                    tail = (
                        "numpy will broadcast instead of rejecting this, "
                        "silently stretching the axis"
                        if "1" in sizes
                        else "the shared dim must agree across every argument"
                    )
                    yield self.diagnostic(
                        ctx,
                        arg,
                        f"callee symbol {symbol!r} of {short}() is bound to "
                        f"two different sizes by this call's arguments "
                        f"({param!r} gives {_spell(actual[0])} against "
                        f"contract {_spell(declared)}); {tail}",
                    )


class DtypeDropRule(_ContractRule):
    """Complex data must not silently narrow; hot paths must not widen."""

    name = "dtype-drop"
    summary = (
        "complex data passed into a float contract or .astype(float)'d "
        "loses its imaginary half silently; float32 widened into a "
        "float64 contract doubles memory traffic on hotpath functions"
    )

    def check_function(
        self,
        ctx: FileContext,
        project: ProjectAnalysis,
        qualname: str,
        facts: FunctionFacts,
        fn_node: ast.AST,
        env: ShapeEnv,
    ) -> Iterable[Diagnostic]:
        for call, callee, mapped in self._contracted_calls(
            ctx, project, qualname, fn_node
        ):
            short = callee.qualname.split(".")[-1]
            for param, arg in mapped:
                contract = callee.array_params.get(param)
                if contract is None or not contract[1]:
                    continue
                actual_dtype = env.dtype_of(arg)
                if not actual_dtype:
                    continue
                declared_dtype = contract[1]
                if is_complex(actual_dtype) and is_float(declared_dtype):
                    yield self.diagnostic(
                        ctx,
                        arg,
                        f"argument {param!r} of {short}() is {actual_dtype} "
                        f"but the contract declares {declared_dtype}; the "
                        "imaginary half is dropped silently (numpy only "
                        "emits ComplexWarning at runtime) — take .real or "
                        "np.abs(...) explicitly first",
                    )
                elif (
                    (facts.hotpath or callee.hotpath)
                    and actual_dtype == "float32"
                    and declared_dtype == "float64"
                ):
                    yield self.diagnostic(
                        ctx,
                        arg,
                        f"argument {param!r} of {short}() is float32 but "
                        f"the contract declares float64 on a hot-path "
                        "call; the implicit upcast doubles per-frame "
                        "memory traffic — keep the buffer float64 or "
                        "declare the contract float32",
                    )
        # Local narrowing: x.astype(float...) on a complex-typed value.
        for node in _own_nodes(fn_node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                continue
            receiver_dtype = env.dtype_of(node.func.value)
            if not is_complex(receiver_dtype):
                continue
            target = self._astype_dtype(node)
            if is_float(target):
                yield self.diagnostic(
                    ctx,
                    node,
                    f".astype({target}) on a {receiver_dtype} value drops "
                    "the imaginary half silently — take .real (phase-"
                    "insensitive) or np.abs(...) (envelope) explicitly so "
                    "the projection is visible in the code",
                )

    @staticmethod
    def _astype_dtype(node: ast.Call) -> str:
        from repro.lint.arrayflow import dtype_of_expr

        if node.args:
            return dtype_of_expr(node.args[0])
        for kw in node.keywords:
            if kw.arg == "dtype":
                return dtype_of_expr(kw.value)
        return ""


RULES: tuple[LintRule, ...] = (ShapeMismatchRule(), DtypeDropRule())

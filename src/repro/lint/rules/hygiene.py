"""API-hygiene rules: small Python footguns that bite a library.

- ``mutable-default`` — list/dict/set default arguments are shared
  across calls.
- ``bare-except`` / ``broad-except`` — ``except:`` swallows
  ``KeyboardInterrupt``; ``except Exception:`` without a re-raise hides
  programming errors.
- ``no-assert`` — ``assert`` compiles away under ``python -O``; library
  code must raise real exceptions.
- ``or-default`` — ``x = x or default`` on an Optional parameter treats
  every falsy-but-valid value (0, 0.0, an empty array...) as missing;
  write ``x if x is not None else default``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule

__all__ = [
    "MutableDefaultRule",
    "ExceptHygieneRule",
    "NoAssertRule",
    "OrDefaultRule",
    "RULES",
]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class MutableDefaultRule(LintRule):
    """Default argument values must be immutable."""

    name = "mutable-default"
    summary = "mutable default arguments ([] / {} / set()) are shared across calls"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.diagnostic(
                        ctx,
                        default,
                        "mutable default argument is evaluated once and shared "
                        "across calls; default to None and build inside",
                    )


class ExceptHygieneRule(LintRule):
    """No bare excepts; broad excepts must re-raise."""

    name = "except-hygiene"
    summary = "bare `except:` is banned; `except Exception:` must re-raise"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare `except:` also catches KeyboardInterrupt/SystemExit; "
                    "name the exceptions you can actually handle",
                )
                continue
            names = {
                child.id
                for child in ast.walk(node.type)
                if isinstance(child, ast.Name)
            }
            if names & {"Exception", "BaseException"} and not self._reraises(node):
                yield self.diagnostic(
                    ctx,
                    node,
                    "`except Exception:` without a re-raise hides programming "
                    "errors; narrow the type or `raise` after handling",
                )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


class NoAssertRule(LintRule):
    """Library code must not rely on `assert` (stripped under -O)."""

    name = "no-assert"
    summary = "assert statements vanish under `python -O`; raise real exceptions"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module_parts is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.diagnostic(
                    ctx,
                    node,
                    "assert disappears under `python -O`; raise "
                    "ValueError/RuntimeError with a message instead",
                )


class OrDefaultRule(LintRule):
    """`param or default` on an Optional parameter conflates falsy with None."""

    name = "or-default"
    summary = (
        "`x or default` on an Optional parameter misreads falsy-but-valid "
        "values; use `x if x is not None else default`"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._walk(ctx, ctx.tree, {})

    def _walk(
        self, ctx: FileContext, node: ast.AST, optional_params: dict[str, bool]
    ) -> Iterable[Diagnostic]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            optional_params = dict(optional_params)
            optional_params.update(self._optional_params(node))
        elif isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            first = node.values[0]
            if isinstance(first, ast.Name) and optional_params.get(first.id):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"`{first.id} or ...` treats every falsy {first.id} as "
                    f"missing; write `{first.id} if {first.id} is not None "
                    "else ...`",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, optional_params)

    @staticmethod
    def _optional_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, bool]:
        """Parameter name → is it Optional-annotated (and not bool)?"""
        args = fn.args
        positional = args.posonlyargs + args.args
        defaults: list[ast.expr | None] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        pairs = list(zip(positional, defaults)) + list(
            zip(args.kwonlyargs, args.kw_defaults)
        )
        out: dict[str, bool] = {}
        for arg, default in pairs:
            out[arg.arg] = OrDefaultRule._is_optional(arg.annotation, default)
        return out

    @staticmethod
    def _is_optional(annotation: ast.expr | None, default: ast.expr | None) -> bool:
        default_is_none = isinstance(default, ast.Constant) and default.value is None
        if annotation is None:
            return default_is_none
        mentions_bool = any(
            isinstance(n, ast.Name) and n.id == "bool" for n in ast.walk(annotation)
        )
        if mentions_bool:
            return False
        mentions_none = any(
            (isinstance(n, ast.Constant) and n.value is None)
            or (isinstance(n, ast.Name) and n.id == "Optional")
            or (isinstance(n, ast.Attribute) and n.attr == "Optional")
            for n in ast.walk(annotation)
        )
        return mentions_none or default_is_none


RULES: tuple[LintRule, ...] = (
    MutableDefaultRule(),
    ExceptHygieneRule(),
    NoAssertRule(),
    OrDefaultRule(),
)

"""View-escape rule: zero-copy mmap views must not outlive their reader.

:class:`repro.store.reader.TraceReader` hands out zero-copy views into
its memory map (``read``, ``chunk_frames``, ``timestamps``, the
``frames`` property). That is the point of the format — but a view that
escapes past ``close()`` (or past the ``with`` block) keeps pointing at
an unmapped region: on CPython the mmap object stays alive through the
ndarray's base reference and the *file* stays open long after the
reader "closed" it, and explicit ``mmap.close()`` paths crash with a
BufferError or worse. Either way the caller holds a time bomb the type
system cannot see.

``view-escape`` flags, per function:

- ``return``/``yield`` of a view (by name or directly) produced from a
  reader that this function releases — a ``with TraceReader(...)``
  block releases by construction; a plain ``r = TraceReader(...)``
  counts once ``r.close()`` appears anywhere in the body;
- storing such a view on ``self``/an attribute, which parks it beyond
  the release point just as surely.

Copies break the chain: rebinding through ``.copy()``, ``.astype``,
``np.array(...)``, ``np.ascontiguousarray(...)`` launders the value,
and a reader that itself escapes (returned or stored) transfers the
release obligation to the caller, so its views are the caller's
problem — the lifecycle rules track the reader from there.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule, dotted_name

__all__ = ["ViewEscapeRule", "RULES"]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Reader methods (and the one property) returning zero-copy views.
_VIEW_METHODS = frozenset({"read", "chunk_frames", "timestamps"})
_VIEW_ATTRS = frozenset({"frames"})

#: Spellings that materialise an owned copy of a view.
_COPY_CALLS = frozenset(
    {"np.array", "numpy.array", "np.ascontiguousarray", "numpy.ascontiguousarray"}
)
_COPY_METHODS = frozenset({"copy", "astype", "tolist"})


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _NESTED_SCOPES):
            stack.extend(ast.iter_child_nodes(child))


def _is_reader_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    return dotted is not None and dotted.split(".")[-1] == "TraceReader"


def _view_source(node: ast.expr, readers: set[str]) -> str | None:
    """Reader name a view expression reads from, or None.

    Matches ``r.read(...)`` / ``r.chunk_frames(...)`` /
    ``r.timestamps()`` / ``r.frames`` and slices thereof.
    """
    if isinstance(node, ast.Subscript):
        return _view_source(node.value, readers)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in readers
        and node.func.attr in _VIEW_METHODS
    ):
        return node.func.value.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in readers
        and node.attr in _VIEW_ATTRS
    ):
        return node.value.id
    return None


def _is_copying(node: ast.expr) -> bool:
    """True when ``node`` wraps its argument in an owning copy."""
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    if dotted in _COPY_CALLS:
        return True
    return (
        isinstance(node.func, ast.Attribute) and node.func.attr in _COPY_METHODS
    )


class ViewEscapeRule(LintRule):
    """No zero-copy reader view may escape past the reader's release."""

    name = "view-escape"
    summary = (
        "a zero-copy TraceReader view (read/chunk_frames/timestamps/"
        "frames) returned or stored past the reader's close() points at "
        "a dead mapping; copy it (np.array, .copy()) before it escapes"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[Diagnostic]:
        nodes = list(_own_nodes(fn))

        readers: set[str] = set()
        released: set[str] = set()
        for node in nodes:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_reader_ctor(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        readers.add(item.optional_vars.id)
                        released.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_reader_ctor(node.value):
                    readers.add(target.id)
        if not readers:
            return
        for node in nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in readers
                and node.func.attr == "close"
            ):
                released.add(node.func.value.id)

        # A reader that escapes hands its obligation to the caller.
        for node in nodes:
            if isinstance(node, (ast.Return, ast.Yield)) and isinstance(
                node.value, ast.Name
            ):
                released.discard(node.value.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and isinstance(
                        node.value, ast.Name
                    ):
                        released.discard(node.value.id)
        if not released:
            return

        # View locals bound from a released reader; copies launder. The
        # walk order is arbitrary, so rebinding is judged in source order.
        views: dict[str, str] = {}
        assigns = sorted(
            (n for n in nodes if isinstance(n, ast.Assign)),
            key=lambda n: (n.lineno, n.col_offset),
        )
        for node in assigns:
            if len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            source = _view_source(node.value, released)
            if source is not None:
                views[target.id] = source
            elif target.id in views:
                # Rebinding through a copy (or anything else) launders.
                del views[target.id]

        def escaping_view(value: ast.expr | None) -> tuple[str, str] | None:
            """``(view spelling, reader name)`` when ``value`` escapes."""
            if value is None or _is_copying(value):
                return None
            if isinstance(value, ast.Name) and value.id in views:
                return value.id, views[value.id]
            source = _view_source(value, released)
            if source is not None:
                spelled = ast.unparse(value) if hasattr(ast, "unparse") else "<view>"
                return spelled, source
            return None

        for node in nodes:
            if isinstance(node, (ast.Return, ast.Yield)):
                hit = escaping_view(node.value)
                if hit is not None:
                    spelled, reader = hit
                    verb = "returned" if isinstance(node, ast.Return) else "yielded"
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"zero-copy view {spelled!r} from reader {reader!r} "
                        f"is {verb} past the reader's release; it will point "
                        "at a dead mapping — materialise it first "
                        "(np.array(view) or view.copy())",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    hit = escaping_view(node.value)
                    if hit is not None:
                        spelled, reader = hit
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"zero-copy view {spelled!r} from reader "
                            f"{reader!r} is stored on an attribute and "
                            "outlives the reader's release — materialise "
                            "it first (np.array(view) or view.copy())",
                        )


RULES: tuple[LintRule, ...] = (ViewEscapeRule(),)

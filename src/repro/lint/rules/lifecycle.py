"""Resource-lifecycle dataflow rule for the service-layer packages.

A :class:`~repro.fleet.session.DetectorSession`, a ``threading.Thread``,
a gateway server/client handle, or an ``open()`` handle acquired in
``repro.hardware`` / ``repro.fleet`` / ``repro.store`` /
``repro.gateway`` must be released
(``close()`` / ``join()`` / ``shutdown()``) on **every** CFG path out of the function —
including the exceptional edges the CFG models inside ``try`` blocks and
explicit ``raise`` statements — unless:

- a ``with`` statement governs it (the CFG binds it via ``WithBind``,
  which this rule never starts tracking),
- ownership visibly escapes (returned, yielded, stored into an
  attribute/container, passed to a callable we cannot see — the new
  owner carries the obligation), or
- a ``# reprolint: moves(name)`` pragma documents a hand-off the
  analysis genuinely cannot follow.

Since the interprocedural engine landed, hand-offs to *in-tree* helpers
are no longer automatic escapes: the callee's
:class:`~repro.lint.summaries.FunctionSummary` decides. A helper that
**consumes** the handle (transitively calls ``close()``/``join()`` on
its parameter) counts as a release; one that stores it away escapes;
one that merely *uses* it (reads, writes, inspects) keeps the
obligation right here in the caller — passing a handle to a logging
helper no longer silences the leak. Symmetrically, ``x = make_writer()``
starts tracking when the helper's summary says it **returns an owned
resource**. The old behaviour (every call is an escape, only literal
constructors start tracking) is what the rule degrades to when the
project analysis is absent.

The analysis is a forward may-be-unreleased set over ``(name,
acquisition site)`` pairs solved on the CFG; anything still in the set
at the exit block leaks on at least one path. Union join gives the
must-release-on-all-paths semantics: one early ``return`` above the
``close()`` is enough to convict.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.cfg import CFG, Element
from repro.lint.context import FileContext
from repro.lint.dataflow import Analysis, element_defs_uses, file_cfgs, solve
from repro.lint.diagnostics import Diagnostic
from repro.lint.provenance import (
    KIND_NOUN,
    RELEASE_METHODS,
    TRACKED_KINDS,
    binding_of,
    constructor_kind,
)
from repro.lint.rules import LintRule
from repro.lint.summaries import ProjectAnalysis

__all__ = ["ResourceLifecycleRule", "RULES"]

#: All method names that release *some* tracked kind.
_ALL_RELEASES = frozenset(name for names in RELEASE_METHODS.values() for name in names)


class _CallResolver:
    """Pass-decision oracle for one function's call sites.

    Wraps the project analysis with the caller's coordinates so the
    dataflow transfer can ask "what happens to a handle given to this
    call?" without knowing anything about resolution.
    """

    def __init__(
        self,
        project: ProjectAnalysis,
        module_parts: tuple[str, ...] | None,
        qualname: str,
    ) -> None:
        self._project = project
        self._module_parts = module_parts
        self._qualname = qualname

    def pass_decision(self, call: ast.Call, slot: "int | str") -> str:
        """``"consumed"`` | ``"kept"`` | ``"escape"`` for one argument."""
        if any(isinstance(arg, ast.Starred) for arg in call.args) or any(
            kw.arg is None for kw in call.keywords
        ):
            return "escape"  # star-args make the slot mapping unsafe
        res = self._project.resolve_ast_call(self._module_parts, self._qualname, call)
        if res is None or res.category != "internal" or res.target is None:
            return "escape"
        summary = self._project.summary(res.target)
        landing = self._project.call_param(res, slot)
        if summary is None or landing is None:
            return "escape"
        if landing in summary.consumes:
            return "consumed"
        if landing in summary.escapes:
            return "escape"
        return "kept"

    def returns_owned_kind(self, call: ast.Call) -> str | None:
        """Tracked kind a resolved helper call hands its caller, if any."""
        res = self._project.resolve_ast_call(self._module_parts, self._qualname, call)
        if res is None or res.category != "internal" or res.target is None:
            return None
        summary = self._project.summary(res.target)
        if summary is None or not summary.returns_owned:
            return None
        return summary.returns_owned


def _dropped_names(element: Element, resolver: _CallResolver | None) -> frozenset[str]:
    """Names whose tracking obligation leaves this element.

    Per Name-load occurrence:

    - receiver of ``name.close()``/``join()``/... → released (drops);
    - receiver of any other method → still ours (keeps);
    - argument to a call → the callee summary decides (consumed and
      escape both drop; "kept" keeps the obligation here);
    - any other load (returned, yielded, stored, a container element)
      → escapes (drops).
    """
    if not isinstance(element, ast.AST):
        return frozenset()  # synthetic Bind wrappers
    receivers: dict[int, str] = {}
    arg_slots: dict[int, tuple[ast.Call, "int | str"]] = {}
    for node in ast.walk(element):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            receivers[id(node.func.value)] = node.func.attr
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Name):
                arg_slots[id(arg)] = (node, position)
        for kw in node.keywords:
            if kw.arg is not None and isinstance(kw.value, ast.Name):
                arg_slots[id(kw.value)] = (node, kw.arg)
    dropped: set[str] = set()
    for node in ast.walk(element):
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        method = receivers.get(id(node))
        if method is not None:
            if method in _ALL_RELEASES:
                dropped.add(node.id)
            continue  # receiver-only use keeps ownership here
        slot = arg_slots.get(id(node))
        if slot is not None:
            if resolver is None:
                dropped.add(node.id)  # no project: every pass escapes
            elif resolver.pass_decision(slot[0], slot[1]) != "kept":
                dropped.add(node.id)
            continue
        dropped.add(node.id)  # returned / yielded / stored / collected
    return frozenset(dropped)


class _Unreleased(Analysis["frozenset[tuple[str, int]]"]):
    """May-be-unreleased resources, as ``(name, acquisition line)`` pairs."""

    forward = True

    def __init__(
        self,
        moves_by_line: dict[int, tuple[str, ...]],
        resolver: _CallResolver | None,
    ) -> None:
        self._moves_by_line = moves_by_line
        self._resolver = resolver
        self._kinds: dict[tuple[str, int], str] = {}
        #: Role classification is resolution work; the solver calls
        #: transfer repeatedly, so memoise per element.
        self._dropped_cache: dict[int, frozenset[str]] = {}

    def kind_of(self, pair: tuple[str, int]) -> str:
        return self._kinds[pair]

    def boundary(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def join(
        self, a: frozenset[tuple[str, int]], b: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        return a | b

    def transfer(
        self, element: Element, state: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        if not state and not isinstance(element, (ast.Assign, ast.AnnAssign)):
            # Nothing tracked yet and this element cannot start tracking.
            return state
        dropped = self._dropped_cache.get(id(element))
        if dropped is None:
            dropped = _dropped_names(element, self._resolver)
            self._dropped_cache[id(element)] = dropped
        line = int(getattr(element, "lineno", 0))
        moved = self._moves_by_line.get(line)
        if moved:
            dropped = dropped | frozenset(moved)
        defs, _ = element_defs_uses(element)
        if dropped or defs:
            state = frozenset(
                pair for pair in state if pair[0] not in dropped and pair[0] not in defs
            )
        bound = binding_of(element)
        if bound is not None:
            name, value = bound
            if isinstance(value, ast.Call):
                kind = constructor_kind(value)
                if kind not in TRACKED_KINDS and self._resolver is not None:
                    kind = self._resolver.returns_owned_kind(value)
                if kind in TRACKED_KINDS:
                    pair = (name, int(value.lineno))
                    self._kinds[pair] = kind
                    state = state | frozenset((pair,))
        return state


class ResourceLifecycleRule(LintRule):
    """Sessions, threads, and file handles must be released on every path."""

    name = "resource-leak"
    summary = (
        "resources acquired in repro.hardware/repro.fleet/repro.store/"
        "repro.gateway/repro.shard must be closed/joined on every CFG "
        "path, with-governed, or handed to a helper whose summary "
        "consumes them"
    )
    #: "2": interprocedural — helper hand-offs resolved through escape/
    #: consume summaries, owned returns start tracking.
    version = "2"
    requires_project = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not ctx.in_package("hardware", "fleet", "store", "gateway", "shard"):
            return
        moves_by_line = {
            line: pragmas.moves for line, pragmas in ctx.pragmas.items() if pragmas.moves
        }
        for cfg in file_cfgs(ctx):
            if cfg.uses_dynamic_locals:
                continue
            resolver = (
                _CallResolver(ctx.project, ctx.module_parts, cfg.qualname)
                if ctx.project is not None
                else None
            )
            analysis = _Unreleased(moves_by_line, resolver)
            solution = solve(cfg, analysis)
            leaked = solution.inputs[cfg.exit]
            for name, line in sorted(leaked, key=lambda pair: (pair[1], pair[0])):
                noun = KIND_NOUN[analysis.kind_of((name, line))]
                releases = "/".join(
                    sorted(RELEASE_METHODS[analysis.kind_of((name, line))])
                )
                yield Diagnostic(
                    path=ctx.path,
                    line=line,
                    col=0,
                    rule=self.name,
                    message=(
                        f"{noun} {name!r} acquired in {cfg.qualname} may reach "
                        f"function exit without {releases}(); release it on every "
                        "path (try/finally or with), or document the hand-off "
                        "with '# reprolint: moves(" + name + ")'"
                    ),
                )


RULES: tuple[LintRule, ...] = (ResourceLifecycleRule(),)

"""Resource-lifecycle dataflow rule for the service-layer packages.

A :class:`~repro.fleet.session.DetectorSession`, a ``threading.Thread``,
a gateway server/client handle, or an ``open()`` handle acquired in
``repro.hardware`` / ``repro.fleet`` / ``repro.store`` /
``repro.gateway`` must be released
(``close()`` / ``join()`` / ``shutdown()``) on **every** CFG path out of the function —
including the exceptional edges the CFG models inside ``try`` blocks and
explicit ``raise`` statements — unless:

- a ``with`` statement governs it (the CFG binds it via ``WithBind``,
  which this rule never starts tracking),
- ownership visibly escapes (returned, yielded, stored into an
  attribute/container, passed to another callable — the new owner
  carries the obligation), or
- a ``# reprolint: moves(name)`` pragma documents the hand-off where
  the syntax alone cannot show it.

The analysis is a forward may-be-unreleased set over ``(name,
acquisition site)`` pairs solved on the CFG; anything still in the set
at the exit block leaks on at least one path. Union join gives the
must-release-on-all-paths semantics: one early ``return`` above the
``close()`` is enough to convict.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.cfg import CFG, Element
from repro.lint.context import FileContext
from repro.lint.dataflow import Analysis, element_defs_uses, file_cfgs, solve
from repro.lint.diagnostics import Diagnostic
from repro.lint.provenance import (
    KIND_NOUN,
    RELEASE_METHODS,
    TRACKED_KINDS,
    binding_of,
    constructor_kind,
)
from repro.lint.rules import LintRule

__all__ = ["ResourceLifecycleRule", "RULES"]

#: All method names that release *some* tracked kind.
_ALL_RELEASES = frozenset(name for names in RELEASE_METHODS.values() for name in names)


def _receiver_roles(element: Element) -> tuple[frozenset[str], frozenset[str]]:
    """``(released names, escaped names)`` for one element.

    A name is *released* when it appears as ``name.close()`` /
    ``name.join()``. It *escapes* when it is loaded in any position other
    than being the receiver of a method call — an argument, a return
    value, a container element, an attribute store — because that hands
    a reference (and with it the release obligation) elsewhere.
    """
    if not isinstance(element, ast.AST):
        return frozenset(), frozenset()  # synthetic Bind wrappers
    released: set[str] = set()
    receiver_only: set[str] = set()
    receivers: dict[int, str] = {}
    for node in ast.walk(element):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            receivers[id(node.func.value)] = node.func.attr
    for node in ast.walk(element):
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        method = receivers.get(id(node))
        if method is None:
            continue
        if method in _ALL_RELEASES:
            released.add(node.id)
        else:
            receiver_only.add(node.id)
    _, uses = element_defs_uses(element)
    escaped = frozenset(uses - released - receiver_only)
    return frozenset(released), escaped


class _Unreleased(Analysis["frozenset[tuple[str, int]]"]):
    """May-be-unreleased resources, as ``(name, acquisition line)`` pairs."""

    forward = True

    def __init__(self, moves_by_line: dict[int, tuple[str, ...]]) -> None:
        self._moves_by_line = moves_by_line
        self._kinds: dict[tuple[str, int], str] = {}

    def kind_of(self, pair: tuple[str, int]) -> str:
        return self._kinds[pair]

    def boundary(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def join(
        self, a: frozenset[tuple[str, int]], b: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        return a | b

    def transfer(
        self, element: Element, state: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        if not state and not isinstance(element, (ast.Assign, ast.AnnAssign)):
            # Nothing tracked yet and this element cannot start tracking.
            return state
        released, escaped = _receiver_roles(element)
        dropped = released | escaped
        line = int(getattr(element, "lineno", 0))
        moved = self._moves_by_line.get(line)
        if moved:
            dropped = dropped | frozenset(moved)
        defs, _ = element_defs_uses(element)
        if dropped or defs:
            state = frozenset(
                pair for pair in state if pair[0] not in dropped and pair[0] not in defs
            )
        bound = binding_of(element)
        if bound is not None:
            name, value = bound
            if isinstance(value, ast.Call):
                kind = constructor_kind(value)
                if kind in TRACKED_KINDS:
                    pair = (name, int(value.lineno))
                    self._kinds[pair] = kind
                    state = state | frozenset((pair,))
        return state


class ResourceLifecycleRule(LintRule):
    """Sessions, threads, and file handles must be released on every path."""

    name = "resource-leak"
    summary = (
        "resources acquired in repro.hardware/repro.fleet/repro.store/"
        "repro.gateway must be closed/joined on every CFG path, "
        "with-governed, or moved"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not ctx.in_package("hardware", "fleet", "store", "gateway"):
            return
        moves_by_line = {
            line: pragmas.moves for line, pragmas in ctx.pragmas.items() if pragmas.moves
        }
        for cfg in file_cfgs(ctx):
            if cfg.uses_dynamic_locals:
                continue
            analysis = _Unreleased(moves_by_line)
            solution = solve(cfg, analysis)
            leaked = solution.inputs[cfg.exit]
            for name, line in sorted(leaked, key=lambda pair: (pair[1], pair[0])):
                noun = KIND_NOUN[analysis.kind_of((name, line))]
                releases = "/".join(
                    sorted(RELEASE_METHODS[analysis.kind_of((name, line))])
                )
                yield Diagnostic(
                    path=ctx.path,
                    line=line,
                    col=0,
                    rule=self.name,
                    message=(
                        f"{noun} {name!r} acquired in {cfg.qualname} may reach "
                        f"function exit without {releases}(); release it on every "
                        "path (try/finally or with), or document the hand-off "
                        "with '# reprolint: moves(" + name + ")'"
                    ),
                )


RULES: tuple[LintRule, ...] = (ResourceLifecycleRule(),)

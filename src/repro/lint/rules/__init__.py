"""Rule base class and the registry of every reprolint rule.

Rules are tiny stateless objects: a ``name`` (the id used in
``disable=`` pragmas and baseline entries), a one-line ``summary`` for
``--list-rules``, and a ``check`` method yielding
:class:`~repro.lint.diagnostics.Diagnostic` records. The registry is
assembled from explicit imports — no entry-point magic — so the full
rule catalogue is readable in one place.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic

__all__ = ["LintRule", "all_rules", "rules_by_name", "dotted_name"]


class LintRule:
    """Base class for every rule; subclasses set ``name`` and ``summary``."""

    name: str = ""
    summary: str = ""
    #: Bumped by the rule's author on any behaviour change; part of the
    #: result-cache fingerprint, so a re-tuned rule never serves stale
    #: cached findings (the names alone cannot express "same rule,
    #: different analysis").
    version: str = "1"
    #: True when the rule consumes the interprocedural project (call
    #: graph + summaries); the engine builds it only when some active
    #: rule needs it, keeping intra-procedural runs at their old cost.
    requires_project: bool = False

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        """Build a finding anchored at ``node``'s position."""
        return Diagnostic(
            path=ctx.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule=self.name,
            message=message,
        )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Shared by several rules that match calls and attribute accesses by
    their dotted spelling rather than by import resolution — the right
    weight for a repo-local linter with conventional import style
    (``import numpy as np``, ``import time``).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, in catalogue order."""
    from repro.lint.rules import (
        aliasing,
        arraycontract,
        concurrency,
        deadflow,
        determinism,
        hotpath,
        hygiene,
        lifecycle,
        locks,
        rngflow,
        units,
        viewescape,
    )

    modules = (
        determinism,
        rngflow,
        units,
        locks,
        hygiene,
        lifecycle,
        deadflow,
        hotpath,
        concurrency,
        arraycontract,
        aliasing,
        viewescape,
    )
    out: list[LintRule] = []
    for module in modules:
        out.extend(module.RULES)
    return tuple(out)


def rules_by_name() -> dict[str, LintRule]:
    """Registry keyed by rule name."""
    registry: dict[str, LintRule] = {}
    for rule in all_rules():
        if rule.name in registry:
            raise RuntimeError(f"duplicate rule name {rule.name!r}")
        registry[rule.name] = rule
    return registry


def iter_nodes(tree: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` with a stable name for rule modules to import."""
    return ast.walk(tree)

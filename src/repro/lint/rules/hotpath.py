"""Hot-path allocation rule: the batched kernels must not allocate per call.

The batched pipeline's throughput rests on preallocated scratch buffers
(:class:`repro.dsp.filters.FilterScratch`, the detector ring buffers):
a stray ``np.zeros`` / ``np.empty`` / ``np.concatenate`` inside a
per-frame kernel silently reintroduces an allocation *per call* — the
exact regression the batching work removed, and one no functional test
can catch. ``hotpath-alloc`` makes the no-allocation invariant
machine-checked, the same way the determinism rules pin replayability.

Scope: functions whose ``def`` line carries a ``# reprolint: hotpath``
pragma, in ``repro.core.batched`` and the ``repro.dsp`` package (the
kernel layer). Markers elsewhere are inert, so service code can document
hot paths without opting into the ban.

A deliberate allocation (e.g. the result buffer of an ``out=``-style
API, allocated only when the caller passes no buffer) is acknowledged
in place with ``# reprolint: disable=hotpath-alloc``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule, dotted_name

__all__ = ["HotpathAllocRule", "RULES"]

#: Allocating calls banned inside a hot-path function.
_ALLOC_CALLS = frozenset(
    {
        "np.zeros",
        "np.empty",
        "np.concatenate",
        "numpy.zeros",
        "numpy.empty",
        "numpy.concatenate",
    }
)


class HotpathAllocRule(LintRule):
    """No per-call numpy allocations inside ``# reprolint: hotpath`` functions."""

    name = "hotpath-alloc"
    summary = (
        "np.zeros/np.empty/np.concatenate inside a `# reprolint: hotpath` "
        "function allocates per call; use preallocated scratch buffers"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            pragma = ctx.pragma(node.lineno)
            if pragma is None or not pragma.hotpath:
                continue
            yield from self._check_function(ctx, node)

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        return ctx.module_parts == ("core", "batched") or ctx.in_package("dsp")

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[Diagnostic]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            called = dotted_name(node.func)
            if called in _ALLOC_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"`{called}` allocates on every call of hot-path function "
                    f"`{fn.name}`; thread a preallocated scratch buffer "
                    "through instead (or acknowledge a deliberate result "
                    "allocation with `# reprolint: disable=hotpath-alloc`)",
                )


RULES: tuple[LintRule, ...] = (HotpathAllocRule(),)

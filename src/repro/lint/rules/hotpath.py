"""Hot-path allocation rule: the batched kernels must not allocate per call.

The batched pipeline's throughput rests on preallocated scratch buffers
(:class:`repro.dsp.filters.FilterScratch`, the detector ring buffers):
a stray ``np.zeros`` / ``np.empty`` / ``np.concatenate`` inside a
per-frame kernel silently reintroduces an allocation *per call* — the
exact regression the batching work removed, and one no functional test
can catch. ``hotpath-alloc`` makes the no-allocation invariant
machine-checked, the same way the determinism rules pin replayability.

Scope: functions whose ``def`` line carries a ``# reprolint: hotpath``
pragma, in ``repro.core.batched`` and the ``repro.dsp`` package (the
kernel layer). Markers elsewhere are inert, so service code can document
hot paths without opting into the ban.

A deliberate allocation (e.g. the result buffer of an ``out=``-style
API, allocated only when the caller passes no buffer) is acknowledged
in place with ``# reprolint: disable=hotpath-alloc``.

``hotpath-copy`` covers the *implicit* allocations the alloc rule's
spelling list cannot: ``.astype(...)`` (copies unless ``copy=False``),
``.flatten()`` (always copies — ``ravel`` may not), boolean-mask and
list-literal fancy indexing (always materialise), and
``np.ascontiguousarray``/``np.asfortranarray`` (copy whenever the
input is strided — which on the hot path it usually is, that being why
the call was added). Same scope, same acknowledgement pragma.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule, dotted_name

__all__ = ["HotpathAllocRule", "HotpathCopyRule", "RULES"]

#: Allocating calls banned inside a hot-path function.
_ALLOC_CALLS = frozenset(
    {
        "np.zeros",
        "np.empty",
        "np.concatenate",
        "numpy.zeros",
        "numpy.empty",
        "numpy.concatenate",
    }
)


class HotpathAllocRule(LintRule):
    """No per-call numpy allocations inside ``# reprolint: hotpath`` functions."""

    name = "hotpath-alloc"
    summary = (
        "np.zeros/np.empty/np.concatenate inside a `# reprolint: hotpath` "
        "function allocates per call; use preallocated scratch buffers"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            pragma = ctx.pragma(node.lineno)
            if pragma is None or not pragma.hotpath:
                continue
            yield from self._check_function(ctx, node)

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        return ctx.module_parts == ("core", "batched") or ctx.in_package("dsp")

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[Diagnostic]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            called = dotted_name(node.func)
            if called in _ALLOC_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"`{called}` allocates on every call of hot-path function "
                    f"`{fn.name}`; thread a preallocated scratch buffer "
                    "through instead (or acknowledge a deliberate result "
                    "allocation with `# reprolint: disable=hotpath-alloc`)",
                )


#: ``np.X(y)`` spellings that copy whenever the input is strided.
_LAYOUT_COPIES = frozenset(
    {
        "np.ascontiguousarray",
        "numpy.ascontiguousarray",
        "np.asfortranarray",
        "numpy.asfortranarray",
    }
)


def _copy_false(node: ast.Call) -> bool:
    """True when the call passes ``copy=False`` explicitly."""
    for kw in node.keywords:
        if kw.arg == "copy" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


def _fancy_index(node: ast.Subscript) -> str | None:
    """Copy-producing index kind (``"mask"``/``"list"``) or None.

    Slices and integer/tuple indexing produce views; a boolean mask
    (any comparison expression) or a list-literal index materialises a
    new array every time.
    """
    index = node.slice
    if isinstance(index, ast.Compare):
        return "mask"
    if isinstance(index, ast.List):
        return "list"
    return None


class HotpathCopyRule(LintRule):
    """No implicit array copies inside ``# reprolint: hotpath`` functions."""

    name = "hotpath-copy"
    summary = (
        ".astype/.flatten/mask-or-list indexing/ascontiguousarray inside "
        "a `# reprolint: hotpath` function copies per call; restructure "
        "or acknowledge with `# reprolint: disable=hotpath-copy`"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not HotpathAllocRule._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            pragma = ctx.pragma(node.lineno)
            if pragma is None or not pragma.hotpath:
                continue
            yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[Diagnostic]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute):
                    method = node.func.attr
                    if method == "astype" and not _copy_false(node):
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"`.astype(...)` copies on every call of hot-path "
                            f"function `{fn.name}` (pass copy=False only if a "
                            "no-op cast is guaranteed); keep the buffer in "
                            "its target dtype instead",
                        )
                        continue
                    if method == "flatten":
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"`.flatten()` always copies; inside hot-path "
                            f"function `{fn.name}` use `.ravel()` (a view "
                            "for contiguous input) or index directly",
                        )
                        continue
                called = dotted_name(node.func)
                if called in _LAYOUT_COPIES:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"`{called}` copies whenever its input is strided — "
                        f"which on hot-path function `{fn.name}` it usually "
                        "is; keep the buffer contiguous from allocation "
                        "instead of re-packing per call",
                    )
            elif isinstance(node, ast.Subscript):
                kind = _fancy_index(node)
                if kind is not None:
                    what = (
                        "a boolean mask" if kind == "mask" else "a list literal"
                    )
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"indexing with {what} materialises a new array on "
                        f"every call of hot-path function `{fn.name}`; "
                        "precompute indices once, or operate in place "
                        "(np.where / boolean arithmetic into scratch)",
                    )


RULES: tuple[LintRule, ...] = (HotpathAllocRule(), HotpathCopyRule())

"""Lock-discipline rule: a lightweight guarded-by race checker.

The fleet subsystem shares per-session state between a pump thread and
a worker pool, protected by ``threading.Lock``/``Condition`` objects.
The compiler cannot check that discipline; this rule approximates the
classic *guarded-by* analysis at the AST level:

1. A class's **locks** are attributes assigned ``threading.Lock()``,
   ``RLock()`` or ``Condition()``.
2. An attribute ``self._x`` becomes **guarded** when any method writes
   it inside ``with self.<lock>:`` — or when its ``__init__``
   assignment carries ``# reprolint: guarded-by(<lock>)`` to declare
   the intent outright.
3. Every other access (read *or* write) to a guarded attribute outside
   ``__init__`` must hold one of its guarding locks, be inside a method
   whose ``def`` line carries ``guarded-by(<lock>)`` (callers hold the
   lock), or carry an explicit ``# reprolint: unguarded-ok`` pragma.

``__init__``/``__post_init__`` are exempt: construction happens before
the object is shared. The analysis is intentionally syntactic — it
checks the *convention*, catching the accidental unguarded access that
code review misses, not aliasing through local variables.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule, dotted_name

__all__ = ["GuardedByRule", "RULES"]

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class _Access:
    """One ``self._x`` touch inside a method body."""

    node: ast.Attribute
    attr: str
    method: str
    is_write: bool
    held: frozenset[str]
    line: int
    unguarded_ok: bool


@dataclass
class _ClassFacts:
    locks: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)
    declared_guards: dict[str, set[str]] = field(default_factory=dict)
    declared_unguarded: set[str] = field(default_factory=set)


def _iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _find_locks(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        dotted = dotted_name(node.value.func)
        if dotted is None or dotted.split(".")[-1] not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


class GuardedByRule(LintRule):
    """self._* state written under a lock must always be accessed under it."""

    name = "guarded-by"
    summary = (
        "attributes written under `with self._lock:` in one method must not "
        "be accessed without the lock elsewhere in the class"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for cls in _iter_classes(ctx.tree):
            yield from self._check_class(ctx, cls)

    # ------------------------------------------------------------- collection
    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterable[Diagnostic]:
        facts = _ClassFacts(locks=_find_locks(cls))
        if not facts.locks:
            return
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_method(ctx, facts, stmt)
        yield from self._report(ctx, facts)

    def _method_initial_held(
        self, ctx: FileContext, facts: _ClassFacts, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> frozenset[str]:
        pragma = ctx.pragma(fn.lineno)
        if pragma is None:
            return frozenset()
        return frozenset(lock for lock in pragma.guarded_by if lock in facts.locks)

    def _collect_method(
        self,
        ctx: FileContext,
        facts: _ClassFacts,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        held = self._method_initial_held(ctx, facts, fn)
        in_ctor = fn.name in _CONSTRUCTORS
        if in_ctor:
            self._collect_declarations(ctx, facts, fn)
        for stmt in fn.body:
            self._walk(ctx, facts, fn.name, stmt, held, in_ctor)

    def _collect_declarations(
        self,
        ctx: FileContext,
        facts: _ClassFacts,
        ctor: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        """guarded-by / unguarded-ok pragmas on constructor assignments."""
        for node in ast.walk(ctor):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            pragma = ctx.pragma(node.lineno)
            if pragma is None:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None or not attr.startswith("_"):
                    continue
                if pragma.unguarded_ok:
                    facts.declared_unguarded.add(attr)
                for lock in pragma.guarded_by:
                    if lock in facts.locks:
                        facts.declared_guards.setdefault(attr, set()).add(lock)

    def _walk(
        self,
        ctx: FileContext,
        facts: _ClassFacts,
        method: str,
        node: ast.AST,
        held: frozenset[str],
        in_ctor: bool,
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: set[str] = set()
            for item in node.items:
                self._walk(ctx, facts, method, item.context_expr, held, in_ctor)
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in facts.locks:
                    acquired.add(attr)
            inner = held | acquired
            for stmt in node.body:
                self._walk(ctx, facts, method, stmt, inner, in_ctor)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and attr.startswith("_") and attr not in facts.locks:
                pragma = ctx.pragma(node.lineno)
                effective = held
                unguarded_ok = False
                if pragma is not None:
                    unguarded_ok = pragma.unguarded_ok
                    extra = frozenset(
                        lock for lock in pragma.guarded_by if lock in facts.locks
                    )
                    effective = held | extra
                if not in_ctor:
                    facts.accesses.append(
                        _Access(
                            node=node,
                            attr=attr,
                            method=method,
                            is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                            held=effective,
                            line=node.lineno,
                            unguarded_ok=unguarded_ok,
                        )
                    )
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, facts, method, child, held, in_ctor)

    # -------------------------------------------------------------- reporting
    def _report(self, ctx: FileContext, facts: _ClassFacts) -> Iterable[Diagnostic]:
        guards: dict[str, set[str]] = {
            attr: set(locks) for attr, locks in facts.declared_guards.items()
        }
        for access in facts.accesses:
            if access.is_write and access.held:
                guards.setdefault(access.attr, set()).update(access.held)
        for access in facts.accesses:
            attr = access.attr
            if attr in facts.declared_unguarded or access.unguarded_ok:
                continue
            guarding = guards.get(attr)
            if not guarding or access.held & guarding:
                continue
            locks = "/".join(f"self.{lock}" for lock in sorted(guarding))
            verb = "written" if access.is_write else "read"
            yield self.diagnostic(
                ctx,
                access.node,
                f"self.{attr} is guarded by {locks} but {verb} in "
                f"{access.method}() without holding it; wrap the access in "
                f"`with {locks.split('/')[0]}:` or annotate the line with "
                "`# reprolint: unguarded-ok`",
            )


RULES: tuple[LintRule, ...] = (GuardedByRule(),)

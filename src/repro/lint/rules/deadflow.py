"""Dead-flow rules: code the CFG proves can never matter.

Three rules, all built on the dataflow layer:

- ``unreachable-code`` — statements in CFG blocks no path from entry
  reaches (code after a ``return``/``raise``, branches pruned by a
  constant condition). Only the *head* of each unreachable region is
  reported, so one early return does not produce a finding per line.
- ``dead-store`` — an assignment to a unit-suffixed local
  (``duration_s``, ``rate_hz``, …) whose value liveness proves is never
  read. A dead store to a physical quantity is how a unit conversion
  silently stops being applied.
- ``discarded-result`` — an expression statement that calls a pure
  ``repro.dsp`` function (or a curated ``repro.core`` analysis
  function) and drops the result. ``fir_filter(x, taps)`` on its own
  line filters nothing — a silent science bug.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.context import FileContext
from repro.lint.dataflow import file_cfgs, liveness_of
from repro.lint.diagnostics import Diagnostic
from repro.lint.provenance import binding_of
from repro.lint.rules import LintRule, dotted_name
from repro.lint.rules.units import suffix_family

__all__ = [
    "UnreachableCodeRule",
    "DeadStoreRule",
    "DiscardedResultRule",
    "RULES",
]

#: ``repro.core`` functions whose only effect is their return value.
_PURE_CORE_FUNCTIONS = frozenset(
    {
        "estimate_blink_durations",
        "window_metrics",
        "result_window_features",
        "variance_profile",
        "find_clusters",
        "select_eye_bin",
        "blink_rate_windows",
        "amplitude_series",
        "phase_series",
        "dynamic_component",
        "displacement_from_phase",
        "trajectory_variance",
        "detect_blinks",
    }
)


class UnreachableCodeRule(LintRule):
    """No path from function entry reaches this statement."""

    name = "unreachable-code"
    summary = "statements no CFG path from function entry can reach"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module_parts is None:
            return
        for cfg in file_cfgs(ctx):
            reachable = cfg.reachable()
            dead_with_code = {
                block.index
                for block in cfg.blocks
                if block.index not in reachable and block.first_positioned() is not None
            }
            for block in cfg.blocks:
                if block.index not in dead_with_code:
                    continue
                anchor = block.first_positioned()
                if anchor is None:
                    continue
                # Report only region heads: skip blocks that merely
                # continue an already-reported unreachable region.
                if any(edge.src in dead_with_code for edge in block.pred):
                    continue
                yield self.diagnostic(
                    ctx,
                    anchor,
                    f"statement in {cfg.qualname} is unreachable "
                    "(no path from function entry)",
                )


class DeadStoreRule(LintRule):
    """A stored physical quantity must be read on some path."""

    name = "dead-store"
    summary = (
        "assignments to unit-suffixed locals whose value liveness proves "
        "is never read"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module_parts is None:
            return
        for cfg in file_cfgs(ctx):
            if cfg.uses_dynamic_locals:
                continue
            liveness = liveness_of(ctx, cfg)
            reachable = cfg.reachable()
            for block in cfg.blocks:
                if block.index not in reachable:
                    continue
                after = liveness.element_states(block.index)
                for element, live_after in zip(block.elements, after):
                    bound = binding_of(element)
                    if bound is None:
                        continue
                    name, _ = bound
                    if (
                        name.startswith("_")
                        or name in cfg.closure_names
                        or name in cfg.global_names
                        or suffix_family(name) is None
                        or name in live_after
                    ):
                        continue
                    yield self.diagnostic(
                        ctx,
                        element,
                        f"dead store: {name!r} is assigned in {cfg.qualname} "
                        "but the value is never read on any path",
                    )


def _import_map(ctx: FileContext) -> dict[str, str]:
    """Local name → fully dotted module/object path, from this file's imports."""
    mapping: dict[str, str] = {}
    package_parts: tuple[str, ...] = ()
    if ctx.module_parts is not None:
        package_parts = ("repro",) + ctx.module_parts[:-1]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname if alias.asname else alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module if node.module is not None else ""
            if node.level:
                if node.level > len(package_parts):
                    continue
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ((base,) if base else ()))
            for alias in node.names:
                local = alias.asname if alias.asname else alias.name
                mapping[local] = f"{base}.{alias.name}" if base else alias.name
    return mapping


def _resolve_call(call: ast.Call, imports: dict[str, str]) -> str | None:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = imports.get(head)
    if resolved is None:
        return None
    return f"{resolved}.{rest}" if rest else resolved


class DiscardedResultRule(LintRule):
    """The result of a pure science function must not be dropped."""

    name = "discarded-result"
    summary = (
        "expression statements that discard the result of a pure "
        "repro.dsp / repro.core function"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module_parts is None:
            return
        imports = _import_map(ctx)
        if not imports:
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            resolved = _resolve_call(node.value, imports)
            if resolved is None:
                continue
            leaf = resolved.rsplit(".", 1)[-1]
            pure = resolved.startswith("repro.dsp.") or (
                resolved.startswith("repro.core.") and leaf in _PURE_CORE_FUNCTIONS
            )
            if pure:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"result of pure function {resolved} is discarded; "
                    "it has no side effects, so this statement does nothing",
                )


RULES: tuple[LintRule, ...] = (
    UnreachableCodeRule(),
    DeadStoreRule(),
    DiscardedResultRule(),
)

"""Asyncio concurrency rules for the gateway's event-loop code.

The gateway (PR 7) moved ingest onto a single asyncio event loop, which
buys the fleet-scale fan-in but makes two whole new bug classes cheap to
write and expensive to debug:

- A *blocking* call — ``time.sleep``, sync file IO, ``Thread.join`` —
  anywhere on the loop stalls **every** session at once. The direct
  cases are greppable; the dangerous ones hide two sync helpers away.
  ``blocking-in-async`` uses the interprocedural ``may_block`` summaries
  to convict the whole chain and name the leaf primitive.
- A coroutine *called* but never awaited silently does nothing
  (``unawaited-coroutine``), and a ``create_task`` handle that is never
  stored, awaited, or cancelled can be garbage-collected mid-flight —
  the event loop only keeps weak references (``task-leak``).
- A synchronous ``threading`` lock held across an ``await`` parks the
  entire loop if any other thread holds it (``lock-across-await``);
  the pump threads of the fleet layer make that a real interleaving
  here, not a theoretical one.

The first three rules consume the whole-tree project analysis
(:class:`~repro.lint.summaries.ProjectAnalysis`) and stay silent when it
is absent (``--select`` runs without an interprocedural rule active).
``task-leak`` is a per-function CFG dataflow pass in the style of
``resource-leak`` and needs no project.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.callgraph import FunctionFacts, ModuleFacts, Resolution
from repro.lint.cfg import CFG, Element
from repro.lint.context import FileContext
from repro.lint.dataflow import Analysis, element_defs_uses, file_cfgs, solve
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule, dotted_name
from repro.lint.summaries import ProjectAnalysis, blocking_reason

__all__ = [
    "BlockingInAsyncRule",
    "UnawaitedCoroutineRule",
    "LockAcrossAwaitRule",
    "TaskLeakRule",
    "RULES",
]

#: Synchronous lock types that must never be held across an ``await``.
#: Their asyncio namesakes are the fix, so the module root matters.
_SYNC_LOCK_TYPES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Callables whose result is a live task the caller now owns.
_SPAWNERS = frozenset({"create_task", "ensure_future"})


def _project_functions(
    ctx: FileContext,
) -> Iterator[
    tuple[ProjectAnalysis, ModuleFacts, FunctionFacts, str, list[Resolution]]
]:
    """This file's functions with their per-call resolutions, if any."""
    project = ctx.project
    if project is None or ctx.module_parts is None:
        return
    mod = project.module_of(ctx.module_parts)
    if mod is None:
        return
    for fn in mod.functions.values():
        full = f"{mod.dotted}.{fn.qualname}"
        yield project, mod, fn, full, project.project.resolved_calls(full)


def _short(target: str) -> str:
    """Readable spelling of a resolved target (``Cls.method`` or ``fn``)."""
    parts = target.split(".")
    if len(parts) >= 2 and parts[-2][:1].isupper():
        return ".".join(parts[-2:])
    return parts[-1]


class BlockingInAsyncRule(LintRule):
    """No blocking primitives on the event loop — directly or via helpers."""

    name = "blocking-in-async"
    summary = (
        "async functions must not call blocking primitives (time.sleep, sync "
        "IO, Thread.join) or sync helpers that transitively reach one"
    )
    requires_project = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for project, mod, fn, full, resolved in _project_functions(ctx):
            if not fn.is_async:
                continue
            for fact, res in zip(fn.calls, resolved):
                primitive = blocking_reason(res)
                if primitive is not None:
                    yield Diagnostic(
                        path=ctx.path,
                        line=fact.line,
                        col=fact.col,
                        rule=self.name,
                        message=(
                            f"blocking call {primitive}() inside async "
                            f"{fn.qualname}; every session on the event loop "
                            "stalls for its duration — hand it to a thread "
                            "(loop.run_in_executor / asyncio.to_thread) or use "
                            "the async equivalent"
                        ),
                    )
                    continue
                if res.category != "internal" or res.target is None:
                    continue
                callee = project.summary(res.target)
                if callee is None or callee.is_async or not callee.may_block:
                    # Async callees that block are convicted at their own
                    # call sites; flagging them here would double-report.
                    continue
                yield Diagnostic(
                    path=ctx.path,
                    line=fact.line,
                    col=fact.col,
                    rule=self.name,
                    message=(
                        f"call to {_short(res.target)}() from async "
                        f"{fn.qualname} blocks the event loop: it reaches "
                        f"{callee.block_primitive}() at {callee.block_site}; "
                        "run it in an executor or make the chain async"
                    ),
                )


class UnawaitedCoroutineRule(LintRule):
    """Calling a coroutine function without awaiting it does nothing."""

    name = "unawaited-coroutine"
    summary = (
        "a coroutine created and immediately discarded never runs; await it "
        "or schedule it with create_task and keep the handle"
    )
    requires_project = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for project, mod, fn, full, resolved in _project_functions(ctx):
            for fact, res in zip(fn.calls, resolved):
                if not fact.discarded or fact.awaited:
                    continue
                if res.category != "internal" or res.target is None:
                    continue
                callee = project.summary(res.target)
                if callee is None or not callee.is_async:
                    continue
                yield Diagnostic(
                    path=ctx.path,
                    line=fact.line,
                    col=fact.col,
                    rule=self.name,
                    message=(
                        f"{_short(res.target)}() is a coroutine function; "
                        "calling it only builds the coroutine object, which is "
                        "dropped here without ever running — await it, or "
                        "schedule it with asyncio.create_task(...) and keep "
                        "the handle"
                    ),
                )


class LockAcrossAwaitRule(LintRule):
    """Sync threading locks must not be held across an ``await``."""

    name = "lock-across-await"
    summary = (
        "holding a threading.Lock/Condition across an await parks the whole "
        "event loop behind other threads; use asyncio.Lock or release first"
    )
    requires_project = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for project, mod, fn, full, resolved in _project_functions(ctx):
            for hold in fn.lock_holds:
                lock_type = self._sync_lock_type(mod, fn, hold.parts)
                if lock_type is None:
                    continue
                spelled = ".".join(hold.parts)
                yield Diagnostic(
                    path=ctx.path,
                    line=hold.line,
                    col=hold.col,
                    rule=self.name,
                    message=(
                        f"sync {lock_type} {spelled!r} is held across an "
                        f"await in {fn.qualname}; if another thread holds it, "
                        "the entire event loop parks — use asyncio.Lock, or "
                        "release before awaiting"
                    ),
                )

    @staticmethod
    def _sync_lock_type(
        mod: ModuleFacts, fn: FunctionFacts, parts: tuple[str, ...]
    ) -> str | None:
        """Canonical sync-lock type of the held object, or None (benign)."""
        spelling: str | None = None
        if len(parts) == 1:
            spelling = fn.local_types.get(parts[0])
        elif len(parts) == 2 and parts[0] in ("self", "cls") and fn.class_name:
            cls = mod.classes.get(fn.class_name)
            if cls is not None:
                spelling = cls.attr_types.get(parts[1])
        if spelling is None:
            return None
        head, _, rest = spelling.partition(".")
        origin = mod.imports.get(head, head)
        dotted = f"{origin}.{rest}" if rest else origin
        return dotted if dotted in _SYNC_LOCK_TYPES else None


def _spawn_call(value: ast.expr) -> bool:
    """True when ``value`` is a ``create_task``/``ensure_future`` call."""
    if not isinstance(value, ast.Call):
        return False
    dotted = dotted_name(value.func)
    return dotted is not None and dotted.split(".")[-1] in _SPAWNERS


def _task_roles(element: Element) -> tuple[frozenset[str], frozenset[str]]:
    """``(cancelled names, escaped names)`` for one CFG element.

    A task handle is *cancelled* when it is the receiver of ``.cancel()``.
    Receivers of other methods (``done()``, ``add_done_callback``) keep
    the obligation here; any other load — awaited, passed to ``gather``,
    stored, returned — hands the reference (and the strong ref asyncio
    itself does not keep) to someone else.
    """
    if not isinstance(element, ast.AST):
        return frozenset(), frozenset()  # synthetic Bind wrappers
    cancelled: set[str] = set()
    receiver_only: set[str] = set()
    receivers: dict[int, str] = {}
    for node in ast.walk(element):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            receivers[id(node.func.value)] = node.func.attr
    for node in ast.walk(element):
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        method = receivers.get(id(node))
        if method is None:
            continue
        if method == "cancel":
            cancelled.add(node.id)
        else:
            receiver_only.add(node.id)
    _, uses = element_defs_uses(element)
    escaped = frozenset(uses - cancelled - receiver_only)
    return frozenset(cancelled), escaped


class _LiveTasks(Analysis["frozenset[tuple[str, int]]"]):
    """May-be-dangling task handles, as ``(name, spawn line)`` pairs."""

    forward = True

    def boundary(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def join(
        self, a: frozenset[tuple[str, int]], b: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        return a | b

    def transfer(
        self, element: Element, state: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        if not state and not isinstance(element, (ast.Assign, ast.AnnAssign)):
            return state
        cancelled, escaped = _task_roles(element)
        dropped = cancelled | escaped
        defs, _ = element_defs_uses(element)
        if dropped or defs:
            state = frozenset(
                pair
                for pair in state
                if pair[0] not in dropped and pair[0] not in defs
            )
        if isinstance(element, (ast.Assign, ast.AnnAssign)):
            target = (
                element.targets[0]
                if isinstance(element, ast.Assign) and len(element.targets) == 1
                else element.target
                if isinstance(element, ast.AnnAssign)
                else None
            )
            value = element.value
            if (
                isinstance(target, ast.Name)
                and value is not None
                and _spawn_call(value)
            ):
                state = state | frozenset(((target.id, int(value.lineno)),))
        return state


class TaskLeakRule(LintRule):
    """Every spawned task must be awaited, cancelled, or stored somewhere."""

    name = "task-leak"
    summary = (
        "create_task/ensure_future results must be awaited, cancelled, or "
        "stored on every CFG path — asyncio keeps only a weak reference"
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        # A spawn whose result is dropped on the spot is the direct form.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Expr) and _spawn_call(node.value):
                yield self.diagnostic(
                    ctx,
                    node.value,
                    "task spawned and immediately dropped; asyncio keeps only "
                    "a weak reference, so it can be garbage-collected before "
                    "it finishes — keep the handle and await or cancel it",
                )
        for cfg in file_cfgs(ctx):
            if cfg.uses_dynamic_locals:
                continue
            solution = solve(cfg, _LiveTasks())
            leaked = solution.inputs[cfg.exit]
            for name, line in sorted(leaked, key=lambda pair: (pair[1], pair[0])):
                yield Diagnostic(
                    path=ctx.path,
                    line=line,
                    col=0,
                    rule=self.name,
                    message=(
                        f"task {name!r} spawned in {cfg.qualname} may reach "
                        "function exit without being awaited, cancelled, or "
                        "handed off; an unreferenced task can be "
                        "garbage-collected mid-flight — await it, cancel it "
                        "in a finally, or store it on the owner"
                    ),
                )


RULES: tuple[LintRule, ...] = (
    BlockingInAsyncRule(),
    UnawaitedCoroutineRule(),
    LockAcrossAwaitRule(),
    TaskLeakRule(),
)

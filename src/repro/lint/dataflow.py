"""Generic worklist dataflow solver and reprolint's analysis instances.

The solver is direction-agnostic: an :class:`Analysis` supplies the
lattice (``initial``/``boundary``/``join``) and a per-element transfer
function; :func:`solve` iterates block states to a fixpoint over a
:class:`~repro.lint.cfg.CFG`. States are ordinary immutable-ish Python
values compared with ``==``; lattices are finite (sets of names or
definition sites), so termination is guaranteed — the iteration cap is a
tripwire for solver bugs, surfaced through ``Solution.converged`` and
asserted over the whole tree by the CFG self-check test.

Instances:

- :class:`ReachingDefinitions` — name → set of definition sites (element
  ids), strong updates on rebinding.
- :class:`Liveness` — backward may-use; closure-captured and
  global/nonlocal names are live at exit so dead-store rules never
  convict a value a nested function still reads.
- :class:`MovedNames` — forward tracking of ``# reprolint: moves(name)``
  ownership-transfer pragmas, cleared on rebinding.

Definition/use extraction (:func:`element_defs_uses`) handles every
element form the CFG emits, including walrus targets inside header
expressions. Loads inside nested scopes (lambdas, comprehensions, inner
functions) count as uses at the containing element — an over-approximation
that keeps liveness sound for closures.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Generic, TypeVar, cast

from repro.lint.cfg import (
    CFG,
    ArgsBind,
    Element,
    ExceptBind,
    FunctionLike,
    LoopTargetBind,
    MatchBind,
    WithBind,
    build_cfg,
    iter_functions,
)
from repro.lint.context import FileContext

__all__ = [
    "Analysis",
    "Liveness",
    "MovedNames",
    "ReachingDefinitions",
    "Solution",
    "element_defs_uses",
    "file_cfgs",
    "liveness_of",
    "reaching_of",
    "solve",
]

S = TypeVar("S")


# ------------------------------------------------------------- defs and uses
def _loads(node: ast.AST | None) -> list[str]:
    if node is None:
        return []
    return [
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    ]


def _walrus_defs(node: ast.AST | None) -> list[str]:
    if node is None:
        return []
    return [
        n.target.id
        for n in ast.walk(node)
        if isinstance(n, ast.NamedExpr) and isinstance(n.target, ast.Name)
    ]


def _target_names(node: ast.expr) -> list[str]:
    """Plain names bound by an assignment/loop/with target."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in node.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(node, ast.Starred):
        return _target_names(node.value)
    return []  # attribute/subscript targets bind no local name


def _arg_names(fn: FunctionLike) -> list[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _pattern_captures(pattern: ast.pattern) -> list[str]:
    names: list[str] = []
    for node in ast.walk(pattern):
        if isinstance(node, (ast.MatchAs, ast.MatchStar)) and node.name is not None:
            names.append(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest is not None:
            names.append(node.rest)
    return names


def element_defs_uses(element: Element) -> tuple[frozenset[str], frozenset[str]]:
    """``(defined names, used names)`` of one CFG element."""
    defs: list[str] = []
    uses: list[str] = []
    if isinstance(element, ArgsBind):
        defs = _arg_names(element.fn)
    elif isinstance(element, LoopTargetBind):
        defs = _target_names(element.loop.target) + _walrus_defs(element.loop.target)
        uses = _loads(element.loop.target)
    elif isinstance(element, WithBind):
        if element.item.optional_vars is not None:
            defs = _target_names(element.item.optional_vars)
            uses = _loads(element.item.optional_vars)
    elif isinstance(element, ExceptBind):
        if element.handler.name is not None:
            defs = [element.handler.name]
        uses = _loads(element.handler.type)
    elif isinstance(element, MatchBind):
        defs = _pattern_captures(element.case.pattern)
        uses = [
            name
            for node in ast.walk(element.case.pattern)
            if isinstance(node, (ast.MatchValue, ast.MatchClass))
            for name in _loads(node.value if isinstance(node, ast.MatchValue) else node.cls)
        ]
    elif isinstance(element, ast.Assign):
        for target in element.targets:
            defs.extend(_target_names(target))
            uses.extend(_loads(target))
        defs.extend(_walrus_defs(element.value))
        uses.extend(_loads(element.value))
    elif isinstance(element, ast.AugAssign):
        if isinstance(element.target, ast.Name):
            defs = [element.target.id]
            uses.append(element.target.id)
        uses.extend(_loads(element.target))
        uses.extend(_loads(element.value))
        defs.extend(_walrus_defs(element.value))
    elif isinstance(element, ast.AnnAssign):
        if element.value is not None and isinstance(element.target, ast.Name):
            defs = [element.target.id]
        uses = _loads(element.value) + _loads(element.target) + _loads(element.annotation)
        defs.extend(_walrus_defs(element.value))
    elif isinstance(element, ast.Delete):
        for target in element.targets:
            defs.extend(_target_names(target))
            uses.extend(_loads(target))
    elif isinstance(element, ast.Import):
        defs = [alias.asname if alias.asname else alias.name.split(".")[0] for alias in element.names]
    elif isinstance(element, ast.ImportFrom):
        defs = [alias.asname if alias.asname else alias.name for alias in element.names]
    elif isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        defs = [element.name]
        uses = _loads(element)
    elif isinstance(element, ast.Return):
        uses = _loads(element.value)
        defs = _walrus_defs(element.value)
    elif isinstance(element, ast.Raise):
        uses = _loads(element.exc) + _loads(element.cause)
    elif isinstance(element, ast.Assert):
        uses = _loads(element.test) + _loads(element.msg)
        defs = _walrus_defs(element.test)
    elif isinstance(element, ast.Expr):
        uses = _loads(element.value)
        defs = _walrus_defs(element.value)
    elif isinstance(element, ast.expr):
        uses = _loads(element)
        defs = _walrus_defs(element)
    elif isinstance(element, (ast.Global, ast.Nonlocal, ast.Pass, ast.Break, ast.Continue)):
        pass
    else:
        # Unknown statement forms (tracked in CFG.unsupported): loads only.
        uses = _loads(element)
    return frozenset(defs), frozenset(uses)


# ------------------------------------------------------------------- solver
class Analysis(Generic[S]):
    """A dataflow problem: lattice operations plus the transfer function."""

    #: Forward analyses propagate entry→exit; backward ones exit→entry.
    forward: bool = True

    def boundary(self, cfg: CFG) -> S:
        """State at the start block (entry for forward, exit for backward)."""
        raise NotImplementedError

    def initial(self, cfg: CFG) -> S:
        """Bottom state every other block starts the iteration from."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states (confluence)."""
        raise NotImplementedError

    def transfer(self, element: Element, state: S) -> S:
        """State after ``element`` (direction-relative)."""
        raise NotImplementedError


@dataclass
class Solution(Generic[S]):
    """Fixpoint states per block, plus convergence bookkeeping."""

    cfg: CFG
    analysis: Analysis[S]
    #: Direction-relative input state per block (after joining neighbours).
    inputs: list[S]
    #: Direction-relative output state per block (after all transfers).
    outputs: list[S]
    #: Block transfers performed before the fixpoint (or the cap) was hit.
    steps: int
    #: False only if the iteration cap tripped — a solver bug, not a
    #: property of well-formed input (lattices here are finite).
    converged: bool

    def element_states(self, block_index: int) -> list[S]:
        """The state each element of the block observes, in source order.

        For a forward analysis this is the state flowing *into* each
        element; for a backward one, the state flowing back into it from
        what executes after it (e.g. liveness *after* a store).
        """
        block = self.cfg.blocks[block_index]
        state = self.inputs[block_index]
        elements = block.elements if self.analysis.forward else list(reversed(block.elements))
        states: list[S] = []
        for element in elements:
            states.append(state)
            state = self.analysis.transfer(element, state)
        if not self.analysis.forward:
            states.reverse()
        return states


def _rpo(cfg: CFG, forward: bool) -> list[int]:
    """Reverse postorder from the direction's start block; stragglers last."""
    start = cfg.entry if forward else cfg.exit
    succ_of = (
        (lambda b: [e.dst for e in cfg.blocks[b].succ])
        if forward
        else (lambda b: [e.src for e in cfg.blocks[b].pred])
    )
    seen: set[int] = set()
    post: list[int] = []

    def visit(root: int) -> None:
        stack: list[tuple[int, int]] = [(root, 0)]
        seen.add(root)
        while stack:
            block, cursor = stack[-1]
            succs = succ_of(block)
            if cursor < len(succs):
                stack[-1] = (block, cursor + 1)
                nxt = succs[cursor]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                post.append(block)
                stack.pop()

    visit(start)
    order = list(reversed(post))
    order.extend(b.index for b in cfg.blocks if b.index not in seen)
    return order


def solve(cfg: CFG, analysis: Analysis[S], max_steps: int | None = None) -> Solution[S]:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint."""
    n_blocks = len(cfg.blocks)
    cap = max_steps if max_steps is not None else 64 * n_blocks + 256
    forward = analysis.forward
    start = cfg.entry if forward else cfg.exit

    def preds(block: int) -> list[int]:
        edges = cfg.blocks[block].pred if forward else cfg.blocks[block].succ
        return [e.src if forward else e.dst for e in edges]

    def succs(block: int) -> list[int]:
        edges = cfg.blocks[block].succ if forward else cfg.blocks[block].pred
        return [e.dst if forward else e.src for e in edges]

    inputs: list[S] = [analysis.initial(cfg) for _ in range(n_blocks)]
    outputs: list[S] = [analysis.initial(cfg) for _ in range(n_blocks)]
    order = _rpo(cfg, forward)
    worklist: deque[int] = deque(order)
    queued = set(worklist)
    steps = 0
    converged = True
    while worklist:
        if steps >= cap:
            converged = False
            break
        block = worklist.popleft()
        queued.discard(block)
        steps += 1
        state = analysis.boundary(cfg) if block == start else analysis.initial(cfg)
        for pred in preds(block):
            state = analysis.join(state, outputs[pred])
        inputs[block] = state
        elements = cfg.blocks[block].elements
        for element in elements if forward else reversed(elements):
            state = analysis.transfer(element, state)
        if state != outputs[block]:
            outputs[block] = state
            for nxt in succs(block):
                if nxt not in queued:
                    worklist.append(nxt)
                    queued.add(nxt)
    return Solution(cfg, analysis, inputs, outputs, steps, converged)


# ---------------------------------------------------------------- instances
class ReachingDefinitions(Analysis["dict[str, frozenset[int]]"]):
    """Which definition sites may have produced each name's current value.

    Sites are dense element ids assigned per CFG (see :meth:`site_of`);
    rebinding a name is a strong update (the new site replaces all prior
    ones along that path).
    """

    forward = True

    def __init__(self, cfg: CFG) -> None:
        self._site_ids: dict[int, int] = {}
        self._site_elements: list[Element] = []
        for block in cfg.blocks:
            for element in block.elements:
                self._site_ids[id(element)] = len(self._site_elements)
                self._site_elements.append(element)

    def site_of(self, element: Element) -> int:
        """Dense definition-site id of an element."""
        return self._site_ids[id(element)]

    def element_at(self, site: int) -> Element:
        """Inverse of :meth:`site_of`."""
        return self._site_elements[site]

    def boundary(self, cfg: CFG) -> dict[str, frozenset[int]]:
        return {}

    def initial(self, cfg: CFG) -> dict[str, frozenset[int]]:
        return {}

    def join(
        self, a: dict[str, frozenset[int]], b: dict[str, frozenset[int]]
    ) -> dict[str, frozenset[int]]:
        if not a:
            return b
        if not b:
            return a
        merged = dict(a)
        for name, sites in b.items():
            existing = merged.get(name)
            merged[name] = sites if existing is None else existing | sites
        return merged

    def transfer(
        self, element: Element, state: dict[str, frozenset[int]]
    ) -> dict[str, frozenset[int]]:
        defs, _ = element_defs_uses(element)
        if not defs:
            return state
        site = frozenset((self.site_of(element),))
        new = dict(state)
        for name in defs:
            new[name] = site
        return new


class Liveness(Analysis[frozenset[str]]):
    """Backward may-use: names whose current value may still be read.

    Closure-captured and ``global``/``nonlocal`` names are live at exit —
    a nested function may read them after the last visible use.
    """

    forward = False

    def boundary(self, cfg: CFG) -> frozenset[str]:
        return cfg.closure_names | cfg.global_names

    def initial(self, cfg: CFG) -> frozenset[str]:
        return frozenset()

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a | b

    def transfer(self, element: Element, state: frozenset[str]) -> frozenset[str]:
        defs, uses = element_defs_uses(element)
        if not defs and not uses:
            return state
        return (state - defs) | uses


class MovedNames(Analysis[frozenset[tuple[str, int]]]):
    """Names whose ownership a ``moves(...)`` pragma transferred away.

    The state holds ``(name, pragma line)`` pairs; rebinding the name
    clears it (a fresh value is owned again). Built per file from the
    pragma map — the rule layer reports any *use* of a moved name.
    """

    forward = True

    def __init__(self, moves_by_line: dict[int, tuple[str, ...]]) -> None:
        self._moves_by_line = moves_by_line

    def boundary(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset[tuple[str, int]]:
        return frozenset()

    def join(
        self, a: frozenset[tuple[str, int]], b: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        return a | b

    def transfer(
        self, element: Element, state: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        defs, _ = element_defs_uses(element)
        if defs:
            state = frozenset(pair for pair in state if pair[0] not in defs)
        line = getattr(element, "lineno", None)
        if line is not None:
            moved = self._moves_by_line.get(int(line))
            if moved:
                state = state | frozenset((name, int(line)) for name in moved)
        return state


# ----------------------------------------------------- per-file shared cache
def file_cfgs(ctx: FileContext) -> list[CFG]:
    """CFGs of every function in the file, built once and shared by rules."""
    cached = ctx.analysis_cache.get("cfgs")
    if cached is None:
        cached = [build_cfg(fn, qualname) for qualname, fn in iter_functions(ctx.tree)]
        ctx.analysis_cache["cfgs"] = cached
    return cast("list[CFG]", cached)


def reaching_of(ctx: FileContext, cfg: CFG) -> tuple[ReachingDefinitions, "Solution[dict[str, frozenset[int]]]"]:
    """Cached reaching-definitions solution for one function."""
    key = f"reaching:{id(cfg)}"
    cached = ctx.analysis_cache.get(key)
    if cached is None:
        analysis = ReachingDefinitions(cfg)
        cached = (analysis, solve(cfg, analysis))
        ctx.analysis_cache[key] = cached
    return cast(
        "tuple[ReachingDefinitions, Solution[dict[str, frozenset[int]]]]", cached
    )


def liveness_of(ctx: FileContext, cfg: CFG) -> "Solution[frozenset[str]]":
    """Cached liveness solution for one function."""
    key = f"liveness:{id(cfg)}"
    cached = ctx.analysis_cache.get(key)
    if cached is None:
        cached = solve(cfg, Liveness())
        ctx.analysis_cache[key] = cached
    return cast("Solution[frozenset[str]]", cached)

"""Inline ``# reprolint:`` pragma parsing.

Three pragma forms, all attached to the physical line they appear on:

``# reprolint: disable=rule-a,rule-b``
    Suppress the named rules (or ``all``) for findings anchored to this
    line.

``# reprolint: guarded-by(_lock)``
    Lock-discipline intent: the access (or, on a ``def`` line, every
    access in the method; or, on an ``__init__`` assignment, the
    attribute itself) is protected by ``self._lock`` even though no
    ``with`` block is syntactically visible here.

``# reprolint: unguarded-ok``
    Lock-discipline intent: this access (or attribute, when placed on
    its ``__init__`` assignment) is deliberately unsynchronised —
    e.g. it is only ever touched before worker threads exist.

``# reprolint: moves(name[,name...])``
    Ownership-transfer intent: the statement on this line hands the
    named local values to a consumer that now owns them (e.g. a session
    registered with a scheduler that will close it). The dataflow rules
    stop requiring release on this path and instead flag any *later*
    use of a moved name (``use-after-move``) until it is rebound.

``# reprolint: hotpath``
    Placed on a ``def`` line: the function is on the per-frame hot path
    and must not allocate per call — the ``hotpath-alloc`` rule flags
    ``np.zeros`` / ``np.empty`` / ``np.concatenate`` inside it, and the
    ``hotpath-copy`` rule flags implicit copies (``astype``, fancy
    indexing, ``asarray`` on a strided view).

``# reprolint: shape(name=(S,T,R),dtype=complex128)``
    Array contract, placed on a ``def`` line (one pragma per name; the
    token must contain no spaces). Declares the shape and optionally
    the dtype of the named parameter — or of the result, when the name
    is ``return``. Dims are symbolic names (``S``, ``n_bins``), integer
    literals, or ``?`` (unknown). The shape/dtype rule family checks
    call sites against these contracts and propagates them through
    helpers; the same contracts can be written as a docstring
    ``Shape:`` block instead (see :mod:`repro.lint.arrayflow`).

``# reprolint: alias-safe``
    Placed on a ``def`` line: the kernel is documented to produce
    correct results when its ``out=`` buffer aliases an input array.
    The ``out-aliasing`` rule trusts the declaration and stays silent
    at call sites that alias.

Pragmas are parsed from real COMMENT tokens via :mod:`tokenize`, so a
``# reprolint:`` inside a string literal is never misread as a pragma.
Unrecognised pragma bodies are returned as errors and surfaced by the
engine as ``bad-pragma`` findings — a typo in a suppression must not
silently re-enable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["LinePragmas", "PragmaError", "ShapeContract", "scan_pragmas"]

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>.*\S)\s*$")
_GUARDED_RE = re.compile(r"guarded-by\((?P<lock>[A-Za-z_][A-Za-z0-9_]*)\)$")
_MOVES_RE = re.compile(
    r"moves\((?P<names>[A-Za-z_][A-Za-z0-9_]*(?:,[A-Za-z_][A-Za-z0-9_]*)*)\)$"
)
_RULE_NAME_RE = re.compile(r"[a-z][a-z0-9-]*$")
_SHAPE_RE = re.compile(
    r"shape\((?P<name>[A-Za-z_][A-Za-z0-9_]*)="
    r"\((?P<dims>[A-Za-z0-9_?]*(?:,[A-Za-z0-9_?]+)*),?\)"
    r"(?:,dtype=(?P<dtype>[A-Za-z0-9_.]+))?\)$"
)
_DIM_RE = re.compile(r"(?:[A-Za-z_][A-Za-z0-9_]*|[0-9]+|\?)$")


@dataclass(frozen=True)
class ShapeContract:
    """One declared array contract: a parameter (or ``return``) spec."""

    name: str
    #: Symbolic dims (names, integer literals as strings, or "?"); an
    #: empty tuple declares a scalar.
    dims: tuple[str, ...]
    #: Normalised dtype spelling ("complex128", ...), "" when undeclared.
    dtype: str = ""


@dataclass(frozen=True)
class LinePragmas:
    """All reprolint directives found on one physical line."""

    disabled: frozenset[str] = frozenset()
    guarded_by: tuple[str, ...] = ()
    unguarded_ok: bool = False
    moves: tuple[str, ...] = ()
    hotpath: bool = False
    shapes: tuple[ShapeContract, ...] = ()
    alias_safe: bool = False

    def suppresses(self, rule: str) -> bool:
        """True when this line disables ``rule`` (or everything)."""
        return "all" in self.disabled or rule in self.disabled


@dataclass(frozen=True)
class PragmaError:
    """An unparseable pragma body, reported as a ``bad-pragma`` finding."""

    line: int
    col: int
    detail: str


@dataclass
class _Builder:
    disabled: set[str] = field(default_factory=set)
    guarded_by: list[str] = field(default_factory=list)
    unguarded_ok: bool = False
    moves: list[str] = field(default_factory=list)
    hotpath: bool = False
    shapes: list[ShapeContract] = field(default_factory=list)
    alias_safe: bool = False

    def freeze(self) -> LinePragmas:
        return LinePragmas(
            disabled=frozenset(self.disabled),
            guarded_by=tuple(self.guarded_by),
            unguarded_ok=self.unguarded_ok,
            moves=tuple(self.moves),
            hotpath=self.hotpath,
            shapes=tuple(self.shapes),
            alias_safe=self.alias_safe,
        )


def _parse_body(
    body: str, line: int, col: int, builder: _Builder, errors: list[PragmaError]
) -> None:
    for token in body.split():
        if token.startswith("disable="):
            names = [name for name in token[len("disable=") :].split(",") if name]
            bad = [name for name in names if not _RULE_NAME_RE.fullmatch(name)]
            if not names or bad:
                errors.append(
                    PragmaError(line, col, f"malformed disable= pragma: {token!r}")
                )
                continue
            builder.disabled.update(names)
        elif token == "unguarded-ok":
            builder.unguarded_ok = True
        elif token == "hotpath":
            builder.hotpath = True
        elif token == "alias-safe":
            builder.alias_safe = True
        elif token.startswith("shape"):
            match = _SHAPE_RE.fullmatch(token)
            dims = (
                tuple(d for d in match.group("dims").split(",") if d)
                if match is not None
                else ()
            )
            if match is None or not all(_DIM_RE.fullmatch(d) for d in dims):
                errors.append(
                    PragmaError(line, col, f"malformed shape pragma: {token!r}")
                )
                continue
            builder.shapes.append(
                ShapeContract(
                    name=match.group("name"),
                    dims=dims,
                    dtype=match.group("dtype") or "",
                )
            )
        elif token.startswith("guarded-by"):
            match = _GUARDED_RE.fullmatch(token)
            if match is None:
                errors.append(
                    PragmaError(line, col, f"malformed guarded-by pragma: {token!r}")
                )
                continue
            builder.guarded_by.append(match.group("lock"))
        elif token.startswith("moves"):
            match = _MOVES_RE.fullmatch(token)
            if match is None:
                errors.append(
                    PragmaError(line, col, f"malformed moves pragma: {token!r}")
                )
                continue
            builder.moves.extend(match.group("names").split(","))
        else:
            errors.append(
                PragmaError(line, col, f"unknown reprolint pragma: {token!r}")
            )


def scan_pragmas(source: str) -> tuple[dict[int, LinePragmas], list[PragmaError]]:
    """Extract every pragma from ``source``, keyed by 1-based line number."""
    builders: dict[int, _Builder] = {}
    errors: list[PragmaError] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The AST parse will report the underlying problem; pragmas in a
        # file that cannot even tokenize are moot.
        return {}, []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        builder = builders.setdefault(line, _Builder())
        _parse_body(match.group("body"), line, col, builder, errors)
    return {line: b.freeze() for line, b in builders.items()}, errors

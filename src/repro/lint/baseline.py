"""Baseline file: acknowledged findings that don't fail the build.

A baseline lets the lint gate turn on before every legacy finding is
fixed: known findings are recorded (by position-independent
fingerprint, with a count) and subtracted from each run. New findings
still fail; fixed findings surface as *stale* entries so the baseline
shrinks monotonically instead of fossilising.

Format (JSON, committed at the repo root)::

    {"version": 1,
     "entries": {"src/repro/x.py::rule::message": 2, ...}}
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.diagnostics import Diagnostic

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".reprolint.json"
_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint → acknowledged occurrence count."""

    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a reprolint baseline file")
        version = payload.get("version")
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported baseline version {version!r}")
        entries = payload["entries"]
        if not isinstance(entries, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in entries.items()
        ):
            raise ValueError(f"{path}: malformed baseline entries")
        return cls(entries=dict(entries))

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        """A baseline acknowledging exactly the given findings."""
        return cls(entries=dict(Counter(d.fingerprint() for d in diagnostics)))

    def save(self, path: Path) -> None:
        """Write the baseline (sorted keys: diff-friendly)."""
        payload = {"version": _VERSION, "entries": dict(sorted(self.entries.items()))}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def partition(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], int, list[str]]:
        """Split findings into (new, baselined_count, stale_fingerprints).

        Each baseline entry absorbs up to its count of matching
        findings; the remainder is new. Entries that matched nothing
        are stale — the finding was fixed and the entry should go.
        """
        budget = dict(self.entries)
        fresh: list[Diagnostic] = []
        absorbed = 0
        for diag in diagnostics:
            key = diag.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                absorbed += 1
            else:
                fresh.append(diag)
        stale = sorted(key for key, count in budget.items() if count > 0)
        return fresh, absorbed, stale

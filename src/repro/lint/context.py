"""Per-file context handed to every rule.

The context bundles the parsed AST with everything rules keep asking
for: raw source lines, the pragma map, and the file's position inside
the ``repro`` package (which decides rule scope — e.g. the determinism
rules only police the pure simulation packages).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.lint.suppress import LinePragmas

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.summaries import ProjectAnalysis

__all__ = ["FileContext", "module_parts_of"]


def module_parts_of(path_parts: tuple[str, ...]) -> tuple[str, ...] | None:
    """Module path relative to the ``repro`` package, or None if outside.

    ``("src", "repro", "sim", "trace.py")`` → ``("sim", "trace")``. The
    *last* ``repro`` component wins so fixture trees that nest a fake
    ``repro/`` package under a temp directory scope exactly like the
    real tree.
    """
    try:
        anchor = len(path_parts) - 1 - path_parts[::-1].index("repro")
    except ValueError:
        return None
    rel = path_parts[anchor + 1 :]
    if not rel:
        return None
    leaf = rel[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    return rel[:-1] + (leaf,)


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    source: str
    tree: ast.Module
    pragmas: dict[int, LinePragmas]
    module_parts: tuple[str, ...] | None
    #: Scratch space shared by the rules run over this file — the dataflow
    #: layer memoises CFGs and solver solutions here so each function is
    #: analysed once per file, not once per rule.
    analysis_cache: dict[str, Any] = field(default_factory=dict)
    #: Whole-tree interprocedural view (call graph + function summaries);
    #: None when no active rule asked for it. Rules must degrade to their
    #: intra-procedural behaviour when absent.
    project: "ProjectAnalysis | None" = None

    def pragma(self, line: int) -> LinePragmas | None:
        """Pragmas on a physical line (None when the line has none)."""
        return self.pragmas.get(line)

    def in_package(self, *packages: str) -> bool:
        """True when the file lives under one of the named repro subpackages."""
        return self.module_parts is not None and self.module_parts[0] in packages

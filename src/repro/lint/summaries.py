"""Bottom-up interprocedural function summaries.

On top of the :mod:`~repro.lint.callgraph` facts, this module computes
one :class:`FunctionSummary` per function in the tree:

- **may_block** — the function transitively reaches a blocking
  primitive (``time.sleep``, ``subprocess``, synchronous file/``Path``
  IO, ``Thread.join``, ``Event``/``Condition`` waits). Propagated
  bottom-up over the call graph's SCCs, so a coroutine three helpers
  away from an ``open()`` is convicted with the leaf site named.
  Function *references* passed to ``run_in_executor``/``to_thread`` are
  not calls, so executor hand-offs never taint the caller.
- **escapes / consumes** — which parameters a function stores away vs
  releases (``close``/``join``/...), with argument hand-offs resolved
  through callee summaries to a fixpoint. The resource-lifecycle rule
  uses these to follow a handle through helper calls instead of giving
  up at the first call site.
- **returns_owned** — the function hands its caller a tracked resource
  (directly, via a typed local, or through a helper that does), so the
  caller inherits the release obligation.
- **awaits** — the body contains an ``await`` (used to separate "sync
  helper called from a coroutine" findings from direct ones).

Caching: warm runs must stay close to the intra-procedural engine, so
everything expensive is memoised in one JSON file under the result
cache directory (:class:`SummaryStore`): per-file facts keyed by
content hash (unchanged files are never re-parsed), and the fully
propagated summaries keyed by a whole-tree key (an unchanged tree skips
resolution and propagation entirely). :func:`digest_of` gives the
deterministic digest the engine folds into per-file result-cache keys —
editing a callee's behaviour re-lints its callers, while a pure
comment edit re-lints only the edited file.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence, Union

from repro.lint.callgraph import (
    CALLGRAPH_VERSION,
    CallFact,
    FunctionFacts,
    ModuleFacts,
    Project,
    Resolution,
    call_fact_of,
    extract_module_facts,
)
from repro.lint.provenance import TRACKED_KINDS, kind_of_dotted

__all__ = [
    "SUMMARIES_VERSION",
    "FunctionSummary",
    "ProjectAnalysis",
    "blocking_reason",
    "compute_summaries",
    "digest_of",
    "load_project",
]

#: Bump when summary semantics change; invalidates the persisted store.
#: 2: array-contract domain (array_params, returns_array, alias_safe,
#: hotpath) propagated through SCCs.
SUMMARIES_VERSION = "2"

_STORE_NAME = "summaries.json"
_FACTS_NAME = "facts.json"

# ------------------------------------------------------- blocking primitives
#: Dotted externals that block the calling thread outright.
_BLOCKING_EXTERNAL = frozenset(
    {
        "open",
        "time.sleep",
        "os.system",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "urllib.request.urlopen",
    }
)

#: Methods on an ``open()``-typed receiver that hit the filesystem.
_FILE_METHODS = frozenset(
    {"read", "read1", "readline", "readlines", "write", "writelines", "flush",
     "seek", "truncate", "close"}
)

#: ``pathlib.Path`` methods that hit the filesystem.
_PATH_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes", "mkdir", "unlink",
     "rmdir", "touch", "rename", "replace", "symlink_to", "hardlink_to"}
)

#: ``threading`` receiver methods that park the calling thread. ``acquire``
#: / ``with lock`` are deliberately excluded — short critical sections are
#: this codebase's design, and lock-across-await polices the async side.
_THREADING_WAIT_METHODS = frozenset({"join", "wait", "wait_for"})


def blocking_reason(resolution: Resolution) -> str | None:
    """Blocking-primitive spelling for an external resolution, or None."""
    if resolution.category != "external" or resolution.target is None:
        return None
    target = resolution.target
    if target in _BLOCKING_EXTERNAL:
        return target
    parts = target.split(".")
    method = parts[-1]
    if parts[0] == "file" and method in _FILE_METHODS:
        return f"file.{method}"
    if parts[0] == "pathlib" and method in _PATH_METHODS:
        return f"Path.{method}"
    if parts[0] == "threading" and method in _THREADING_WAIT_METHODS:
        return target
    return None


# ------------------------------------------------------------------ summaries
@dataclass(frozen=True)
class FunctionSummary:
    """One function's interprocedural facts, fully propagated."""

    qualname: str
    is_async: bool
    may_block: bool
    #: The leaf primitive reached ("time.sleep"), "" when not blocking.
    block_primitive: str
    #: ``module:line`` of the leaf primitive call site.
    block_site: str
    awaits: bool
    escapes: frozenset[str]
    consumes: frozenset[str]
    #: Tracked resource kind handed to the caller, "" when none.
    returns_owned: str
    #: Sync locks held across an ``await`` (dotted spellings).
    locks_across_await: tuple[str, ...]
    #: Array contracts per parameter — declared on this function or
    #: inherited from a callee the parameter is handed to verbatim:
    #: name → (dims or None, dtype). Dims are symbolic spellings.
    array_params: dict[str, tuple[tuple[str, ...] | None, str]] = field(
        default_factory=dict
    )
    #: Array type of the return value (declared ``return`` contract,
    #: locally inferred, or propagated from a returned callee).
    returns_array: tuple[tuple[str, ...] | None, str] | None = None
    #: The function is documented safe for ``out=`` aliasing an input.
    alias_safe: bool = False
    #: The function carries the ``hotpath`` def-line pragma.
    hotpath: bool = False
    #: Parameter contracts were declared in source (pragma/docstring),
    #: as opposed to only inherited — the census separates the two.
    declares_contracts: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "is_async": self.is_async,
            "may_block": self.may_block,
            "block_primitive": self.block_primitive,
            "block_site": self.block_site,
            "awaits": self.awaits,
            "escapes": sorted(self.escapes),
            "consumes": sorted(self.consumes),
            "returns_owned": self.returns_owned,
            "locks_across_await": list(self.locks_across_await),
            "array_params": {
                name: [None if dims is None else list(dims), dtype]
                for name, (dims, dtype) in sorted(self.array_params.items())
            },
            "returns_array": (
                None
                if self.returns_array is None
                else [
                    None
                    if self.returns_array[0] is None
                    else list(self.returns_array[0]),
                    self.returns_array[1],
                ]
            ),
            "alias_safe": self.alias_safe,
            "hotpath": self.hotpath,
            "declares_contracts": self.declares_contracts,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "FunctionSummary":
        return FunctionSummary(
            qualname=str(data["qualname"]),
            is_async=bool(data["is_async"]),
            may_block=bool(data["may_block"]),
            block_primitive=str(data["block_primitive"]),
            block_site=str(data["block_site"]),
            awaits=bool(data["awaits"]),
            escapes=frozenset(data["escapes"]),
            consumes=frozenset(data["consumes"]),
            returns_owned=str(data["returns_owned"]),
            locks_across_await=tuple(data["locks_across_await"]),
            array_params={
                str(name): _array_type_from_json(entry)
                for name, entry in data.get("array_params", {}).items()
            },
            returns_array=(
                _array_type_from_json(data["returns_array"])
                if data.get("returns_array") is not None
                else None
            ),
            alias_safe=bool(data.get("alias_safe", False)),
            hotpath=bool(data.get("hotpath", False)),
            declares_contracts=bool(data.get("declares_contracts", False)),
        )


def _array_type_from_json(
    entry: "list[Any]",
) -> tuple[tuple[str, ...] | None, str]:
    dims_raw, dtype_raw = entry
    dims = None if dims_raw is None else tuple(str(d) for d in dims_raw)
    return (dims, str(dtype_raw))


def _sanitize_array(
    array: tuple[tuple[str, ...] | None, str],
) -> tuple[tuple[str, ...] | None, str]:
    """Strip callee-scoped dim symbols before crossing a function boundary.

    A symbolic dim name (``N``) only means something inside the function
    that declared it; rank and literal dims survive the hop, names are
    demoted to ``?`` so two unrelated callees' symbols can never be
    forced equal at a caller's call site.
    """
    dims, dtype = array
    if dims is None:
        return array
    return (tuple(d if d.isdigit() else "?" for d in dims), dtype)


def _param_at(
    callee: FunctionFacts, slot: Union[int, str], bound: bool
) -> str | None:
    """Callee parameter a caller argument lands in, or None (unmappable)."""
    if isinstance(slot, str):
        return slot if slot in callee.params else None
    index = slot + (1 if bound else 0)
    if 0 <= index < len(callee.params):
        return callee.params[index]
    return None


def _owned_kind_of_resolution(resolution: Resolution) -> str | None:
    """Tracked kind minted when a resolved call constructs a resource."""
    target = resolution.target
    if target is None:
        return None
    if resolution.category == "internal-ctor":
        kind = kind_of_dotted(target)
    elif resolution.category == "internal" and target.endswith(".__init__"):
        kind = kind_of_dotted(target[: -len(".__init__")])
    elif resolution.category in ("external", "unseen"):
        kind = kind_of_dotted(target)
    else:
        return None
    return kind if kind in TRACKED_KINDS else None


def compute_summaries(project: Project) -> dict[str, FunctionSummary]:
    """Propagate local facts bottom-up into whole-tree summaries."""
    facts: dict[str, tuple[ModuleFacts, FunctionFacts]] = {}
    resolved: dict[str, list[Resolution]] = {}
    for full, mod, fn in project.functions():
        facts[full] = (mod, fn)
        resolved[full] = project.resolved_calls(full)

    # ---- seed local state
    block_primitive: dict[str, str] = {}
    block_site: dict[str, str] = {}
    escapes: dict[str, set[str]] = {}
    consumes: dict[str, set[str]] = {}
    returns_owned: dict[str, str] = {}
    array_params: dict[str, dict[str, tuple[tuple[str, ...] | None, str]]] = {}
    returns_array: dict[str, tuple[tuple[str, ...] | None, str]] = {}

    for full, (mod, fn) in facts.items():
        escapes[full] = set(fn.param_escapes_direct)
        consumes[full] = set(fn.param_consumes_direct)
        array_params[full] = {
            name: (dims, dtype)
            for name, (dims, dtype) in fn.array_contracts.items()
            if name != "return"
        }
        declared_return = fn.array_contracts.get("return")
        if declared_return is not None:
            returns_array[full] = (declared_return[0], declared_return[1])
        elif fn.returned_array is not None:
            returns_array[full] = fn.returned_array
        for fact, res in zip(fn.calls, resolved[full]):
            if full not in block_primitive:
                primitive = blocking_reason(res)
                if primitive is not None:
                    block_primitive[full] = primitive
                    block_site[full] = f"{mod.dotted}:{fact.line}"
        for param, call_index, _slot in fn.param_passes:
            if fn.calls[call_index].has_star_args:
                escapes[full].add(param)
        for name in fn.returned_names:
            spelling = fn.local_types.get(name)
            if spelling is not None:
                # "file" is the local-type spelling for open() handles.
                kind = "file" if spelling == "file" else kind_of_dotted(spelling)
                if kind in TRACKED_KINDS and kind is not None:
                    returns_owned.setdefault(full, kind)

    # ---- bottom-up fixpoint over SCCs
    for component in project.sccs():
        changed = True
        while changed:
            changed = False
            for full in component:
                mod, fn = facts[full]
                fn_resolved = resolved[full]
                if full not in block_primitive:
                    for fact, res in zip(fn.calls, fn_resolved):
                        if (
                            res.category == "internal"
                            and res.target in block_primitive
                        ):
                            block_primitive[full] = block_primitive[res.target]
                            block_site[full] = block_site[res.target]
                            changed = True
                            break
                for param, call_index, slot in fn.param_passes:
                    if param in escapes[full]:
                        continue
                    res = fn_resolved[call_index]
                    if res.category == "internal" and res.target in facts:
                        callee = facts[res.target][1]
                        landing = _param_at(callee, slot, res.bound_receiver)
                        if landing is None:
                            escapes[full].add(param)
                            changed = True
                        elif landing in escapes[res.target]:
                            escapes[full].add(param)
                            changed = True
                        elif (
                            landing in consumes[res.target]
                            and param not in consumes[full]
                        ):
                            consumes[full].add(param)
                            changed = True
                    else:
                        # internal-ctor / external / dynamic / unseen /
                        # unresolved: the reference leaves our sight.
                        escapes[full].add(param)
                        changed = True
                if full not in returns_owned:
                    for call_index in fn.returned_calls:
                        res = fn_resolved[call_index]
                        kind = _owned_kind_of_resolution(res)
                        if kind is None and res.category == "internal":
                            kind = returns_owned.get(res.target or "")
                        if kind:
                            returns_owned[full] = kind
                            changed = True
                            break
                # Array contracts flow the other way to escapes: a param
                # handed verbatim to a contracted callee param inherits
                # that contract (dims sanitised — see _sanitize_array).
                for param, call_index, slot in fn.param_passes:
                    if param in array_params[full]:
                        continue
                    res = fn_resolved[call_index]
                    if res.category != "internal" or res.target not in facts:
                        continue
                    if fn.calls[call_index].has_star_args:
                        continue
                    callee = facts[res.target][1]
                    landing = _param_at(callee, slot, res.bound_receiver)
                    if landing is not None and landing in array_params[res.target]:
                        array_params[full][param] = _sanitize_array(
                            array_params[res.target][landing]
                        )
                        changed = True
                if full not in returns_array:
                    for call_index in fn.returned_calls:
                        res = fn_resolved[call_index]
                        if (
                            res.category == "internal"
                            and res.target in returns_array
                        ):
                            returns_array[full] = _sanitize_array(
                                returns_array[res.target]
                            )
                            changed = True
                            break

    out: dict[str, FunctionSummary] = {}
    for full, (mod, fn) in facts.items():
        out[full] = FunctionSummary(
            qualname=full,
            is_async=fn.is_async,
            may_block=full in block_primitive,
            block_primitive=block_primitive.get(full, ""),
            block_site=block_site.get(full, ""),
            awaits=fn.has_await,
            escapes=frozenset(escapes[full]),
            consumes=frozenset(consumes[full] - escapes[full]),
            returns_owned=returns_owned.get(full, ""),
            locks_across_await=tuple(
                ".".join(hold.parts) for hold in fn.lock_holds
            ),
            array_params=dict(array_params[full]),
            returns_array=returns_array.get(full),
            alias_safe=fn.alias_safe,
            hotpath=fn.hotpath,
            declares_contracts=bool(fn.array_contracts),
        )
    return out


def digest_of(summaries: dict[str, FunctionSummary]) -> str:
    """Deterministic digest of the whole summary DB (cache-key input)."""
    payload = json.dumps(
        {name: summary.to_json() for name, summary in sorted(summaries.items())},
        sort_keys=True,
        separators=(",", ":"),
    )
    hasher = hashlib.sha256()
    hasher.update(f"{CALLGRAPH_VERSION}|{SUMMARIES_VERSION}|".encode("utf-8"))
    hasher.update(payload.encode("utf-8"))
    return hasher.hexdigest()


# -------------------------------------------------------------- project view
class ProjectAnalysis:
    """What the engine hands rules: graph + summaries + cache digest.

    The ``project`` graph is materialised on first access: a fully warm
    run answers every file from the result cache and never consults the
    graph, and deserialising facts for a few hundred modules is the
    dominant cost of that path.
    """

    def __init__(
        self,
        summaries: dict[str, FunctionSummary],
        digest: str,
        project: Project | None = None,
        project_thunk: "Callable[[], Project] | None" = None,
    ) -> None:
        self.summaries = summaries
        self.digest = digest
        self._project = project
        self._thunk = project_thunk

    @property
    def project(self) -> Project:
        # Benign race under worker threads: materialisation is a pure
        # function of the store contents, so concurrent first accesses
        # build identical graphs and the assignment is atomic.
        project = self._project
        if project is None:
            thunk = self._thunk
            project = Project({}) if thunk is None else thunk()
            self._project = project
        return project

    def summary(self, full_qualname: str | None) -> FunctionSummary | None:
        if full_qualname is None:
            return None
        return self.summaries.get(full_qualname)

    def module_of(self, module_parts: tuple[str, ...] | None) -> ModuleFacts | None:
        if module_parts is None:
            return None
        return self.project.module_of(module_parts)

    def resolve_ast_call(
        self,
        module_parts: tuple[str, ...] | None,
        caller_qualname: str,
        node: ast.Call,
    ) -> Resolution | None:
        """Resolve a live AST call from rule code (None = not resolvable)."""
        mod = self.module_of(module_parts)
        if mod is None:
            return None
        fn = mod.functions.get(caller_qualname)
        if fn is None:
            return None
        fact = call_fact_of(node)
        if fact is None:
            return None
        return self.project.resolve_call(mod, fn, fact)

    def call_param(
        self, resolution: Resolution, slot: Union[int, str]
    ) -> str | None:
        """Callee parameter name an argument slot maps to, or None."""
        if resolution.category != "internal" or resolution.target is None:
            return None
        callee = self.project.function(resolution.target)
        if callee is None:
            return None
        return _param_at(callee, slot, resolution.bound_receiver)


# ------------------------------------------------------------------ the store
def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except OSError:
            os.unlink(tmp_name)
            raise
    except OSError:
        return  # a read-only checkout must still lint


_STORE_VERSION = f"{CALLGRAPH_VERSION}|{SUMMARIES_VERSION}"


def _read_json(path: Path | None) -> "dict[str, Any] | None":
    """Versioned store payload at ``path``, or None when unusable."""
    if path is None:
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if isinstance(payload, dict) and payload.get("version") == _STORE_VERSION:
        return payload
    return None


def load_project(
    sources: Sequence[tuple[str, tuple[str, ...], bytes]],
    store_dir: Path | None,
    parse: Callable[[str, bytes], "ast.Module | None"],
) -> ProjectAnalysis:
    """Build (or reload) the whole-tree analysis for one lint run.

    ``sources`` is ``(display path, module parts, raw bytes)`` for every
    in-package file of the run. With a ``store_dir``, per-file facts are
    reused by content hash (``facts.json``) and the propagated summaries
    by whole-tree key (``summaries.json``). The stores are split so the
    warm path reads only the small summary file: when the tree key
    matches, the facts — several times larger and only consulted by
    rules that actually run — stay on disk until first access.
    """
    facts_path = store_dir / _FACTS_NAME if store_dir is not None else None
    store_path = store_dir / _STORE_NAME if store_dir is not None else None

    tree_entries: list[tuple[str, str]] = []
    entries: list[tuple[str, tuple[str, ...], bytes, str]] = []
    for display, parts, raw in sources:
        sha = hashlib.sha256(raw).hexdigest()
        tree_entries.append((display, sha))
        entries.append((display, parts, raw, sha))

    tree_hasher = hashlib.sha256()
    tree_hasher.update(_STORE_VERSION.encode("utf-8"))
    for display, sha in sorted(tree_entries):
        tree_hasher.update(f"{display}\x00{sha}\x00".encode("utf-8"))
    tree_key = tree_hasher.hexdigest()

    def materialise() -> tuple[Project, dict[str, Any], bool]:
        facts_store = _read_json(facts_path)
        cached_files: dict[str, Any] = {}
        if facts_store is not None and isinstance(facts_store.get("files"), dict):
            cached_files = facts_store["files"]
        modules: dict[str, ModuleFacts] = {}
        used: dict[str, Any] = {}
        dirty = False
        for display, parts, raw, sha in entries:
            facts = None
            cached = cached_files.get(sha)
            if cached is not None:
                try:
                    facts = ModuleFacts.from_json(cached)
                except (KeyError, TypeError, ValueError):
                    cached = None
            if facts is None:
                tree = parse(display, raw)
                if tree is None:
                    continue  # syntax error: the engine reports it per-file
                try:
                    source: "str | None" = raw.decode("utf-8")
                except UnicodeDecodeError:
                    source = None  # pragmas unreadable; facts stay AST-only
                facts = extract_module_facts(parts, tree, source)
                dirty = True
            used[sha] = cached if cached is not None else facts.to_json()
            modules[facts.dotted] = facts
        return Project(modules), used, dirty

    def materialise_and_repair() -> Project:
        project, used, dirty = materialise()
        if dirty and facts_path is not None:
            # Entries for files no longer present are pruned here too.
            _atomic_write_json(
                facts_path, {"version": _STORE_VERSION, "files": used}
            )
        return project

    stored = _read_json(store_path)
    if (
        stored is not None
        and stored.get("tree") == tree_key
        and isinstance(stored.get("summaries"), dict)
    ):
        try:
            summaries: "dict[str, FunctionSummary] | None" = {
                str(name): FunctionSummary.from_json(data)
                for name, data in stored["summaries"].items()
            }
            digest = str(stored["digest"])
        except (KeyError, TypeError, ValueError):
            summaries = None
        if summaries is not None:
            return ProjectAnalysis(
                summaries=summaries,
                digest=digest,
                project_thunk=materialise_and_repair,
            )

    project, used, dirty = materialise()
    computed = compute_summaries(project)
    digest = digest_of(computed)
    if facts_path is not None and dirty:
        _atomic_write_json(facts_path, {"version": _STORE_VERSION, "files": used})
    if store_path is not None:
        _atomic_write_json(
            store_path,
            {
                "version": _STORE_VERSION,
                "tree": tree_key,
                "digest": digest,
                "summaries": {
                    name: summary.to_json() for name, summary in computed.items()
                },
            },
        )
    return ProjectAnalysis(project=project, summaries=computed, digest=digest)
